//! Cross-crate integration tests: whole benchmarks on whole machine
//! models, both engines, with shape assertions from the paper.

use beff::core::beff::{run_beff, BeffConfig, MeasureSchedule};
use beff::core::beffio::{run_beff_io, AccessMethod, BeffIoConfig};
use beff::machines::{by_key, catalog};
use beff::mpi::World;
use beff::mpiio::IoWorld;
use beff::netsim::MB;

fn quick_beff(mem: u64) -> BeffConfig {
    BeffConfig {
        schedule: MeasureSchedule { loop_start: 4, reps: 1, ..MeasureSchedule::quick() },
        ..BeffConfig::quick(mem).without_extras()
    }
}

#[test]
fn beff_on_t3e_partition_matches_paper_scale() {
    let machine = by_key("t3e").unwrap();
    let cfg = BeffConfig::quick(machine.mem_per_proc).without_extras();
    let results =
        World::sim_partition(machine.network(), 8).run(|c| run_beff(c, &cfg));
    let r = &results[0];
    assert_eq!(r.patterns.len(), 12);
    // paper scale: ~50-70 MB/s per proc at small partitions
    assert!(
        (20.0..150.0).contains(&r.beff_per_proc),
        "b_eff/proc = {}",
        r.beff_per_proc
    );
    // ping-pong ~330 MB/s
    assert!((250.0..420.0).contains(&r.pingpong_mbps), "pp = {}", r.pingpong_mbps);
}

#[test]
fn every_catalog_machine_runs_beff() {
    for m in catalog() {
        let n = m.procs.min(8);
        let cfg = quick_beff(m.mem_per_proc);
        let results = World::sim_partition(m.network(), n).run(|c| run_beff(c, &cfg));
        assert!(results[0].beff > 0.0, "{} produced zero b_eff", m.key);
        assert!(results[0].beff.is_finite(), "{}", m.key);
    }
}

#[test]
fn placement_effect_on_sr8000() {
    // the paper's headline SMP result: sequential placement beats
    // round-robin placement on ring-heavy b_eff
    let run = |key: &str| {
        let m = by_key(key).unwrap().sized_for(16);
        let cfg = quick_beff(m.mem_per_proc);
        let r = World::sim_partition(m.network(), 16).run(|c| run_beff(c, &cfg));
        r[0].ring_per_proc_at_lmax
    };
    let rr = run("sr8000-rr");
    let seq = run("sr8000-seq");
    assert!(seq > 1.8 * rr, "seq {seq} must clearly beat rr {rr}");
}

#[test]
fn rings_beat_randoms_on_the_torus() {
    let machine = by_key("t3e").unwrap();
    let cfg = quick_beff(machine.mem_per_proc);
    let results =
        World::sim_partition(machine.network(), 16).run(|c| run_beff(c, &cfg));
    let r = &results[0];
    let ring: f64 =
        r.patterns.iter().filter(|p| !p.random).map(|p| p.at_lmax()).sum::<f64>() / 6.0;
    let rand: f64 =
        r.patterns.iter().filter(|p| p.random).map(|p| p.at_lmax()).sum::<f64>() / 6.0;
    assert!(ring > rand, "ring {ring} vs random {rand}");
}

#[test]
fn beff_io_on_t3e_with_data_verification() {
    let machine = by_key("t3e").unwrap();
    let mut iocfg = machine.io.clone().unwrap();
    iocfg.store_data = true;
    iocfg.clients = 4;
    let pfs = std::sync::Arc::new(beff::pfs::Pfs::new(iocfg));
    let io = IoWorld::sim(pfs);
    let cfg = BeffIoConfig::quick(machine.mem_per_node).with_t(1.0).with_verify();
    let results = World::sim_partition(machine.network(), 4)
        .copy_data(true)
        .run(|c| run_beff_io(c, &io, &cfg));
    let r = &results[0];
    assert!(r.beff_io > 0.0);
    // every (method, type) moved data and the verify closures did not panic
    for m in &r.methods {
        for t in &m.types {
            assert!(t.bytes > 0, "{:?}/{:?}", m.method, t.ptype);
        }
    }
}

#[test]
fn io_scaling_shapes_t3e_flat_sp_tracks() {
    let run = |key: &str, n: usize| {
        let m = by_key(key).unwrap().sized_for(n);
        let pfs = m.filesystem().unwrap();
        let io = IoWorld::sim(pfs);
        let cfg = BeffIoConfig::quick(m.mem_per_node).with_t(4.0);
        let r = World::sim_partition(m.network(), n).run(|c| run_beff_io(c, &io, &cfg));
        r[0].beff_io
    };
    // T3E: global resource — tripling clients gains little
    let t3e_small = run("t3e", 8);
    let t3e_big = run("t3e", 32);
    assert!(
        t3e_big < 2.0 * t3e_small,
        "T3E I/O should be nearly flat: {t3e_small} -> {t3e_big}"
    );
    // SP: injection-bound — clients scale it up
    let sp_small = run("ibm-sp", 8);
    let sp_big = run("ibm-sp", 32);
    assert!(
        sp_big > 1.6 * sp_small,
        "SP I/O should track clients: {sp_small} -> {sp_big}"
    );
}

#[test]
fn read_method_benefits_from_cache() {
    // reads of just-written data hit the filesystem cache: read value
    // should not collapse below the write value on a cached system
    let m = by_key("sx5").unwrap();
    let pfs = m.filesystem().unwrap();
    let io = IoWorld::sim(pfs);
    let cfg = BeffIoConfig::quick(m.mem_per_node).with_t(2.0);
    let r = World::sim_partition(m.network(), 4).run(|c| run_beff_io(c, &io, &cfg));
    let w = r[0].method_value(AccessMethod::InitialWrite).unwrap();
    let rd = r[0].method_value(AccessMethod::Read).unwrap();
    assert!(rd > 0.3 * w, "read {rd} vs write {w}");
}

#[test]
fn degraded_io_server_slows_the_benchmark() {
    let m = by_key("t3e").unwrap();
    let cfg = BeffIoConfig::quick(m.mem_per_node).with_t(2.0);
    let healthy = {
        let pfs = m.filesystem().unwrap();
        let io = IoWorld::sim(pfs);
        World::sim_partition(m.network(), 8).run(|c| run_beff_io(c, &io, &cfg))[0].beff_io
    };
    let degraded = {
        let pfs = m.filesystem().unwrap();
        for s in 0..5 {
            pfs.set_server_speed_factor(s, 0.05);
        }
        let io = IoWorld::sim(pfs);
        World::sim_partition(m.network(), 8).run(|c| run_beff_io(c, &io, &cfg))[0].beff_io
    };
    assert!(
        degraded < 0.9 * healthy,
        "half the servers at 5% speed must hurt: {healthy} -> {degraded}"
    );
}

#[test]
fn real_mode_beff_smoke() {
    let cfg = BeffConfig {
        mem_per_proc: 64 * MB,
        schedule: MeasureSchedule { loop_start: 2, reps: 1, ..MeasureSchedule::quick() },
        seed: 7,
        extras: false,
        extra_iters: 1,
    };
    let r = World::real(2).run(|c| run_beff(c, &cfg));
    assert!(r[0].beff > 0.0);
    assert!(r[0].pingpong_mbps > 0.0);
}

#[test]
fn real_mode_beff_io_smoke_on_temp_files() {
    let disk = std::sync::Arc::new(beff::pfs::LocalDisk::temp("int-test").unwrap());
    let io = IoWorld::local(std::sync::Arc::clone(&disk));
    let cfg = BeffIoConfig::quick(64 * MB).with_t(0.5);
    let r = World::real(2).run(|c| run_beff_io(c, &io, &cfg));
    assert!(r[0].beff_io > 0.0);
    drop(io);
    if let Ok(d) = std::sync::Arc::try_unwrap(disk) {
        d.destroy();
    }
}

#[test]
fn balance_factors_are_in_paper_range() {
    // Fig. 1: balance factors of these systems live between ~0.001 and
    // ~1 byte/flop
    for key in ["t3e", "sx5", "hpv"] {
        let m = by_key(key).unwrap();
        let n = m.procs.min(8);
        let cfg = quick_beff(m.mem_per_proc);
        let r = World::sim_partition(m.network(), n).run(|c| run_beff(c, &cfg));
        let b = beff::core::Balance::new(r[0].beff, m.rmax_for(n));
        assert!(
            (0.0005..2.0).contains(&b.factor()),
            "{key}: balance {}",
            b.factor()
        );
    }
}
