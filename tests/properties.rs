//! Cross-crate property-based tests (beff-check): invariants that must
//! hold for arbitrary inputs — striping coverage, file-view round
//! trips, MPI-IO read-back equality under arbitrary chunking, ring
//! partition rules, averaging bounds.
//!
//! A failing case prints its seed; replay a single input with
//! `BEFF_CHECK_SEED=<seed> cargo test -q <name>`.

use beff::core::beff::{ring_sizes, ring_targets};
use beff::core::logavg::{logavg, mean};
use beff::mpi::World;
use beff::mpiio::{AMode, FileView, Hints, IoWorld, MpiFile};
use beff::netsim::{MachineNet, NetParams, Topology};
use beff::pfs::{per_server_bytes, stripe_split, Pfs, PfsConfig};
use beff_check::{check, check_n, ensure, ensure_eq};
use std::sync::Arc;

#[test]
fn stripe_split_covers_exactly() {
    check("stripe split covers exactly", |g| {
        let offset = g.u64(0..=9_999_999);
        let len = g.u64(1..=4_999_999);
        let su = g.u64(1..=255) * 1024;
        let servers = g.usize(1..=15);
        let extents = stripe_split(offset, len, su, servers);
        // coverage: contiguous, in order, exact
        let mut pos = offset;
        for e in &extents {
            ensure_eq!(e.file_offset, pos);
            ensure!(e.server < servers);
            pos += e.len;
        }
        ensure_eq!(pos, offset + len);
        // per-server totals agree
        let totals = per_server_bytes(offset, len, su, servers);
        ensure_eq!(totals.iter().sum::<u64>(), len);
    });
}

#[test]
fn file_view_maps_are_order_preserving_and_total() {
    check("file view maps are order preserving and total", |g| {
        let disp = g.u64(0..=999_999);
        let block = g.u64(1..=65_535);
        let stride_mult = g.u64(1..=15);
        let v = g.u64(0..=999_999);
        let len = g.u64(1..=499_999);
        let view = FileView::Strided { disp, block, stride: block * stride_mult };
        let segs = view.map_range(v, len);
        ensure_eq!(segs.iter().map(|s| s.1).sum::<u64>(), len);
        for w in segs.windows(2) {
            ensure!(w[0].0 + w[0].1 <= w[1].0, "overlap/disorder");
        }
        // point consistency: first byte of the range
        ensure_eq!(segs[0].0, view.map_offset(v));
    });
}

#[test]
fn ring_partition_covers_all_ranks() {
    check("ring partition covers all ranks", |g| {
        let n = g.usize(2..=299);
        for target in ring_targets(n) {
            let sizes = ring_sizes(n, target);
            ensure_eq!(sizes.iter().sum::<usize>(), n, "target {target}");
            ensure!(sizes.iter().all(|&s| s >= 2));
        }
    });
}

#[test]
fn logavg_bounds() {
    check("logavg bounds", |g| {
        let xs = g.vec(1..=19, |g| g.f64(0.001, 1e9));
        let v = logavg(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        ensure!(v >= min * 0.999999 && v <= max * 1.000001);
        ensure!(v <= mean(&xs) * 1.000001, "logavg must not exceed the mean");
    });
}

#[test]
fn virtual_transfer_times_are_monotone_in_size() {
    check("virtual transfer times are monotone in size", |g| {
        let bytes_a = g.u64(1..=999_999);
        let extra = g.u64(1..=999_999);
        let net = MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default());
        let small = net.transfer(0, 1, bytes_a, 0.0).arrival;
        net.reset();
        let big = net.transfer(0, 1, bytes_a + extra, 0.0).arrival;
        ensure!(big >= small);
    });
}

#[test]
fn mpiio_readback_equals_written_under_arbitrary_chunking() {
    check_n("mpiio readback equals written under arbitrary chunking", 16, |g| {
        // two ranks write interleaved chunks of arbitrary sizes through
        // individual pointers, then read everything back and compare
        let chunks = g.vec(1..=11, |g| g.usize(1..=4_999));
        let seed = g.u64(0..=999);
        let net = Arc::new(MachineNet::new(
            Topology::Crossbar { procs: 2 },
            NetParams::default(),
        ));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: 2,
            store_data: true,
            ..PfsConfig::default()
        }));
        let io = IoWorld::sim(pfs);
        let chunks = Arc::new(chunks);
        let ok = World::sim(net).copy_data(true).run(|c| {
            let mut f = MpiFile::open(
                c,
                &io,
                &format!("prop-{seed}"),
                AMode::read_write_create(),
                Hints::default(),
            )
            .unwrap();
            let total: usize = chunks.iter().sum();
            // rank r owns the byte range [r*total, (r+1)*total)
            f.seek(c.rank() as u64 * total as u64);
            let mut expected = Vec::with_capacity(total);
            for (i, &len) in chunks.iter().enumerate() {
                let byte = (seed as usize + i * 31 + c.rank() * 7) as u8;
                let data = vec![byte; len];
                f.write(c, &data);
                expected.extend_from_slice(&data);
            }
            f.sync(c);
            c.barrier();
            let mut back = vec![0u8; total];
            f.read_at(c, c.rank() as u64 * total as u64, &mut back);
            let good = back == expected;
            f.close(c);
            good
        });
        ensure!(ok.iter().all(|&b| b));
    });
}

#[test]
fn collective_write_all_roundtrips_strided_views() {
    check_n("collective write_all roundtrips strided views", 16, |g| {
        let l = g.u64(16..=2047);
        let chunks = g.u64(1..=15);
        let procs = g.usize(2..=4);
        let net = Arc::new(MachineNet::new(
            Topology::Crossbar { procs },
            NetParams::default(),
        ));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: procs,
            store_data: true,
            ..PfsConfig::default()
        }));
        let io = IoWorld::sim(pfs);
        let ok = World::sim(net).copy_data(true).run(move |c| {
            let n = c.size() as u64;
            let mut f =
                MpiFile::open(c, &io, "prop-coll", AMode::read_write_create(), Hints::default())
                    .unwrap();
            f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
            let data: Vec<u8> =
                (0..l * chunks).map(|i| (i as u8) ^ (c.rank() as u8 + 1)).collect();
            f.write_all(c, &data);
            f.sync(c);
            c.barrier();
            f.seek(0);
            let mut back = vec![0u8; data.len()];
            f.read_all(c, &mut back);
            let good = back == data;
            f.close(c);
            good
        });
        ensure!(ok.iter().all(|&b| b));
    });
}
