//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs — striping coverage, file-view round
//! trips, MPI-IO read-back equality under arbitrary chunking, ring
//! partition rules, averaging bounds.

use beff::core::beff::{ring_sizes, ring_targets};
use beff::core::logavg::{logavg, mean};
use beff::mpi::World;
use beff::mpiio::{AMode, FileView, Hints, IoWorld, MpiFile};
use beff::netsim::{MachineNet, NetParams, Topology};
use beff::pfs::{per_server_bytes, stripe_split, Pfs, PfsConfig};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn stripe_split_covers_exactly(
        offset in 0u64..10_000_000,
        len in 1u64..5_000_000,
        stripe_kb in 1u64..256,
        servers in 1usize..16,
    ) {
        let su = stripe_kb * 1024;
        let extents = stripe_split(offset, len, su, servers);
        // coverage: contiguous, in order, exact
        let mut pos = offset;
        for e in &extents {
            prop_assert_eq!(e.file_offset, pos);
            prop_assert!(e.server < servers);
            pos += e.len;
        }
        prop_assert_eq!(pos, offset + len);
        // per-server totals agree
        let totals = per_server_bytes(offset, len, su, servers);
        prop_assert_eq!(totals.iter().sum::<u64>(), len);
    }

    #[test]
    fn file_view_maps_are_order_preserving_and_total(
        disp in 0u64..1_000_000,
        block in 1u64..65_536,
        stride_mult in 1u64..16,
        v in 0u64..1_000_000,
        len in 1u64..500_000,
    ) {
        let view = FileView::Strided { disp, block, stride: block * stride_mult };
        let segs = view.map_range(v, len);
        prop_assert_eq!(segs.iter().map(|s| s.1).sum::<u64>(), len);
        for w in segs.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap/disorder");
        }
        // point consistency: first byte of the range
        prop_assert_eq!(segs[0].0, view.map_offset(v));
    }

    #[test]
    fn ring_partition_covers_all_ranks(n in 2usize..300) {
        for target in ring_targets(n) {
            let sizes = ring_sizes(n, target);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n, "target {}", target);
            prop_assert!(sizes.iter().all(|&s| s >= 2));
        }
    }

    #[test]
    fn logavg_bounds(xs in prop::collection::vec(0.001f64..1e9, 1..20)) {
        let v = logavg(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(v >= min * 0.999999 && v <= max * 1.000001);
        prop_assert!(v <= mean(&xs) * 1.000001, "logavg must not exceed the mean");
    }

    #[test]
    fn virtual_transfer_times_are_monotone_in_size(
        bytes_a in 1u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let net = MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default());
        let small = net.transfer(0, 1, bytes_a, 0.0).arrival;
        net.reset();
        let big = net.transfer(0, 1, bytes_a + extra, 0.0).arrival;
        prop_assert!(big >= small);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mpiio_readback_equals_written_under_arbitrary_chunking(
        chunks in prop::collection::vec(1usize..5_000, 1..12),
        seed in 0u64..1000,
    ) {
        // two ranks write interleaved chunks of arbitrary sizes through
        // individual pointers, then read everything back and compare
        let net = Arc::new(MachineNet::new(
            Topology::Crossbar { procs: 2 },
            NetParams::default(),
        ));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: 2,
            store_data: true,
            ..PfsConfig::default()
        }));
        let io = IoWorld::sim(pfs);
        let chunks = Arc::new(chunks);
        let ok = World::sim(net).copy_data(true).run(|c| {
            let mut f = MpiFile::open(
                c,
                &io,
                &format!("prop-{seed}"),
                AMode::read_write_create(),
                Hints::default(),
            )
            .unwrap();
            let total: usize = chunks.iter().sum();
            // rank r owns the byte range [r*total, (r+1)*total)
            f.seek(c.rank() as u64 * total as u64);
            let mut expected = Vec::with_capacity(total);
            for (i, &len) in chunks.iter().enumerate() {
                let byte = (seed as usize + i * 31 + c.rank() * 7) as u8;
                let data = vec![byte; len];
                f.write(c, &data);
                expected.extend_from_slice(&data);
            }
            f.sync(c);
            c.barrier();
            let mut back = vec![0u8; total];
            f.read_at(c, c.rank() as u64 * total as u64, &mut back);
            let good = back == expected;
            f.close(c);
            good
        });
        prop_assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn collective_write_all_roundtrips_strided_views(
        l in 16u64..2048,
        chunks in 1u64..16,
        procs in 2usize..5,
    ) {
        let net = Arc::new(MachineNet::new(
            Topology::Crossbar { procs },
            NetParams::default(),
        ));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: procs,
            store_data: true,
            ..PfsConfig::default()
        }));
        let io = IoWorld::sim(pfs);
        let ok = World::sim(net).copy_data(true).run(|c| {
            let n = c.size() as u64;
            let mut f = MpiFile::open(c, &io, "prop-coll", AMode::read_write_create(), Hints::default())
                .unwrap();
            f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
            let data: Vec<u8> =
                (0..l * chunks).map(|i| (i as u8) ^ (c.rank() as u8 + 1)).collect();
            f.write_all(c, &data);
            f.sync(c);
            c.barrier();
            f.seek(0);
            let mut back = vec![0u8; data.len()];
            f.read_all(c, &mut back);
            let good = back == data;
            f.close(c);
            good
        });
        prop_assert!(ok.iter().all(|&b| b));
    }
}
