//! # beff
//!
//! A from-scratch Rust reproduction of
//! *Benchmark Design for Characterization of Balanced High-Performance
//! Architectures* (Koniges, Rabenseifner, Solchenbach — IPPS 2001): the
//! **effective bandwidth benchmark b_eff** and the **effective I/O
//! bandwidth benchmark b_eff_io**, together with every substrate they
//! need — an MPI-like message-passing runtime, a virtual-time network
//! simulator with calibrated machine models of the paper's evaluation
//! systems, a parallel-filesystem simulator, and an MPI-IO layer with
//! two-phase collective I/O.
//!
//! This facade re-exports the whole stack. Quick start:
//!
//! ```
//! use beff::machines;
//! use beff::mpi::World;
//! use beff::core::beff::{run_beff, BeffConfig};
//!
//! // b_eff on a simulated 24-processor partition of a Cray T3E
//! let machine = machines::t3e();
//! let cfg = BeffConfig::quick(machine.mem_per_proc).without_extras();
//! let results = World::sim_partition(machine.network(), 4)
//!     .run(|comm| run_beff(comm, &cfg));
//! assert!(results[0].beff > 0.0);
//! ```
//!
//! Crate map (see DESIGN.md for the experiment index):
//!
//! * [`sim`] — the workload-agnostic deterministic-simulation
//!   substrate: token scheduler, fiber engine, virtual clocks, typed
//!   ports, fair-share resources,
//! * [`netsim`] — topologies, link contention, machine cost models,
//! * [`faults`] — seeded deterministic fault injection (degraded and
//!   dead links, stragglers, message drops, rank crashes),
//! * [`mpi`] — thread-per-rank communicator: p2p, collectives, split,
//! * [`pfs`] — striped I/O servers, write-back cache, local-disk twin,
//! * [`mpiio`] — file views, shared pointers, collective buffering,
//! * [`core`] — the two benchmarks themselves,
//! * [`machines`] — calibrated models (T3E, SP, SR 8000, SX-5, …),
//! * [`report`] — tables / pseudo-log charts / CSV / JSON dumps,
//! * [`serve`] — resident benchmark daemon: job queue, pooled resident
//!   worlds, content-addressed result cache (exact hits, by
//!   determinism),
//! * [`sync`] — in-tree locks, condvars and MPMC channels over
//!   `std::sync` (no registry dependencies anywhere in the stack),
//! * [`json`] — in-tree JSON value model and serde_json-compatible
//!   writers behind the [`json::ToJson`] trait.

pub use beff_core as core;
pub use beff_faults as faults;
pub use beff_json as json;
pub use beff_machines as machines;
pub use beff_mpi as mpi;
pub use beff_mpiio as mpiio;
pub use beff_netsim as netsim;
pub use beff_pfs as pfs;
pub use beff_report as report;
pub use beff_serve as serve;
pub use beff_sim as sim;
pub use beff_sync as sync;
