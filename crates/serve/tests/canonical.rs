//! Property tests for cache-key canonicalization (ISSUE 8 satellite):
//! the content address of a job must depend on *what* the job is, and
//! on nothing else — not builder call order, not wire field order —
//! while any semantic change (a single seed bit) must change it.

use beff_check::{check, Gen};
use beff_json::Json;
use beff_serve::{FaultCfg, JobSpec, Schedule};

/// A random valid-shaped spec (machine keys drawn from the catalog
/// names; validity against partition bounds is irrelevant to keying).
fn arbitrary_spec(g: &mut Gen) -> JobSpec {
    let machines = ["t3e", "sr8000-rr", "sr8000-seq", "sr2201", "sx5", "sx4", "ibm-sp"];
    let mut spec = JobSpec::new(machines[g.usize(0..=machines.len() - 1)], g.usize(2..=512));
    if g.bool() {
        spec = spec.with_schedule(Schedule::Paper);
    }
    spec = spec.with_seed(g.u64(0..=u64::MAX)).with_extras(g.bool());
    if g.bool() {
        let mut f = FaultCfg::none(g.u64(0..=u64::MAX));
        f.severity = g.unit_f64();
        f.degrade = g.bool();
        f.flapping = g.bool();
        f.stragglers = g.usize(0..=4);
        f.drops = g.bool();
        f.crashes = g.usize(0..=2);
        f.dead_links = g.usize(0..=2);
        spec = spec.with_fault(f);
    }
    spec
}

/// The spec's wire object with its fields (and any nested fault
/// fields) in a random order.
fn shuffled_wire(g: &mut Gen, spec: &JobSpec) -> Json {
    fn shuffle_obj(g: &mut Gen, v: Json) -> Json {
        match v {
            Json::Obj(mut fields) => {
                for f in &mut fields {
                    f.1 = shuffle_obj(g, std::mem::replace(&mut f.1, Json::Null));
                }
                let order = g.permutation(fields.len());
                let mut slots: Vec<Option<(String, Json)>> =
                    fields.into_iter().map(Some).collect();
                Json::Obj(
                    order
                        .into_iter()
                        .map(|i| slots[i].take().expect("permutation visits each index once"))
                        .collect(),
                )
            }
            other => other,
        }
    }
    shuffle_obj(g, beff_json::ToJson::to_json(spec))
}

#[test]
fn canonical_key_is_field_order_independent() {
    check("canonical_key_is_field_order_independent", |g| {
        let spec = arbitrary_spec(g);
        let a = JobSpec::from_json(&shuffled_wire(g, &spec)).expect("own wire form parses");
        let b = JobSpec::from_json(&shuffled_wire(g, &spec)).expect("own wire form parses");
        assert_eq!(a, spec, "parsing is order-insensitive");
        assert_eq!(
            a.canonical_key(),
            b.canonical_key(),
            "two field orders of one spec must share a cache key"
        );
        assert_eq!(a.key_digest(), spec.key_digest());
    });
}

#[test]
fn canonical_key_survives_a_serialize_parse_cycle() {
    check("canonical_key_survives_a_serialize_parse_cycle", |g| {
        let spec = arbitrary_spec(g);
        let wire = beff_json::to_string(&spec);
        let back =
            JobSpec::from_json(&beff_json::parse(&wire).expect("own output parses"))
                .expect("own output is a valid spec");
        assert_eq!(spec.canonical_key(), back.canonical_key());
    });
}

#[test]
fn one_seed_bit_misses() {
    check("one_seed_bit_misses", |g| {
        let spec = arbitrary_spec(g);
        let bit = 1u64 << g.u32(0..=63);
        let flipped = spec.clone().with_seed(spec.seed ^ bit);
        assert_ne!(
            spec.canonical_key(),
            flipped.canonical_key(),
            "a one-bit seed change must be a different content address"
        );
    });
}

#[test]
fn one_fault_seed_bit_misses() {
    check("one_fault_seed_bit_misses", |g| {
        let mut spec = arbitrary_spec(g);
        let mut fault = spec.fault.clone().unwrap_or_else(|| FaultCfg::none(g.u64(0..=1 << 40)));
        spec = spec.clone().with_fault(fault.clone());
        let before = spec.canonical_key();
        fault.seed ^= 1u64 << g.u32(0..=63);
        let after = spec.with_fault(fault).canonical_key();
        assert_ne!(before, after, "fault seeds are part of the content address");
    });
}

#[test]
fn distinct_specs_get_distinct_keys() {
    check("distinct_specs_get_distinct_keys", |g| {
        let a = arbitrary_spec(g);
        let b = arbitrary_spec(g);
        if a != b {
            assert_ne!(a.canonical_key(), b.canonical_key());
        } else {
            assert_eq!(a.canonical_key(), b.canonical_key());
        }
    });
}
