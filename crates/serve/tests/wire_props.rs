//! Property tests for the frame codec (ISSUE 9 satellite): decoding is
//! total — any byte sequence, hostile or truncated, produces a typed
//! outcome (`Ok(None)` for "need more", a payload, or a [`WireError`])
//! and never panics; and what `encode` writes, `decode` and
//! `read_frame` read back exactly, empty payloads included.

use beff_check::{check, Gen};
use beff_serve::wire::{self, WireError, MAX_FRAME};
use std::io::Cursor;

fn arbitrary_bytes(g: &mut Gen, max_len: usize) -> Vec<u8> {
    let len = g.usize(0..=max_len);
    (0..len).map(|_| g.u32(0..=255) as u8).collect()
}

#[test]
fn decode_is_total_on_arbitrary_bytes() {
    check("decode_is_total_on_arbitrary_bytes", |g| {
        let buf = arbitrary_bytes(g, 96);
        match wire::decode(&buf) {
            Ok(None) => {
                // "Need more": either no whole prefix yet, or the
                // declared (in-cap) length outruns the buffer.
                if buf.len() >= 4 {
                    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                    assert!(len <= MAX_FRAME, "oversized lengths must be refused, not deferred");
                    assert!(4 + len > buf.len(), "a complete frame must decode");
                }
            }
            Ok(Some((payload, used))) => {
                assert!(used <= buf.len());
                assert_eq!(used, 4 + payload.len(), "consumed exactly one frame");
                assert_eq!(payload.as_bytes(), &buf[4..used], "payload bytes verbatim");
            }
            Err(WireError::TooLarge(n)) => assert!(n > MAX_FRAME),
            Err(WireError::BadUtf8) => {
                let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                assert!(std::str::from_utf8(&buf[4..4 + len]).is_err());
            }
        }
    });
}

#[test]
fn read_frame_is_total_on_arbitrary_bytes() {
    check("read_frame_is_total_on_arbitrary_bytes", |g| {
        let buf = arbitrary_bytes(g, 96);
        let mut r = Cursor::new(buf.clone());
        // Never panics; errors are typed io errors with the two frame
        // failure kinds (protocol lies and mid-frame EOF).
        match wire::read_frame(&mut r) {
            Ok(None) => assert!(buf.is_empty(), "clean EOF only at a frame boundary"),
            Ok(Some(payload)) => {
                assert_eq!(payload.as_bytes(), &buf[4..4 + payload.len()]);
            }
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                ),
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    });
}

#[test]
fn length_lies_within_the_cap_are_need_more_never_allocation_bombs() {
    check("length_lies_within_the_cap", |g| {
        // A prefix declaring an in-cap length the buffer does not
        // hold: decode defers, read_frame reports mid-frame EOF typed.
        let declared = g.usize(1..=MAX_FRAME);
        let have = g.usize(0..=declared.min(64) - 1);
        let mut buf = (declared as u32).to_be_bytes().to_vec();
        buf.extend(std::iter::repeat(b'x').take(have));
        assert_eq!(wire::decode(&buf).expect("in-cap lie is not a codec error"), None);
        let e = wire::read_frame(&mut Cursor::new(buf)).expect_err("stream ends mid-frame");
        assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
    });
}

#[test]
fn oversized_lengths_are_always_typed_too_large() {
    check("oversized_lengths_are_typed", |g| {
        let declared = g.u64(MAX_FRAME as u64 + 1..=u32::MAX as u64) as u32;
        let mut buf = declared.to_be_bytes().to_vec();
        buf.extend(arbitrary_bytes(g, 16));
        assert!(matches!(wire::decode(&buf), Err(WireError::TooLarge(n)) if n > MAX_FRAME));
        let e = wire::read_frame(&mut Cursor::new(buf)).expect_err("refused before allocating");
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    });
}

#[test]
fn round_trip_including_empty_payloads() {
    check("round_trip_including_empty_payloads", |g| {
        // Arbitrary UTF-8 (char-built), with the empty payload always
        // reachable: an empty frame is valid, not an error or EOF.
        let len = g.usize(0..=24);
        let payload: String =
            (0..len).map(|_| char::from_u32(g.u32(1..=0xD7FF)).expect("below surrogates")).collect();
        let bytes = wire::encode(&payload);
        let (back, used) = wire::decode(&bytes).expect("own frame decodes").expect("complete");
        assert_eq!(back, payload);
        assert_eq!(used, bytes.len());
        let mut r = Cursor::new(bytes);
        assert_eq!(wire::read_frame(&mut r).expect("own frame reads"), Some(payload));
        assert_eq!(wire::read_frame(&mut r).expect("then a clean EOF"), None);
    });
}
