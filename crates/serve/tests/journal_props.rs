//! Property tests for journal recovery (ISSUE 9 satellite): replaying
//! **any byte prefix** of a valid journal yields a prefix-consistent
//! cache — the complete records before the cut, in order, nothing
//! invented — with a typed truncation report exactly when the cut
//! lands inside a record (or the header), and healing is idempotent.

use beff_check::{check, Gen};
use beff_serve::journal::{encode_record, Journal};
use std::path::PathBuf;

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("beff-journal-props");
    std::fs::create_dir_all(&dir).expect("temp scratch is writable");
    dir.join(name)
}

fn arbitrary_text(g: &mut Gen, max_len: usize) -> String {
    let len = g.usize(0..=max_len);
    (0..len).map(|_| char::from_u32(g.u32(1..=0x024F)).expect("valid scalar")).collect()
}

#[test]
fn any_prefix_replays_to_a_prefix_consistent_cache() {
    check("any_prefix_replays_to_a_prefix_consistent_cache", |g| {
        // A valid journal of 0..=6 unique-keyed records.
        let n = g.usize(0..=6);
        let records: Vec<(String, String)> = (0..n)
            .map(|i| (format!("key-{i}-{}", arbitrary_text(g, 8)), arbitrary_text(g, 24)))
            .collect();
        let mut full = b"BEFFJRN1".to_vec();
        // Record end offsets (the valid cut points past the header).
        let mut boundaries = vec![full.len() as u64];
        for (key, result) in &records {
            full.extend_from_slice(&encode_record(key, result));
            boundaries.push(full.len() as u64);
        }

        // Cut anywhere — at a boundary, inside a record, inside the
        // header, or at zero — and replay the prefix.
        let cut = g.usize(0..=full.len());
        let path = scratch_file("prefix.journal");
        std::fs::write(&path, &full[..cut]).expect("scratch write");
        let (_j, replayed, recovery) =
            Journal::open(&path).expect("every prefix of a valid journal opens");

        // The replayed records are exactly the complete ones before
        // the cut: a strict prefix of the original, never reordered,
        // never partially applied, never invented.
        let complete = boundaries.iter().filter(|b| **b <= cut as u64).count().saturating_sub(1);
        assert_eq!(replayed.len(), complete, "cut {cut}: complete records replay");
        assert_eq!(
            replayed,
            records[..complete].to_vec(),
            "cut {cut}: replay is prefix-consistent"
        );
        assert_eq!(recovery.recovered, complete);

        // The truncation report fires exactly when the cut is torn:
        // not at zero (a fresh journal) and not on a record boundary.
        let at_boundary = cut == 0 || boundaries.contains(&(cut as u64));
        assert_eq!(
            recovery.truncated.is_some(),
            !at_boundary,
            "cut {cut}: torn iff inside a header or record"
        );

        // Healing is idempotent: a second open of the healed file
        // recovers the same records with nothing left to truncate.
        let (_j2, replayed2, recovery2) =
            Journal::open(&path).expect("a healed journal reopens clean");
        assert_eq!(replayed2, replayed, "cut {cut}: heal preserves the recovered prefix");
        assert!(recovery2.truncated.is_none(), "cut {cut}: heal leaves no torn tail");
    });
}

#[test]
fn appends_after_a_torn_recovery_replay_in_order() {
    check("appends_after_a_torn_recovery_replay_in_order", |g| {
        let path = scratch_file("append.journal");
        let _ = std::fs::remove_file(&path);
        // A journal with one intact record and a torn second one.
        let mut bytes = b"BEFFJRN1".to_vec();
        bytes.extend_from_slice(&encode_record("first", "alpha"));
        let torn = encode_record("second", "beta");
        let keep = g.usize(1..=torn.len() - 1);
        bytes.extend_from_slice(&torn[..keep]);
        std::fs::write(&path, &bytes).expect("scratch write");

        // Recover (healing the tear), then append fresh records.
        let (journal, replayed, recovery) = Journal::open(&path).expect("torn journal opens");
        assert_eq!(replayed, vec![("first".to_string(), "alpha".to_string())]);
        assert!(recovery.truncated.is_some(), "the tear is reported");
        let extra = arbitrary_text(g, 16);
        journal.append("third", &extra).expect("healed journal accepts appends");
        drop(journal);

        // The healed tail and the new record replay cleanly, in order.
        let (_j, after, recovery2) = Journal::open(&path).expect("reopens clean");
        assert!(recovery2.truncated.is_none());
        assert_eq!(
            after,
            vec![
                ("first".to_string(), "alpha".to_string()),
                ("third".to_string(), extra.clone()),
            ],
            "append lands exactly after the healed prefix"
        );
    });
}
