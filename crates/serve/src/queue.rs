//! Admission queue: bounded buffering between query arrival and batch
//! execution, with a typed load-shedding policy.
//!
//! The server's efficient unit of work is a *batch* — distinct misses
//! fan out over the worker pool together ([`Server::submit_batch`]).
//! [`Admission`] sits in front of it: queries accumulate in a bounded
//! [`beff_sync::channel`] and are flushed as one batch when the queue
//! fills (or on demand), which converts a stream of single queries
//! into pool-sized batches with a hard cap on buffered work.
//!
//! Two admission disciplines share the buffer (DESIGN.md §12):
//!
//! * [`enqueue`](Admission::enqueue) — **backpressure**: an enqueue
//!   into a full queue executes the buffered batch first, so a
//!   producer can never buffer unboundedly ahead of the simulator;
//! * [`offer`](Admission::offer) — **shedding**: an offer into a full
//!   queue is refused with typed [`SpecError::Overloaded`] (never a
//!   silent drop), for producers that prefer losing a query over
//!   stalling.
//!
//! Orthogonally, a queue built with
//! [`with_deadline`](Admission::with_deadline) gives every buffered
//! job a virtual-deadline budget: time is a **virtual tick** that
//! advances once per admission attempt (accepted or shed — no wall
//! clock anywhere, so the policy is deterministic and replayable), and
//! a flush sheds any job that waited longer than the budget as typed
//! [`SpecError::DeadlineExpired`] instead of executing stale work.
//! Under a flood the freshest jobs survive. Every shed — either kind —
//! is counted into the server's `shed_jobs` stat.

use crate::server::{Outcome, Server};
use crate::spec::{JobSpec, SpecError};
use beff_sync::channel::{bounded, Receiver, Sender};

/// A bounded spec queue in front of a [`Server`].
pub struct Admission<'s> {
    server: &'s Server,
    tx: Sender<(JobSpec, u64)>,
    rx: Receiver<(JobSpec, u64)>,
    capacity: usize,
    queued: usize,
    /// Virtual clock: one tick per admission attempt.
    tick: u64,
    /// Maximum ticks a buffered job may wait before a flush sheds it
    /// (`None`: jobs never expire).
    budget: Option<u64>,
}

impl<'s> Admission<'s> {
    /// Queue up to `capacity` specs (≥ 1) before forcing a flush; no
    /// deadline — buffered jobs never expire.
    pub fn new(server: &'s Server, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = bounded(capacity);
        Self { server, tx, rx, capacity, queued: 0, tick: 0, budget: None }
    }

    /// Like [`new`](Self::new), but a flush sheds (typed
    /// [`SpecError::DeadlineExpired`]) any job that waited more than
    /// `budget` virtual ticks since admission.
    pub fn with_deadline(server: &'s Server, capacity: usize, budget: u64) -> Self {
        let mut q = Self::new(server, capacity);
        q.budget = Some(budget);
        q
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Specs currently buffered.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// The virtual clock: admission attempts observed so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Admit one spec under the backpressure discipline. If the queue
    /// is full, the buffered batch is executed first and its outcomes
    /// returned (empty vector otherwise — the spec is just buffered).
    pub fn enqueue(&mut self, spec: JobSpec) -> Vec<Result<Outcome, SpecError>> {
        self.tick += 1;
        let flushed =
            if self.queued == self.capacity { self.flush_inner() } else { Vec::new() };
        self.buffer(spec);
        flushed
    }

    /// Admit one spec under the shedding discipline: a full queue
    /// refuses it with typed [`SpecError::Overloaded`] (counted into
    /// the server's `shed_jobs`) rather than executing anything.
    pub fn offer(&mut self, spec: JobSpec) -> Result<(), SpecError> {
        self.tick += 1;
        if self.queued == self.capacity {
            self.server.note_shed(1);
            return Err(SpecError::Overloaded {
                queued: self.queued,
                capacity: self.capacity,
            });
        }
        self.buffer(spec);
        Ok(())
    }

    fn buffer(&mut self, spec: JobSpec) {
        self.tx
            .send((spec, self.tick))
            .expect("admission queue receiver lives as long as the sender");
        self.queued += 1;
    }

    /// Execute everything buffered as one batch, in admission order.
    /// Under a deadline, expired jobs come back as typed
    /// [`SpecError::DeadlineExpired`] in their admission slots; only
    /// the still-fresh jobs execute.
    pub fn flush(&mut self) -> Vec<Result<Outcome, SpecError>> {
        self.flush_inner()
    }

    fn flush_inner(&mut self) -> Vec<Result<Outcome, SpecError>> {
        let mut batch = Vec::with_capacity(self.queued);
        while let Ok(job) = self.rx.try_recv() {
            batch.push(job);
        }
        self.queued = 0;
        if batch.is_empty() {
            return Vec::new();
        }

        // Age check against the virtual clock at flush time.
        enum Slot {
            Fresh(JobSpec),
            Expired { waited: u64, budget: u64 },
        }
        let mut shed = 0u64;
        let slots: Vec<Slot> = batch
            .into_iter()
            .map(|(spec, admitted)| {
                let waited = self.tick - admitted;
                match self.budget {
                    Some(budget) if waited > budget => {
                        shed += 1;
                        Slot::Expired { waited, budget }
                    }
                    _ => Slot::Fresh(spec),
                }
            })
            .collect();
        if shed > 0 {
            self.server.note_shed(shed);
        }

        let fresh: Vec<JobSpec> = slots
            .iter()
            .filter_map(|s| match s {
                Slot::Fresh(spec) => Some(spec.clone()),
                Slot::Expired { .. } => None,
            })
            .collect();
        let mut executed = self.server.submit_batch(&fresh).into_iter();
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Fresh(_) => executed.next().expect("one outcome per fresh job"),
                Slot::Expired { waited, budget } => {
                    Err(SpecError::DeadlineExpired { waited, budget })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_sim::Workers;

    #[test]
    fn enqueue_buffers_until_capacity_then_flushes() {
        let srv = Server::new(Workers::new(2));
        let mut q = Admission::new(&srv, 3);
        for i in 0..3 {
            assert!(q.enqueue(JobSpec::new("t3e", 4).with_seed(i)).is_empty());
        }
        assert_eq!(q.queued(), 3);
        // Fourth admission overflows: the three buffered specs run.
        let flushed = q.enqueue(JobSpec::new("t3e", 4).with_seed(3));
        assert_eq!(flushed.len(), 3);
        assert_eq!(q.queued(), 1);
        let rest = q.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(q.queued(), 0);
        assert!(q.flush().is_empty(), "empty queue flushes to nothing");
        assert_eq!(srv.cache_stats().entries, 4);
    }

    #[test]
    fn flush_preserves_admission_order() {
        let srv = Server::new(Workers::new(1));
        let mut q = Admission::new(&srv, 8);
        let specs: Vec<JobSpec> =
            (0..4).map(|i| JobSpec::new("t3e", 4).with_seed(i)).collect();
        for s in &specs {
            q.enqueue(s.clone());
        }
        let outcomes = q.flush();
        for (o, s) in outcomes.iter().zip(&specs) {
            assert_eq!(o.as_ref().expect("valid").key, s.canonical_key());
        }
    }

    #[test]
    fn offer_sheds_typed_when_full() {
        let srv = Server::new(Workers::new(1));
        let mut q = Admission::new(&srv, 2);
        assert!(q.offer(JobSpec::new("t3e", 4).with_seed(0)).is_ok());
        assert!(q.offer(JobSpec::new("t3e", 4).with_seed(1)).is_ok());
        let err = q.offer(JobSpec::new("t3e", 4).with_seed(2)).expect_err("full");
        assert!(
            matches!(err, SpecError::Overloaded { queued: 2, capacity: 2 }),
            "{err:?}"
        );
        assert_eq!(srv.shed_jobs(), 1, "the shed is counted, never silent");
        assert_eq!(q.queued(), 2, "buffered jobs are untouched by a shed");
        assert_eq!(q.flush().len(), 2);
    }

    #[test]
    fn deadline_flood_serves_freshest_sheds_rest_typed() {
        // The DESIGN.md §12 worked example: 20 offers into capacity 8
        // with budget 16 → 12 refused at the door (Overloaded), and at
        // flush time the 3 stalest buffered jobs have out-waited their
        // budget (DeadlineExpired) while the freshest 5 execute.
        let srv = Server::new(Workers::new(2));
        let mut q = Admission::with_deadline(&srv, 8, 16);
        let mut overloaded = 0;
        for i in 0..20 {
            match q.offer(JobSpec::new("t3e", 4).with_seed(i)) {
                Ok(()) => {}
                Err(SpecError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
        assert_eq!(overloaded, 12);
        assert_eq!(q.tick(), 20);
        let outcomes = q.flush();
        assert_eq!(outcomes.len(), 8, "every buffered job gets an outcome slot");
        let expired: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                matches!(o, Err(SpecError::DeadlineExpired { .. })).then_some(i)
            })
            .collect();
        assert_eq!(expired, vec![0, 1, 2], "the stalest slots expire, in place");
        let served = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(served, 5, "the freshest jobs survive the flood");
        assert_eq!(srv.shed_jobs(), 15, "12 overloaded + 3 expired, all counted");
    }

    #[test]
    fn without_deadline_stale_jobs_never_expire() {
        let srv = Server::new(Workers::new(1));
        let mut q = Admission::new(&srv, 2);
        assert!(q.offer(JobSpec::new("t3e", 4).with_seed(0)).is_ok());
        // Advance the virtual clock far past any plausible budget.
        for i in 0..100 {
            let _ = q.offer(JobSpec::new("t3e", 4).with_seed(100 + i));
        }
        let outcomes = q.flush();
        assert!(outcomes.iter().all(|o| o.is_ok()), "no deadline, no expiry");
    }
}
