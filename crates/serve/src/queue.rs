//! Admission queue: bounded buffering between query arrival and batch
//! execution.
//!
//! The server's efficient unit of work is a *batch* — distinct misses
//! fan out over the worker pool together ([`Server::submit_batch`]).
//! [`Admission`] sits in front of it: queries accumulate in a bounded
//! [`beff_sync::channel`] and are flushed as one batch when the queue
//! fills (or on demand), which converts a stream of single queries
//! into pool-sized batches with a hard cap on buffered work. The
//! bound is the backpressure contract: an `enqueue` into a full queue
//! flushes first, so a producer can never buffer unboundedly ahead of
//! the simulator.

use crate::server::{Outcome, Server};
use crate::spec::{JobSpec, SpecError};
use beff_sync::channel::{bounded, Receiver, Sender};

/// A bounded spec queue in front of a [`Server`].
pub struct Admission<'s> {
    server: &'s Server,
    tx: Sender<JobSpec>,
    rx: Receiver<JobSpec>,
    capacity: usize,
    queued: usize,
}

impl<'s> Admission<'s> {
    /// Queue up to `capacity` specs (≥ 1) before forcing a flush.
    pub fn new(server: &'s Server, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = bounded(capacity);
        Self { server, tx, rx, capacity, queued: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Specs currently buffered.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Admit one spec. If the queue is full, the buffered batch is
    /// executed first and its outcomes returned (empty vector
    /// otherwise — the spec is just buffered).
    pub fn enqueue(&mut self, spec: JobSpec) -> Vec<Result<Outcome, SpecError>> {
        let flushed =
            if self.queued == self.capacity { self.flush() } else { Vec::new() };
        self.tx.send(spec).expect("admission queue receiver lives as long as the sender");
        self.queued += 1;
        flushed
    }

    /// Execute everything buffered as one batch, in admission order.
    pub fn flush(&mut self) -> Vec<Result<Outcome, SpecError>> {
        let mut batch = Vec::with_capacity(self.queued);
        while let Ok(spec) = self.rx.try_recv() {
            batch.push(spec);
        }
        self.queued = 0;
        if batch.is_empty() {
            return Vec::new();
        }
        self.server.submit_batch(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_sim::Workers;

    #[test]
    fn enqueue_buffers_until_capacity_then_flushes() {
        let srv = Server::new(Workers::new(2));
        let mut q = Admission::new(&srv, 3);
        for i in 0..3 {
            assert!(q.enqueue(JobSpec::new("t3e", 4).with_seed(i)).is_empty());
        }
        assert_eq!(q.queued(), 3);
        // Fourth admission overflows: the three buffered specs run.
        let flushed = q.enqueue(JobSpec::new("t3e", 4).with_seed(3));
        assert_eq!(flushed.len(), 3);
        assert_eq!(q.queued(), 1);
        let rest = q.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(q.queued(), 0);
        assert!(q.flush().is_empty(), "empty queue flushes to nothing");
        assert_eq!(srv.cache_stats().entries, 4);
    }

    #[test]
    fn flush_preserves_admission_order() {
        let srv = Server::new(Workers::new(1));
        let mut q = Admission::new(&srv, 8);
        let specs: Vec<JobSpec> =
            (0..4).map(|i| JobSpec::new("t3e", 4).with_seed(i)).collect();
        for s in &specs {
            q.enqueue(s.clone());
        }
        let outcomes = q.flush();
        for (o, s) in outcomes.iter().zip(&specs) {
            assert_eq!(o.as_ref().expect("valid").key, s.canonical_key());
        }
    }
}
