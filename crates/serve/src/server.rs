//! The server core: admit specs, answer hits from the cache, fan
//! misses out over the worker pool, and speak the frame payloads.
//!
//! [`Server`] is transport-agnostic — [`Server::handle_frame`] maps one
//! request payload to one response payload, and the TCP daemon
//! (`bin/serve.rs`), the load generator and the tests all drive the
//! same entry points in-process.
//!
//! ## Request / response shapes
//!
//! ```text
//! {"op":"run","spec":{…}}        → {"cached":…,"digest":"…","result":…}
//! {"op":"batch","specs":[{…},…]} → {"results":[…one per spec, in order…]}
//! {"op":"stats"}                 → {"hits":…,"misses":…,"entries":…,…}
//! {"op":"shutdown"}              → {"ok":true}   (and the daemon exits)
//! anything invalid               → {"error":"…"}
//! ```
//!
//! `cached` means the result existed in the cache when the query was
//! admitted; duplicates *within* one batch are deduplicated down to a
//! single simulation but still count as misses (they were admitted
//! before any result existed).

use crate::cache::{CacheStats, ResultCache};
use crate::pool::SessionPool;
use crate::spec::{JobSpec, SpecError};
use beff_bench::resilient::ResilientRunner;
use beff_json::Json;
use beff_sim::{map_ordered, Workers};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One answered query.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Full canonical cache key (the content address).
    pub key: String,
    /// Short printable digest of the key.
    pub digest: String,
    /// The result report bytes (a JSON document).
    pub bytes: Arc<str>,
    /// Was the result already cached when the query was admitted?
    pub cached: bool,
}

/// A resident benchmark server: session pool + result cache + worker
/// fan-out. Shared-state only — safe to drive from `map_ordered`
/// worker threads or a transport loop alike.
pub struct Server {
    pool: SessionPool,
    cache: ResultCache,
    workers: Workers,
}

impl Server {
    pub fn new(workers: Workers) -> Self {
        Self { pool: SessionPool::new(), cache: ResultCache::new(), workers }
    }

    pub fn workers(&self) -> Workers {
        self.workers
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Answer one spec (see [`Server::submit_batch`]).
    pub fn submit(&self, spec: &JobSpec) -> Result<Outcome, SpecError> {
        self.submit_batch(std::slice::from_ref(spec))
            .pop()
            .expect("one outcome per submitted spec")
    }

    /// Answer a batch of specs, in order. Hits come straight from the
    /// cache; distinct misses run batch-parallel on up to
    /// `workers` threads (submission-order fan-out, so the outcome
    /// bytes are independent of the worker count); duplicate misses
    /// within the batch are computed once.
    pub fn submit_batch(&self, specs: &[JobSpec]) -> Vec<Result<Outcome, SpecError>> {
        // Admission pass: validate, key, and classify each spec.
        enum Admitted {
            Hit(Outcome),
            /// Miss (or duplicate of one): resolved at the index into
            /// the miss list below.
            Pending(String),
            Refused(SpecError),
        }
        let mut admitted = Vec::with_capacity(specs.len());
        let mut pending: BTreeMap<String, JobSpec> = BTreeMap::new();
        for spec in specs {
            match spec.resolve() {
                Err(e) => admitted.push(Admitted::Refused(e)),
                Ok(_sized) => {
                    let key = spec.canonical_key();
                    match self.cache.get(&key) {
                        Some(bytes) => admitted.push(Admitted::Hit(Outcome {
                            digest: spec.key_digest(),
                            key,
                            bytes,
                            cached: true,
                        })),
                        None => {
                            pending.entry(key.clone()).or_insert_with(|| spec.clone());
                            admitted.push(Admitted::Pending(key));
                        }
                    }
                }
            }
        }

        // Execution pass: every distinct missing key, batch-parallel.
        let jobs: Vec<(String, JobSpec)> = pending.into_iter().collect();
        let computed = map_ordered(self.workers, jobs, |_, (key, spec)| {
            let bytes = self.execute(&spec);
            (key, bytes)
        });
        for (key, bytes) in computed {
            self.cache.insert(key, bytes);
        }

        // Assembly pass: outcomes in submission order.
        admitted
            .into_iter()
            .zip(specs)
            .map(|(a, spec)| match a {
                Admitted::Hit(o) => Ok(o),
                Admitted::Refused(e) => Err(e),
                Admitted::Pending(key) => {
                    let bytes = self
                        .cache
                        .peek(&key)
                        .expect("every pending key was executed and inserted");
                    Ok(Outcome { digest: spec.key_digest(), key, bytes, cached: false })
                }
            })
            .collect()
    }

    /// Run a spec **bypassing the cache** (nothing read, nothing
    /// stored): the correctness audit's tool for proving cached bytes
    /// equal recomputed bytes.
    pub fn recompute(&self, spec: &JobSpec) -> Result<String, SpecError> {
        spec.resolve()?;
        Ok(self.execute(spec))
    }

    /// Simulate one validated spec to its result report bytes.
    ///
    /// Clean specs run on a pooled resident partition. Specs with a
    /// fault plan — even an all-disabled one — run the resilient driver
    /// on a fresh single-use world instead: a fault session is stateful
    /// across runs, and the resilient report is a different (richer)
    /// schema, which must not depend on whether the plan happens to be
    /// empty.
    fn execute(&self, spec: &JobSpec) -> String {
        let sized = spec
            .resolve()
            .expect("execute() is only called on specs that already resolved");
        let cfg = spec.beff_config(&sized);
        match &spec.fault {
            None => {
                let partition = self.pool.checkout(spec, &sized);
                let result = partition.run(&cfg);
                self.pool.checkin(partition);
                beff_json::to_string(&result)
            }
            Some(fault) => {
                let net = sized.network();
                let plan = fault.to_fault_spec().materialize(&net);
                let runner = ResilientRunner::on_net(net, spec.procs, plan);
                beff_json::to_string(&runner.run(&cfg))
            }
        }
    }

    /// Map one request payload to one response payload. The `bool` is
    /// the shutdown signal for a transport loop.
    pub fn handle_frame(&self, payload: &str) -> (String, bool) {
        let parsed = match beff_json::parse(payload) {
            Ok(v) => v,
            Err(e) => return (error_body(&format!("bad request JSON: {e}")), false),
        };
        let fields = match &parsed {
            Json::Obj(fields) => fields,
            _ => return (error_body("request must be a JSON object"), false),
        };
        let field = |name: &str| fields.iter().find(|(n, _)| n == name).map(|(_, v)| v);
        let op = match field("op") {
            Some(Json::Str(op)) => op.as_str(),
            _ => return (error_body("request is missing a string \"op\""), false),
        };
        match op {
            "run" => {
                let Some(spec) = field("spec") else {
                    return (error_body("\"run\" request is missing \"spec\""), false);
                };
                let outcome = JobSpec::from_json(spec).and_then(|s| self.submit(&s));
                (outcome_body(&outcome), false)
            }
            "batch" => {
                let Some(Json::Arr(items)) = field("specs") else {
                    return (error_body("\"batch\" request is missing a \"specs\" array"), false);
                };
                let parsed: Vec<Result<JobSpec, SpecError>> =
                    items.iter().map(JobSpec::from_json).collect();
                let valid: Vec<JobSpec> =
                    parsed.iter().filter_map(|r| r.as_ref().ok().cloned()).collect();
                let mut answered = self.submit_batch(&valid).into_iter();
                let bodies: Vec<String> = parsed
                    .iter()
                    .map(|r| match r {
                        Ok(_) => outcome_body(
                            &answered.next().expect("one outcome per valid spec"),
                        ),
                        Err(e) => error_body(&e.to_string()),
                    })
                    .collect();
                (format!("{{\"results\":[{}]}}", bodies.join(",")), false)
            }
            "stats" => {
                let s = self.cache_stats();
                let body = format!(
                    "{{\"hits\":{},\"misses\":{},\"entries\":{},\"partitions_built\":{},\"partitions_idle\":{}}}",
                    s.hits,
                    s.misses,
                    s.entries,
                    self.pool.created(),
                    self.pool.idle_count(),
                );
                (body, false)
            }
            "shutdown" => ("{\"ok\":true}".to_string(), true),
            other => (error_body(&format!("unknown op {other:?}")), false),
        }
    }
}

/// `{"cached":…,"digest":"…","result":…}` — the result bytes are a
/// JSON document already, spliced in verbatim (never reparsed: the
/// response must carry the exact cached bytes).
fn outcome_body(outcome: &Result<Outcome, SpecError>) -> String {
    match outcome {
        Ok(o) => format!(
            "{{\"cached\":{},\"digest\":\"{}\",\"result\":{}}}",
            o.cached, o.digest, o.bytes
        ),
        Err(e) => error_body(&e.to_string()),
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}", beff_json::to_string(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(Workers::new(2))
    }

    #[test]
    fn miss_then_hit_returns_identical_shared_bytes() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4);
        let first = srv.submit(&spec).expect("valid spec");
        assert!(!first.cached);
        let second = srv.submit(&spec).expect("valid spec");
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.bytes, &second.bytes), "hit shares, not copies");
        let s = srv.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let srv = server();
        let a = JobSpec::new("t3e", 4);
        let b = JobSpec::new("t3e", 4).with_seed(99);
        let outcomes = srv.submit_batch(&[a.clone(), b.clone(), a.clone()]);
        let [oa, ob, oa2] = <[_; 3]>::try_from(outcomes).expect("three outcomes");
        let (oa, ob, oa2) =
            (oa.expect("valid"), ob.expect("valid"), oa2.expect("valid"));
        assert_eq!(oa.key, oa2.key);
        assert_ne!(oa.key, ob.key, "seed change must miss");
        assert_eq!(oa.bytes, oa2.bytes);
        assert_eq!(srv.cache_stats().entries, 2, "duplicate computed once");
    }

    #[test]
    fn invalid_spec_refused_without_poisoning_the_batch() {
        let srv = server();
        let good = JobSpec::new("t3e", 4);
        let bad = JobSpec::new("nope", 4);
        let outcomes = srv.submit_batch(&[bad, good]);
        assert!(matches!(outcomes[0], Err(SpecError::UnknownMachine(_))));
        assert!(outcomes[1].is_ok());
    }

    #[test]
    fn recompute_matches_cached_bytes() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4).with_seed(5);
        let cached = srv.submit(&spec).expect("valid spec");
        let fresh = srv.recompute(&spec).expect("valid spec");
        assert_eq!(cached.bytes.as_ref(), fresh.as_str());
    }

    #[test]
    fn frames_round_trip_the_protocol() {
        let srv = server();
        let (body, stop) =
            srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e","procs":4}}"#);
        assert!(!stop);
        assert!(body.starts_with("{\"cached\":false,"), "{body}");
        let parsed = beff_json::parse(&body).expect("response is valid JSON");
        let Json::Obj(fields) = parsed else { panic!("object response") };
        assert!(fields.iter().any(|(n, _)| n == "result"));

        let (body, _) =
            srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e","procs":4}}"#);
        assert!(body.starts_with("{\"cached\":true,"), "{body}");

        let (body, _) = srv.handle_frame(r#"{"op":"stats"}"#);
        assert!(body.contains("\"entries\":1"), "{body}");

        let (body, _) = srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e"}}"#);
        assert!(body.starts_with("{\"error\":"), "{body}");

        let (body, _) = srv.handle_frame("not json");
        assert!(body.starts_with("{\"error\":"), "{body}");

        let (_, stop) = srv.handle_frame(r#"{"op":"shutdown"}"#);
        assert!(stop);
    }

    #[test]
    fn worker_count_is_unobservable_in_outcome_bytes() {
        let specs: Vec<JobSpec> =
            (0..4).map(|i| JobSpec::new("t3e", 4).with_seed(100 + i)).collect();
        let serial: Vec<_> = Server::new(Workers::new(1))
            .submit_batch(&specs)
            .into_iter()
            .map(|o| o.expect("valid").bytes)
            .collect();
        let parallel: Vec<_> = Server::new(Workers::new(4))
            .submit_batch(&specs)
            .into_iter()
            .map(|o| o.expect("valid").bytes)
            .collect();
        assert_eq!(serial, parallel);
    }
}
