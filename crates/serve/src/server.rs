//! The server core: admit specs, answer hits from the cache, fan
//! misses out over the worker pool, and speak the frame payloads.
//!
//! [`Server`] is transport-agnostic — [`Server::handle_frame`] maps one
//! request payload to one response payload, [`serve_connection`] runs
//! the per-connection frame loop over any `Read + Write` transport, and
//! the TCP daemon (`bin/serve.rs`), the load generator, the torture
//! harness and the tests all drive the same entry points in-process.
//!
//! ## Request / response shapes
//!
//! ```text
//! {"op":"run","spec":{…}}        → {"cached":…,"digest":"…","result":…}
//! {"op":"batch","specs":[{…},…]} → {"results":[…one per spec, in order…]}
//! {"op":"stats"}                 → {"cache_hits":…,"cache_misses":…,…}
//! {"op":"shutdown"}              → {"ok":true}   (after draining; daemon exits)
//! anything invalid               → {"error":"…"}
//! ```
//!
//! `cached` means the result existed in the cache when the query was
//! admitted; duplicates *within* one batch are deduplicated down to a
//! single simulation but still count as misses (they were admitted
//! before any result existed).
//!
//! ## Failure containment (DESIGN.md §12)
//!
//! Three rules keep one bad input from taking the daemon down:
//!
//! 1. a pooled world that raises a typed [`BeffError`] is quarantined
//!    and the job retried once on a fresh cold world; a second typed
//!    failure becomes a typed [`SpecError::WorldFailed`] response and
//!    is **never cached** (only successful results are pure functions
//!    of their spec);
//! 2. a malformed or oversized frame gets a typed error frame (best
//!    effort) and a clean connection close — the accept loop lives on;
//! 3. a `shutdown` op first stops admission (typed
//!    [`SpecError::ShuttingDown`] refusals) and then drains every
//!    in-flight batch, so admitted jobs always complete byte-stable.

use crate::cache::{CacheStats, ResultCache};
use crate::journal::{Journal, JournalError, Recovery};
use crate::pool::SessionPool;
use crate::spec::{JobSpec, SpecError};
use crate::wire::{self, WireError};
use beff_bench::resilient::ResilientRunner;
use beff_json::Json;
use beff_machines::Machine;
use beff_sim::{map_ordered, BeffError, Workers};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use beff_sync::{order::Rank, Condvar, Mutex};

/// Lock level 13 (`serve.drain`): between the journal (12) and the
/// cache (14). Guards only the admission flag and in-flight counter —
/// held for a few instructions around a batch, never across one.
static DRAIN_RANK: Rank = Rank::new(13, "serve.drain");

/// Hard per-frame admission bound: a `batch` frame may carry at most
/// this many specs; the excess is shed with typed
/// [`SpecError::Overloaded`] responses (never silently dropped). Keeps
/// one hostile frame from queueing unbounded simulation work behind
/// the serial transport.
pub const MAX_BATCH: usize = 256;

/// One answered query.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Full canonical cache key (the content address).
    pub key: String,
    /// Short printable digest of the key.
    pub digest: String,
    /// The result report bytes (a JSON document).
    pub bytes: Arc<str>,
    /// Was the result already cached when the query was admitted?
    pub cached: bool,
}

/// Admission/drain state: a plain counter behind a low-level lock so
/// `begin_shutdown` can wait for in-flight batches without spinning.
struct Drain {
    accepting: bool,
    inflight: usize,
}

/// A resident benchmark server: session pool + result cache + worker
/// fan-out, with an optional durable journal shadowing the cache.
/// Shared-state only — safe to drive from `map_ordered` worker threads
/// or a transport loop alike.
pub struct Server {
    pool: SessionPool,
    cache: ResultCache,
    workers: Workers,
    journal: Option<Journal>,
    /// Set on the first failed append: the daemon degrades to serving
    /// from memory instead of dying on a sick disk.
    journal_dead: AtomicBool,
    shed_jobs: AtomicU64,
    drain: Mutex<Drain>,
    drained: Condvar,
}

impl Server {
    pub fn new(workers: Workers) -> Self {
        Self {
            pool: SessionPool::new(),
            cache: ResultCache::new(),
            workers,
            journal: None,
            journal_dead: AtomicBool::new(false),
            shed_jobs: AtomicU64::new(0),
            drain: Mutex::ranked(&DRAIN_RANK, Drain { accepting: true, inflight: 0 }),
            drained: Condvar::new(),
        }
    }

    /// A server whose cache is shadowed by the durable journal at
    /// `path`: existing records are replayed to warm the cache (a
    /// restart serves every previously-computed spec without
    /// recomputation), fresh results are appended as they are computed.
    /// Returns the [`Recovery`] report — `truncated` is `Some` when a
    /// torn or corrupt tail was healed away.
    pub fn with_journal(workers: Workers, path: &Path) -> Result<(Self, Recovery), JournalError> {
        let (journal, records, recovery) = Journal::open(path)?;
        let mut server = Self::new(workers);
        for (key, bytes) in records {
            // Journal replay conflicts were already truncated typed;
            // surviving records are prefix-consistent, so this insert
            // can only be a first write.
            server.cache.insert(key, bytes);
        }
        server.journal = Some(journal);
        Ok((server, recovery))
    }

    pub fn workers(&self) -> Workers {
        self.workers
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Jobs shed with typed `Overloaded`/`DeadlineExpired` rejections
    /// over the server's lifetime (monotone).
    pub fn shed_jobs(&self) -> u64 {
        self.shed_jobs.load(Ordering::Relaxed)
    }

    /// Count `n` shed jobs (the admission queue reports its typed
    /// rejections here so `stats` sees one total).
    pub fn note_shed(&self, n: u64) {
        self.shed_jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Batches currently executing (observability for drain tests).
    pub fn inflight(&self) -> usize {
        self.drain.lock().inflight
    }

    /// Is the server still admitting new work?
    pub fn accepting(&self) -> bool {
        self.drain.lock().accepting
    }

    /// Stop admitting new work, then block until every in-flight batch
    /// has completed. Admitted jobs finish with their normal, byte
    /// stable responses; anything submitted after this returns typed
    /// [`SpecError::ShuttingDown`]. Idempotent.
    pub fn begin_shutdown(&self) {
        let mut d = self.drain.lock();
        d.accepting = false;
        while d.inflight > 0 {
            self.drained.wait(&mut d);
        }
    }

    /// Answer one spec (see [`Server::submit_batch`]).
    pub fn submit(&self, spec: &JobSpec) -> Result<Outcome, SpecError> {
        self.submit_batch(std::slice::from_ref(spec))
            .pop()
            // beff-analyze: allow(panicflow): submit_batch returns exactly one outcome per spec, and the input slice has length one
            .expect("one outcome per submitted spec")
    }

    /// Answer a batch of specs, in order. Hits come straight from the
    /// cache; distinct misses run batch-parallel on up to
    /// `workers` threads (submission-order fan-out, so the outcome
    /// bytes are independent of the worker count); duplicate misses
    /// within the batch are computed once. During shutdown drain the
    /// whole batch is refused typed.
    pub fn submit_batch(&self, specs: &[JobSpec]) -> Vec<Result<Outcome, SpecError>> {
        {
            let mut d = self.drain.lock();
            if !d.accepting {
                return specs.iter().map(|_| Err(SpecError::ShuttingDown)).collect();
            }
            d.inflight += 1;
        }
        let out = self.submit_batch_admitted(specs);
        {
            let mut d = self.drain.lock();
            d.inflight -= 1;
            if d.inflight == 0 {
                self.drained.notify_all();
            }
        }
        out
    }

    fn submit_batch_admitted(&self, specs: &[JobSpec]) -> Vec<Result<Outcome, SpecError>> {
        // Admission pass: validate, key, and classify each spec.
        enum Admitted {
            Hit(Outcome),
            /// Miss (or duplicate of one): resolved at the key into
            /// the computed map below.
            Pending(String),
            Refused(SpecError),
        }
        let mut admitted = Vec::with_capacity(specs.len());
        let mut pending: BTreeMap<String, (JobSpec, Machine)> = BTreeMap::new();
        for spec in specs {
            match spec.resolve() {
                Err(e) => admitted.push(Admitted::Refused(e)),
                Ok(sized) => {
                    let key = spec.canonical_key();
                    match self.cache.get(&key) {
                        Some(bytes) => admitted.push(Admitted::Hit(Outcome {
                            digest: spec.key_digest(),
                            key,
                            bytes,
                            cached: true,
                        })),
                        None => {
                            pending.entry(key.clone()).or_insert_with(|| (spec.clone(), sized));
                            admitted.push(Admitted::Pending(key));
                        }
                    }
                }
            }
        }

        // Execution pass: every distinct missing key, batch-parallel.
        // Only successful results enter the cache (and the journal);
        // typed world failures stay per-batch values.
        let jobs: Vec<(String, (JobSpec, Machine))> = pending.into_iter().collect();
        let computed = map_ordered(self.workers, jobs, |_, (key, (spec, sized))| {
            let outcome = self.execute(&spec, &sized);
            (key, outcome)
        });
        let mut failed: BTreeMap<String, BeffError> = BTreeMap::new();
        for (key, outcome) in computed {
            match outcome {
                Ok(bytes) => {
                    let (shared, fresh) = self.cache.insert_if_absent(key.clone(), bytes);
                    if fresh {
                        self.journal_append(&key, &shared);
                    }
                }
                Err(e) => {
                    failed.insert(key, e);
                }
            }
        }

        // Assembly pass: outcomes in submission order.
        admitted
            .into_iter()
            .zip(specs)
            .map(|(a, spec)| match a {
                Admitted::Hit(o) => Ok(o),
                Admitted::Refused(e) => Err(e),
                Admitted::Pending(key) => match self.cache.peek(&key) {
                    Some(bytes) => {
                        Ok(Outcome { digest: spec.key_digest(), key, bytes, cached: false })
                    }
                    None => {
                        let cause = failed
                            .get(&key)
                            // beff-analyze: allow(panicflow): the execution pass ran every distinct pending key; each lands in the cache or in `failed`
                            .expect("every pending key was executed: cached or failed");
                        Err(SpecError::WorldFailed(cause.to_string()))
                    }
                },
            })
            .collect()
    }

    /// Shadow a fresh insert in the journal. A failing disk degrades
    /// journaling (once, loudly) instead of killing the daemon: the
    /// in-memory cache stays authoritative.
    fn journal_append(&self, key: &str, bytes: &str) {
        let Some(journal) = &self.journal else { return };
        if self.journal_dead.load(Ordering::Relaxed) {
            return;
        }
        if let Err(e) = journal.append(key, bytes) {
            self.journal_dead.store(true, Ordering::Relaxed);
            eprintln!("serve: journal degraded (cache stays in-memory): {e}");
        }
    }

    /// Run a spec **bypassing the cache** (nothing read, nothing
    /// stored): the correctness audit's tool for proving cached bytes
    /// equal recomputed bytes.
    pub fn recompute(&self, spec: &JobSpec) -> Result<String, SpecError> {
        let sized = spec.resolve()?;
        self.execute(spec, &sized).map_err(|e| SpecError::WorldFailed(e.to_string()))
    }

    /// Simulate one validated spec to its result report bytes.
    ///
    /// Clean specs run on a pooled resident partition; a typed fault
    /// quarantines the partition and retries once on a fresh cold
    /// world (the self-healing path), and only a fresh world failing
    /// too surfaces as `Err`. Specs with a fault plan — even an
    /// all-disabled one — run the resilient driver on a fresh
    /// single-use world instead: a fault session is stateful across
    /// runs, and the resilient report is a different (richer) schema,
    /// which must not depend on whether the plan happens to be empty.
    fn execute(&self, spec: &JobSpec, sized: &Machine) -> Result<String, BeffError> {
        let cfg = spec.beff_config(sized);
        match &spec.fault {
            None => {
                let partition = self.pool.checkout(spec, sized);
                let first = if self.pool.take_poison(&spec.machine, spec.procs) {
                    partition.poisoned_run(&cfg)
                } else {
                    partition.try_run(&cfg)
                };
                match first {
                    Ok(result) => {
                        self.pool.checkin(partition);
                        Ok(beff_json::to_string(&result))
                    }
                    Err(_) => {
                        // The world is damaged state now, whatever the
                        // fault was: quarantine it and re-run the job
                        // on a guaranteed-cold partition.
                        self.pool.quarantine(partition);
                        let fresh = self.pool.checkout(spec, sized);
                        // The retry consults the poison hook too, so
                        // the torture harness can drive this job all
                        // the way to the fresh-world-failed outcome.
                        let retry = if self.pool.take_poison(&spec.machine, spec.procs) {
                            fresh.poisoned_run(&cfg)
                        } else {
                            fresh.try_run(&cfg)
                        };
                        match retry {
                            Ok(result) => {
                                self.pool.checkin(fresh);
                                Ok(beff_json::to_string(&result))
                            }
                            Err(e) => {
                                self.pool.quarantine(fresh);
                                Err(e)
                            }
                        }
                    }
                }
            }
            Some(fault) => {
                let net = sized.network();
                let plan = fault.to_fault_spec().materialize(&net);
                let runner = ResilientRunner::on_net(net, spec.procs, plan);
                // beff-analyze: allow(taint): the resilient runner drives sim-engine worlds (EngineCfg::Sim); the real-clock arm it can reach is dead on this path
                Ok(beff_json::to_string(&runner.run(&cfg)))
            }
        }
    }

    /// Map one request payload to one response payload. The `bool` is
    /// the shutdown signal for a transport loop (raised only after the
    /// drain has completed).
    pub fn handle_frame(&self, payload: &str) -> (String, bool) {
        let parsed = match beff_json::parse(payload) {
            Ok(v) => v,
            Err(e) => return (error_body(&format!("bad request JSON: {e}")), false),
        };
        let fields = match &parsed {
            Json::Obj(fields) => fields,
            _ => return (error_body("request must be a JSON object"), false),
        };
        let field = |name: &str| fields.iter().find(|(n, _)| n == name).map(|(_, v)| v);
        let op = match field("op") {
            Some(Json::Str(op)) => op.as_str(),
            _ => return (error_body("request is missing a string \"op\""), false),
        };
        match op {
            "run" => {
                let Some(spec) = field("spec") else {
                    return (error_body("\"run\" request is missing \"spec\""), false);
                };
                let outcome = JobSpec::from_json(spec).and_then(|s| self.submit(&s));
                (outcome_body(&outcome), false)
            }
            "batch" => {
                let Some(Json::Arr(items)) = field("specs") else {
                    return (error_body("\"batch\" request is missing a \"specs\" array"), false);
                };
                // Admission bound: everything past MAX_BATCH is shed
                // with a typed per-spec rejection, in place.
                let over = items.len().saturating_sub(MAX_BATCH);
                if over > 0 {
                    self.note_shed(over as u64);
                }
                let admitted_items = &items[..items.len().min(MAX_BATCH)];
                let parsed: Vec<Result<JobSpec, SpecError>> =
                    admitted_items.iter().map(JobSpec::from_json).collect();
                let valid: Vec<JobSpec> =
                    parsed.iter().filter_map(|r| r.as_ref().ok().cloned()).collect();
                let mut answered = self.submit_batch(&valid).into_iter();
                let mut bodies: Vec<String> = parsed
                    .iter()
                    .map(|r| match r {
                        Ok(_) => outcome_body(
                            // beff-analyze: allow(panicflow): `answered` has one entry per Ok in `parsed`, consumed in the same order
                            &answered.next().expect("one outcome per valid spec"),
                        ),
                        Err(e) => error_body(&e.to_string()),
                    })
                    .collect();
                for i in 0..over {
                    bodies.push(error_body(
                        &SpecError::Overloaded {
                            queued: MAX_BATCH + i,
                            capacity: MAX_BATCH,
                        }
                        .to_string(),
                    ));
                }
                (format!("{{\"results\":[{}]}}", bodies.join(",")), false)
            }
            "stats" => {
                let s = self.cache_stats();
                let body = format!(
                    "{{\"cache_hits\":{},\"cache_misses\":{},\"entries\":{},\"partitions_built\":{},\"partitions_idle\":{},\"quarantined_worlds\":{},\"shed_jobs\":{}}}",
                    s.hits,
                    s.misses,
                    s.entries,
                    self.pool.created(),
                    self.pool.idle_count(),
                    self.pool.quarantined(),
                    self.shed_jobs(),
                );
                (body, false)
            }
            "shutdown" => {
                self.begin_shutdown();
                ("{\"ok\":true}".to_string(), true)
            }
            other => (error_body(&format!("unknown op {other:?}")), false),
        }
    }
}

/// How a connection ended (every way is survivable for the daemon —
/// only `Shutdown` stops the accept loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnClose {
    /// The peer closed the stream at a frame boundary.
    Clean,
    /// A `shutdown` op was answered; the daemon should exit.
    Shutdown,
    /// The peer broke the frame protocol (oversized length, non-UTF-8
    /// payload, or a disconnect mid-frame). A typed error frame was
    /// written back on a best-effort basis before closing.
    Protocol(String),
    /// The transport itself failed (read or write error).
    Transport(String),
}

/// Serve one connection's frames until it closes, fails, or asks for
/// shutdown. Never panics and never takes the caller down: every
/// malformed frame, mid-frame disconnect and transport error maps to a
/// typed [`ConnClose`], and a protocol offender gets a typed
/// `{"error":…}` goodbye frame when the transport still accepts one.
pub fn serve_connection<S: Read + Write>(server: &Server, stream: &mut S) -> ConnClose {
    loop {
        match wire::read_frame(stream) {
            Ok(Some(payload)) => {
                let (body, shutdown) = server.handle_frame(&payload);
                if let Err(e) = wire::write_frame(stream, &body) {
                    return ConnClose::Transport(format!("write failed: {e}"));
                }
                if shutdown {
                    return ConnClose::Shutdown;
                }
            }
            Ok(None) => return ConnClose::Clean,
            Err(e) => {
                return match classify_read_error(&e) {
                    ReadFailure::Protocol(report) => {
                        // Best effort: a peer that lied about a length
                        // may still be reading.
                        let _ = wire::write_frame(stream, &error_body(&report));
                        ConnClose::Protocol(report)
                    }
                    ReadFailure::Transport(report) => ConnClose::Transport(report),
                };
            }
        }
    }
}

enum ReadFailure {
    Protocol(String),
    Transport(String),
}

/// Split a frame-read failure into "the peer misbehaved" (typed
/// goodbye, keep accepting) and "the transport died" (close quietly).
fn classify_read_error(e: &std::io::Error) -> ReadFailure {
    match e.kind() {
        std::io::ErrorKind::InvalidData => ReadFailure::Protocol(format!("bad frame: {e}")),
        std::io::ErrorKind::UnexpectedEof => {
            ReadFailure::Protocol(format!("bad frame: {e}"))
        }
        _ => ReadFailure::Transport(format!("read failed: {e}")),
    }
}

/// `{"cached":…,"digest":"…","result":…}` — the result bytes are a
/// JSON document already, spliced in verbatim (never reparsed: the
/// response must carry the exact cached bytes).
fn outcome_body(outcome: &Result<Outcome, SpecError>) -> String {
    match outcome {
        Ok(o) => format!(
            "{{\"cached\":{},\"digest\":\"{}\",\"result\":{}}}",
            o.cached, o.digest, o.bytes
        ),
        Err(e) => error_body(&e.to_string()),
    }
}

pub(crate) fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}", beff_json::to_string(message))
}

// Keep the wire error type reachable from this module's docs.
#[allow(unused_imports)]
use WireError as _WireErrorForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MemStream;

    fn server() -> Server {
        Server::new(Workers::new(2))
    }

    #[test]
    fn miss_then_hit_returns_identical_shared_bytes() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4);
        let first = srv.submit(&spec).expect("valid spec");
        assert!(!first.cached);
        let second = srv.submit(&spec).expect("valid spec");
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.bytes, &second.bytes), "hit shares, not copies");
        let s = srv.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let srv = server();
        let a = JobSpec::new("t3e", 4);
        let b = JobSpec::new("t3e", 4).with_seed(99);
        let outcomes = srv.submit_batch(&[a.clone(), b.clone(), a.clone()]);
        let [oa, ob, oa2] = <[_; 3]>::try_from(outcomes).expect("three outcomes");
        let (oa, ob, oa2) =
            (oa.expect("valid"), ob.expect("valid"), oa2.expect("valid"));
        assert_eq!(oa.key, oa2.key);
        assert_ne!(oa.key, ob.key, "seed change must miss");
        assert_eq!(oa.bytes, oa2.bytes);
        assert_eq!(srv.cache_stats().entries, 2, "duplicate computed once");
    }

    #[test]
    fn invalid_spec_refused_without_poisoning_the_batch() {
        let srv = server();
        let good = JobSpec::new("t3e", 4);
        let bad = JobSpec::new("nope", 4);
        let outcomes = srv.submit_batch(&[bad, good]);
        assert!(matches!(outcomes[0], Err(SpecError::UnknownMachine(_))));
        assert!(outcomes[1].is_ok());
    }

    #[test]
    fn recompute_matches_cached_bytes() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4).with_seed(5);
        let cached = srv.submit(&spec).expect("valid spec");
        let fresh = srv.recompute(&spec).expect("valid spec");
        assert_eq!(cached.bytes.as_ref(), fresh.as_str());
    }

    #[test]
    fn frames_round_trip_the_protocol() {
        let srv = server();
        let (body, stop) =
            srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e","procs":4}}"#);
        assert!(!stop);
        assert!(body.starts_with("{\"cached\":false,"), "{body}");
        let parsed = beff_json::parse(&body).expect("response is valid JSON");
        let Json::Obj(fields) = parsed else { panic!("object response") };
        assert!(fields.iter().any(|(n, _)| n == "result"));

        let (body, _) =
            srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e","procs":4}}"#);
        assert!(body.starts_with("{\"cached\":true,"), "{body}");

        let (body, _) = srv.handle_frame(r#"{"op":"stats"}"#);
        assert!(body.contains("\"entries\":1"), "{body}");
        assert!(body.contains("\"cache_hits\":1"), "{body}");
        assert!(body.contains("\"quarantined_worlds\":0"), "{body}");
        assert!(body.contains("\"shed_jobs\":0"), "{body}");

        let (body, _) = srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e"}}"#);
        assert!(body.starts_with("{\"error\":"), "{body}");

        let (body, _) = srv.handle_frame("not json");
        assert!(body.starts_with("{\"error\":"), "{body}");

        let (_, stop) = srv.handle_frame(r#"{"op":"shutdown"}"#);
        assert!(stop);
    }

    #[test]
    fn worker_count_is_unobservable_in_outcome_bytes() {
        let specs: Vec<JobSpec> =
            (0..4).map(|i| JobSpec::new("t3e", 4).with_seed(100 + i)).collect();
        let serial: Vec<_> = Server::new(Workers::new(1))
            .submit_batch(&specs)
            .into_iter()
            .map(|o| o.expect("valid").bytes)
            .collect();
        let parallel: Vec<_> = Server::new(Workers::new(4))
            .submit_batch(&specs)
            .into_iter()
            .map(|o| o.expect("valid").bytes)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn poisoned_world_is_quarantined_and_the_job_self_heals() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4).with_seed(31);

        // Reference: what an undamaged server answers.
        let want = Server::new(Workers::new(1))
            .submit(&spec)
            .expect("valid")
            .bytes;

        srv.pool().arm_poison("t3e", 4, 1);
        let healed = srv.submit(&spec).expect("self-healed, not an error");
        assert_eq!(healed.bytes, want, "post-quarantine result must match cold");
        assert_eq!(srv.pool().quarantined(), 1, "the damaged world was retired");

        // The healed result is cached and the pool keeps serving.
        let hit = srv.submit(&spec).expect("valid");
        assert!(hit.cached);
        assert_eq!(hit.bytes, want);
        assert_eq!(srv.pool().quarantined(), 1, "no further quarantines");
    }

    #[test]
    fn double_poison_is_a_typed_failure_and_never_cached() {
        let srv = server();
        let spec = JobSpec::new("t3e", 4).with_seed(32);
        srv.pool().arm_poison("t3e", 4, 2);
        let err = srv.submit(&spec).expect_err("both worlds were poisoned");
        assert!(matches!(err, SpecError::WorldFailed(_)), "{err:?}");
        assert_eq!(srv.pool().quarantined(), 2);
        assert_eq!(srv.cache_stats().entries, 0, "failures are never cached");

        // With the poison exhausted the same spec now succeeds, and
        // matches an undamaged server bit for bit.
        let ok = srv.submit(&spec).expect("healthy again");
        assert!(!ok.cached, "the failure left nothing behind");
        let want = Server::new(Workers::new(1)).submit(&spec).expect("valid").bytes;
        assert_eq!(ok.bytes, want);
    }

    #[test]
    fn batch_frame_sheds_excess_typed() {
        let srv = server();
        // MAX_BATCH + 2 copies of one cached spec: cheap, and the tail
        // two must come back as typed Overloaded errors.
        srv.submit(&JobSpec::new("t3e", 4)).expect("warm the cache");
        let one = r#"{"machine":"t3e","procs":4}"#;
        let frame = format!(
            r#"{{"op":"batch","specs":[{}]}}"#,
            vec![one; MAX_BATCH + 2].join(",")
        );
        let (body, _) = srv.handle_frame(&frame);
        let Json::Obj(fields) = beff_json::parse(&body).expect("valid JSON") else {
            panic!("object response")
        };
        let Json::Arr(results) = &fields[0].1 else { panic!("results array") };
        assert_eq!(results.len(), MAX_BATCH + 2, "one response per submitted spec");
        let errors = results
            .iter()
            .filter(|r| matches!(r, Json::Obj(f) if f.iter().any(|(n, _)| n == "error")))
            .count();
        assert_eq!(errors, 2, "exactly the excess is shed");
        assert_eq!(srv.shed_jobs(), 2, "sheds are counted for stats");
    }

    #[test]
    fn shutdown_refuses_new_work_typed() {
        let srv = server();
        srv.submit(&JobSpec::new("t3e", 4)).expect("pre-shutdown work runs");
        srv.begin_shutdown();
        assert!(!srv.accepting());
        let err = srv.submit(&JobSpec::new("t3e", 4).with_seed(9)).expect_err("refused");
        assert!(matches!(err, SpecError::ShuttingDown));
        let (body, _) = srv.handle_frame(r#"{"op":"run","spec":{"machine":"t3e","procs":4,"seed":9}}"#);
        assert_eq!(body, "{\"error\":\"server is shutting down; no new jobs admitted\"}");
    }

    #[test]
    fn shutdown_racing_a_batch_drains_it_byte_stable() {
        let specs: Vec<JobSpec> =
            (0..3).map(|i| JobSpec::new("t3e", 4).with_seed(300 + i)).collect();
        let want: Vec<Arc<str>> = Server::new(Workers::new(1))
            .submit_batch(&specs)
            .into_iter()
            .map(|o| o.expect("valid").bytes)
            .collect();

        let srv = Arc::new(Server::new(Workers::new(2)));
        let srv2 = Arc::clone(&srv);
        let batch_specs = specs.clone();
        let handle = std::thread::spawn(move || srv2.submit_batch(&batch_specs));
        // Wait until the batch is admitted (or already finished), then
        // race shutdown against its execution: begin_shutdown must
        // block until the batch has fully drained.
        while srv.inflight() == 0 && !handle.is_finished() {
            std::thread::yield_now();
        }
        srv.begin_shutdown();
        assert_eq!(srv.inflight(), 0, "drain returned with work still in flight");
        let outcomes = handle.join().expect("batch thread");
        let got: Vec<Arc<str>> =
            outcomes.into_iter().map(|o| o.expect("admitted jobs complete").bytes).collect();
        assert_eq!(got, want, "a drained batch answers byte-stable results");
        assert!(matches!(
            srv.submit(&specs[0]),
            Err(SpecError::ShuttingDown)
        ));
    }

    #[test]
    fn connection_closes_clean_at_frame_boundary() {
        let srv = server();
        let mut input = Vec::new();
        input.extend_from_slice(&wire::encode(r#"{"op":"stats"}"#));
        let mut stream = MemStream::new(input);
        assert_eq!(serve_connection(&srv, &mut stream), ConnClose::Clean);
        let (reply, used) =
            wire::decode(&stream.output).expect("valid reply frame").expect("complete");
        assert!(reply.contains("\"cache_hits\":0"), "{reply}");
        assert_eq!(used, stream.output.len(), "exactly one reply frame");
    }

    #[test]
    fn oversized_frame_gets_typed_goodbye_and_survives() {
        let srv = server();
        let mut input = vec![0xff, 0xff, 0xff, 0xff]; // 4 GiB length lie
        input.extend_from_slice(b"junk");
        let mut stream = MemStream::new(input);
        let close = serve_connection(&srv, &mut stream);
        let ConnClose::Protocol(report) = close else { panic!("protocol close, got {close:?}") };
        assert_eq!(
            report,
            "bad frame: frame of 4294967295 bytes exceeds the 16777216-byte limit"
        );
        let (goodbye, _) =
            wire::decode(&stream.output).expect("valid goodbye").expect("complete");
        assert_eq!(
            goodbye,
            "{\"error\":\"bad frame: frame of 4294967295 bytes exceeds the 16777216-byte limit\"}"
        );
        // The server object is untouched — the daemon accepts again.
        srv.submit(&JobSpec::new("t3e", 4)).expect("still serving");
    }

    #[test]
    fn mid_frame_disconnect_is_a_typed_protocol_close() {
        let srv = server();
        let full = wire::encode(r#"{"op":"stats"}"#);
        // Cut inside the payload and inside the prefix.
        for cut in [2usize, full.len() - 3] {
            let mut stream = MemStream::new(full[..cut].to_vec());
            let close = serve_connection(&srv, &mut stream);
            let ConnClose::Protocol(report) = close else {
                panic!("cut at {cut}: expected protocol close, got {close:?}")
            };
            assert!(report.starts_with("bad frame: "), "{report}");
        }
    }

    #[test]
    fn shutdown_frame_ends_the_connection_after_answering() {
        let srv = server();
        let mut input = Vec::new();
        input.extend_from_slice(&wire::encode(r#"{"op":"shutdown"}"#));
        input.extend_from_slice(&wire::encode(r#"{"op":"stats"}"#)); // never read
        let mut stream = MemStream::new(input);
        assert_eq!(serve_connection(&srv, &mut stream), ConnClose::Shutdown);
        let (reply, used) = wire::decode(&stream.output).expect("ok").expect("complete");
        assert_eq!(reply, "{\"ok\":true}");
        assert_eq!(used, stream.output.len(), "nothing after the shutdown ack");
    }
}
