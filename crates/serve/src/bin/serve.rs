//! The resident daemon: TCP transport for the frame protocol.
//!
//! Connections are served one at a time on the accept thread — thread
//! creation is quarantined to the substrate's worker pool
//! (`beff-analyze` `threading` rule), and the daemon's parallelism
//! already lives *inside* a request: a batch frame fans its misses out
//! over `BEFF_WORKERS` simulation workers. A characterization service
//! is compute-bound on misses and memcpy-bound on hits; concurrent
//! transport would add nondeterministic interleaving for no
//! throughput.
//!
//! ```text
//! serve [--addr HOST:PORT] [--journal PATH]
//! #       default 127.0.0.1:7433, or $BEFF_SERVE_ADDR
//! ```
//!
//! With `--journal`, results are shadowed in a durable append-only
//! journal and replayed into the cache on startup: a killed-and
//! restarted daemon serves every previously-computed spec from disk,
//! byte-identical, without recomputation (a torn final record from a
//! mid-append kill is healed away with a typed report). A `{"op":
//! "shutdown"}` frame drains in-flight work and stops the daemon.
//!
//! The accept loop survives everything a peer can throw at it —
//! malformed frames, lying length prefixes, mid-frame disconnects —
//! by delegating each connection to
//! [`serve_connection`](beff_serve::serve_connection): every close is
//! typed, protocol offenders get a `{"error":…}` goodbye frame, and
//! only an explicit shutdown op ends the process.

use beff_serve::{serve_connection, ConnClose, Server};
use beff_sim::Workers;
use std::net::TcpListener;
use std::path::PathBuf;

fn main() {
    let workers = match Workers::try_from_env() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    let args = parse_args();
    let server = match &args.journal {
        None => Server::new(workers),
        Some(path) => match Server::with_journal(workers, path) {
            Ok((server, recovery)) => {
                eprintln!(
                    "serve: journal {} replayed: {} records ({} bytes)",
                    path.display(),
                    recovery.recovered,
                    recovery.bytes
                );
                if let Some(t) = &recovery.truncated {
                    eprintln!("serve: journal tail healed: {t}");
                }
                server
            }
            Err(e) => {
                eprintln!("serve: cannot open journal {}: {e}", path.display());
                std::process::exit(1);
            }
        },
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    eprintln!("serve: listening on {} ({} workers)", args.addr, workers.get());
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        match serve_connection(&server, &mut stream) {
            ConnClose::Clean => {}
            ConnClose::Protocol(report) => eprintln!("serve: {report}"),
            ConnClose::Transport(report) => eprintln!("serve: {report}"),
            ConnClose::Shutdown => {
                eprintln!("serve: shutdown requested; drained");
                return;
            }
        }
    }
}

struct Args {
    addr: String,
    journal: Option<PathBuf>,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("serve: {flag} needs a value");
                std::process::exit(2);
            }
        })
    };
    let addr = value_of("--addr")
        .or_else(|| std::env::var("BEFF_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7433".to_string());
    Args { addr, journal: value_of("--journal").map(PathBuf::from) }
}
