//! The resident daemon: TCP transport for the frame protocol.
//!
//! Connections are served one at a time on the accept thread — thread
//! creation is quarantined to the substrate's worker pool
//! (`beff-analyze` `threading` rule), and the daemon's parallelism
//! already lives *inside* a request: a batch frame fans its misses out
//! over `BEFF_WORKERS` simulation workers. A characterization service
//! is compute-bound on misses and memcpy-bound on hits; concurrent
//! transport would add nondeterministic interleaving for no
//! throughput.
//!
//! ```text
//! serve [--addr HOST:PORT]     # default 127.0.0.1:7433, or $BEFF_SERVE_ADDR
//! ```
//!
//! A `{"op":"shutdown"}` frame stops the daemon after answering.

use beff_serve::{wire, Server};
use beff_sim::Workers;
use std::net::TcpListener;

fn main() {
    let workers = match Workers::try_from_env() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };
    let addr = addr_arg();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("serve: listening on {addr} ({} workers)", workers.get());
    let server = Server::new(workers);
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(payload)) => {
                    let (body, shutdown) = server.handle_frame(&payload);
                    if let Err(e) = wire::write_frame(&mut stream, &body) {
                        eprintln!("serve: write failed: {e}");
                        break;
                    }
                    if shutdown {
                        eprintln!("serve: shutdown requested");
                        return;
                    }
                }
                Ok(None) => break, // client closed cleanly
                Err(e) => {
                    eprintln!("serve: bad frame: {e}");
                    break;
                }
            }
        }
    }
}

fn addr_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--addr") {
        if let Some(v) = args.get(i + 1) {
            return v.clone();
        }
        eprintln!("serve: --addr needs a HOST:PORT value");
        std::process::exit(2);
    }
    std::env::var("BEFF_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7433".to_string())
}
