//! The serving-layer torture harness: a seeded adversarial scenario
//! mix that proves the daemon's failure model (DESIGN.md §12) holds.
//!
//! Every scenario is deterministic — adversarial inputs come from a
//! fixed seed, transports are in-memory ([`MemStream`]), worlds are
//! poisoned through the pool's explicit hook, and the journal lives in
//! a scratch directory this harness owns — so the whole run distills
//! to a canonical JSON section that `verify.sh` byte-compares against
//! a golden and across `BEFF_WORKERS` (the checked properties must not
//! depend on the worker count).
//!
//! Scenarios:
//!
//! * **frame_fuzz** — seeded garbage, lying length prefixes, bad UTF-8
//!   and valid frames through [`serve_connection`]: every close is
//!   typed, valid frames keep being answered, the server object
//!   survives all of it;
//! * **disconnects** — a valid frame cut at *every* possible byte
//!   boundary: each is a typed protocol close, never a hang or panic;
//! * **journal** — kill-and-restart: a journal-backed server computes
//!   a spec set (hero partition included), is dropped mid-life, and a
//!   second server on the same journal must serve every spec as a
//!   cache hit, byte-identical, audited by recomputation; then a
//!   mid-append kill is simulated by tearing the final record and the
//!   reopen must recover every prior record with a typed truncation
//!   report;
//! * **quarantine** — a poisoned world self-heals (result bit-equal to
//!   cold) and a double poison surfaces as typed `WorldFailed`,
//!   cached never;
//! * **fault_storm** — a seeded burst of faulted specs, replayed:
//!   byte-identical both times and across a fresh server;
//! * **overload** — a flood through the deadline admission queue:
//!   typed `Overloaded`/`DeadlineExpired` sheds in exact counts, the
//!   freshest jobs served;
//! * **shutdown** — post-drain submissions refused typed.
//!
//! ```text
//! serve_torture [--out FILE] [--golden FILE] [--report FILE]
//!               [--scratch DIR] [--hero-procs N]
//! ```
//!
//! This file is on the `beff-analyze` wall-clock exempt list: the
//! `--report` wall section reads host time (and nothing gated does).

use beff_json::{Json, ToJson};
use beff_serve::journal::{self, Journal};
use beff_serve::wire::{self, MemStream};
use beff_serve::{
    fnv1a64, serve_connection, Admission, ConnClose, FaultCfg, JobSpec, Server, SpecError,
};
use beff_sim::Workers;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Seed of every adversarial input in this harness (the torture mix is
/// part of the gate's definition, so it is fixed, not host entropy).
const TORTURE_SEED: u64 = 0x70B7_0001;

fn main() {
    let cli = Cli::parse();
    let workers = match Workers::try_from_env() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("serve_torture: {e}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();

    let frame_fuzz = frame_fuzz_scenario(workers);
    let disconnects = disconnect_scenario(workers);
    let journal = journal_scenario(workers, &cli.scratch, cli.hero_procs);
    let quarantine = quarantine_scenario(workers);
    let fault_storm = fault_storm_scenario(workers);
    let overload = overload_scenario(workers);
    let shutdown = shutdown_scenario(workers);

    let report = Report {
        frame_fuzz,
        disconnects,
        journal,
        quarantine,
        fault_storm,
        overload,
        shutdown,
    };
    let canonical = beff_json::to_canonical(&report);

    if let Some(path) = &cli.out {
        write_file(path, &canonical);
    }
    if let Some(path) = &cli.report {
        let full = Json::object()
            .raw("torture", report.to_json())
            .raw(
                "wall",
                Json::object()
                    .field("workers", &workers.get())
                    .field("total_secs", &t0.elapsed().as_secs_f64())
                    .build(),
            )
            .build();
        write_file(path, &(beff_json::to_string_pretty(&full) + "\n"));
    }
    if let Some(golden) = &cli.golden {
        let want = std::fs::read_to_string(golden).unwrap_or_else(|e| {
            eprintln!("serve_torture: cannot read golden {golden}: {e}");
            std::process::exit(1);
        });
        if want != canonical {
            eprintln!(
                "serve_torture: torture section diverges from golden {golden} — the failure \
                 model regressed (or an intended change: regenerate with --out)"
            );
            std::process::exit(1);
        }
    }

    println!(
        "serve_torture: survived {} fuzz cases, {} disconnect cuts; journal restart served \
         {} specs from disk; all scenario invariants held",
        report.frame_fuzz.cases, report.disconnects.cuts, report.journal.recovered,
    );
}

// ---------------------------------------------------------------- fuzz

struct FrameFuzz {
    cases: usize,
    protocol_closes: usize,
    clean_closes: usize,
    replies: usize,
    reply_digest: String,
}

/// Seeded hostile byte streams into the connection loop: the server
/// answers what is answerable, types what is not, and never dies.
fn frame_fuzz_scenario(workers: Workers) -> FrameFuzz {
    let srv = Server::new(workers);
    let mut rng = TortureRng::new(TORTURE_SEED);
    let mut out = FrameFuzz {
        cases: 0,
        protocol_closes: 0,
        clean_closes: 0,
        replies: 0,
        reply_digest: String::new(),
    };
    let mut reply_hash: u64 = 0xcbf2_9ce4_8422_2325;
    let stats = wire::encode(r#"{"op":"stats"}"#);
    for case in 0..64 {
        let input: Vec<u8> = match case % 4 {
            // Pure seeded garbage of a seeded length.
            0 => (0..rng.below(48) + 1).map(|_| rng.byte()).collect(),
            // A lying length prefix (over the frame cap) + tail noise.
            1 => {
                let mut v = ((wire::MAX_FRAME as u32) + 1 + rng.below(1 << 20) as u32)
                    .to_be_bytes()
                    .to_vec();
                v.extend((0..rng.below(16)).map(|_| rng.byte()));
                v
            }
            // A length-correct frame whose payload is not UTF-8.
            2 => {
                let mut v = 4u32.to_be_bytes().to_vec();
                v.extend_from_slice(&[0xff, 0xfe, rng.byte() | 0x80, 0x80]);
                v
            }
            // A valid stats frame, then garbage: answered, then typed.
            _ => {
                let mut v = stats.clone();
                v.extend((0..rng.below(3) + 1).map(|_| rng.byte()));
                v
            }
        };
        out.cases += 1;
        let mut stream = MemStream::new(input);
        match serve_connection(&srv, &mut stream) {
            ConnClose::Clean => out.clean_closes += 1,
            ConnClose::Protocol(_) => out.protocol_closes += 1,
            other => fail(&format!("fuzz case {case}: unexpected close {other:?}")),
        }
        // Every reply the server wrote must itself be a well-formed
        // frame stream; fold the payload bytes into one digest.
        let mut used = 0;
        while let Some((payload, n)) = wire::decode(&stream.output[used..])
            .unwrap_or_else(|e| fail(&format!("fuzz case {case}: server wrote a bad frame: {e}")))
        {
            out.replies += 1;
            for b in payload.as_bytes() {
                reply_hash ^= u64::from(*b);
                reply_hash = reply_hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            used += n;
        }
        assert_eq!(used, stream.output.len(), "server output ends at a frame boundary");
    }
    // The abused server still serves: submit must succeed afterwards.
    srv.submit(&JobSpec::new("t3e", 4)).unwrap_or_else(|e| {
        fail(&format!("server damaged by fuzz input: {e}"));
    });
    out.reply_digest = format!("{reply_hash:016x}");
    out
}

struct Disconnects {
    cuts: usize,
    protocol_closes: usize,
}

/// One valid frame, cut at every possible byte boundary: a peer can
/// vanish anywhere mid-frame and the close is always typed.
fn disconnect_scenario(workers: Workers) -> Disconnects {
    let srv = Server::new(workers);
    let full = wire::encode(r#"{"op":"run","spec":{"machine":"t3e","procs":4}}"#);
    let mut out = Disconnects { cuts: 0, protocol_closes: 0 };
    for cut in 1..full.len() {
        out.cuts += 1;
        let mut stream = MemStream::new(full[..cut].to_vec());
        match serve_connection(&srv, &mut stream) {
            ConnClose::Protocol(report) => {
                assert!(report.starts_with("bad frame: "), "cut {cut}: {report}");
                out.protocol_closes += 1;
            }
            other => fail(&format!("cut {cut}: expected a protocol close, got {other:?}")),
        }
    }
    out
}

// ------------------------------------------------------------- journal

struct JournalScenario {
    specs: usize,
    recovered: usize,
    recovered_bytes: u64,
    hero_digest: String,
    result_digest: String,
    audited_identical: usize,
    torn_recovered: usize,
    torn_record: usize,
    torn_offset: u64,
}

/// Kill-and-restart: everything computed before the kill is served
/// from disk afterwards, byte-identical, proven by recomputation; a
/// mid-append kill loses exactly the torn record, typed.
fn journal_scenario(workers: Workers, scratch: &Path, hero_procs: usize) -> JournalScenario {
    std::fs::create_dir_all(scratch)
        .unwrap_or_else(|e| fail(&format!("cannot create scratch {scratch:?}: {e}")));
    let path = scratch.join("torture.journal");
    let _ = std::fs::remove_file(&path);

    let specs = vec![
        JobSpec::new("t3e", 16).with_seed(201),
        JobSpec::new("sx4", 8).with_seed(202),
        JobSpec::new("ibm-sp", 16).with_seed(203),
        JobSpec::new("t3e", hero_procs),
    ];
    let hero = specs.last().expect("spec set is never empty").clone();

    // Life 1: compute everything, journaling as we go — then "kill"
    // the daemon by dropping it. No shutdown ceremony: the journal's
    // durability must not depend on a clean exit.
    let mut first_digests = Vec::new();
    {
        let (srv, recovery) = Server::with_journal(workers, &path)
            .unwrap_or_else(|e| fail(&format!("cannot open fresh journal: {e}")));
        assert_eq!(recovery.recovered, 0, "a fresh journal has nothing to replay");
        for spec in &specs {
            let o = srv.submit(spec).unwrap_or_else(|e| fail(&format!("torture spec: {e}")));
            assert!(!o.cached, "life 1 is all cold");
            first_digests.push(fnv1a64(o.bytes.as_bytes()));
        }
    }

    // Life 2: a restarted daemon on the same journal serves every spec
    // as a hit — the hero partition included, with no recomputation
    // (cached==true is the proof: the miss path is the only computer).
    let (srv, recovery) = Server::with_journal(workers, &path)
        .unwrap_or_else(|e| fail(&format!("cannot reopen journal: {e}")));
    assert_eq!(recovery.recovered, specs.len(), "every record replays");
    assert!(recovery.truncated.is_none(), "a clean journal has no torn tail");
    let mut audited = 0usize;
    let mut result_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (spec, want) in specs.iter().zip(&first_digests) {
        let o = srv.submit(spec).unwrap_or_else(|e| fail(&format!("replayed spec: {e}")));
        assert!(o.cached, "life 2 must hit the journal-warmed cache");
        assert_eq!(
            fnv1a64(o.bytes.as_bytes()),
            *want,
            "journal round trip must be byte-identical"
        );
        // Audit: the disk bytes equal an honest recomputation.
        let fresh = srv.recompute(spec).unwrap_or_else(|e| fail(&format!("audit: {e}")));
        assert_eq!(o.bytes.as_ref(), fresh.as_str(), "journal bytes audit failed");
        audited += 1;
        for b in o.bytes.as_bytes() {
            result_hash ^= u64::from(*b);
            result_hash = result_hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    drop(srv);

    // Mid-append kill: tear the final record in half and reopen. The
    // prior records survive; the tear is reported typed and healed.
    let torn_path = scratch.join("torn.journal");
    std::fs::copy(&path, &torn_path)
        .unwrap_or_else(|e| fail(&format!("cannot copy journal: {e}")));
    let clean_len = std::fs::metadata(&torn_path)
        .unwrap_or_else(|e| fail(&format!("cannot stat journal: {e}")))
        .len();
    let extra = journal::encode_record("torn-key", "torn-result");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&torn_path)
            .unwrap_or_else(|e| fail(&format!("cannot append to copy: {e}")));
        f.write_all(&extra[..extra.len() / 2])
            .unwrap_or_else(|e| fail(&format!("cannot write torn record: {e}")));
    }
    let (_torn_journal, records, torn) = Journal::open(&torn_path)
        .unwrap_or_else(|e| fail(&format!("torn journal must open: {e}")));
    assert_eq!(records.len(), specs.len(), "the tear loses exactly the torn record");
    let t = torn.truncated.unwrap_or_else(|| {
        fail("a torn tail must be reported, not silently accepted");
    });
    assert_eq!(t.offset, clean_len, "truncation points at the torn record's start");
    assert_eq!(
        std::fs::metadata(&torn_path).map(|m| m.len()).unwrap_or(0),
        clean_len,
        "reopen heals the file back to its last intact record"
    );

    JournalScenario {
        specs: specs.len(),
        recovered: recovery.recovered,
        recovered_bytes: recovery.bytes,
        hero_digest: hero.key_digest(),
        result_digest: format!("{result_hash:016x}"),
        audited_identical: audited,
        torn_recovered: records.len(),
        torn_record: t.record,
        torn_offset: t.offset,
    }
}

// ---------------------------------------------------------- quarantine

struct Quarantine {
    healed_identical: bool,
    quarantined: u64,
    world_failed_typed: bool,
    entries_after_failure: usize,
    recovered_after_failure: bool,
}

/// The self-healing path end to end, driven by the pool's
/// deterministic poison hook.
fn quarantine_scenario(workers: Workers) -> Quarantine {
    let reference = Server::new(Workers::new(1));
    let heal_spec = JobSpec::new("t3e", 4).with_seed(41);
    let fail_spec = JobSpec::new("t3e", 4).with_seed(42);
    let want_heal =
        reference.submit(&heal_spec).unwrap_or_else(|e| fail(&format!("reference: {e}"))).bytes;
    let want_fail =
        reference.submit(&fail_spec).unwrap_or_else(|e| fail(&format!("reference: {e}"))).bytes;

    let srv = Server::new(workers);
    // One poison: the damaged world is quarantined, the job self-heals
    // on a fresh world, and the answer matches an undamaged server.
    srv.pool().arm_poison("t3e", 4, 1);
    let healed =
        srv.submit(&heal_spec).unwrap_or_else(|e| fail(&format!("self-heal failed: {e}")));
    let healed_identical = healed.bytes == want_heal;
    assert!(healed_identical, "post-quarantine bytes must equal cold bytes");
    assert_eq!(srv.pool().quarantined(), 1);

    // Two poisons: the fresh world fails too — a typed outcome that is
    // never cached.
    let entries_before = srv.cache_stats().entries;
    srv.pool().arm_poison("t3e", 4, 2);
    let err = srv.submit(&fail_spec);
    let world_failed_typed = matches!(err, Err(SpecError::WorldFailed(_)));
    assert!(world_failed_typed, "double poison must be typed WorldFailed: {err:?}");
    let entries_after_failure = srv.cache_stats().entries;
    assert_eq!(entries_after_failure, entries_before, "failures are never cached");

    // Poison exhausted: the same spec now succeeds and matches cold.
    let recovered =
        srv.submit(&fail_spec).unwrap_or_else(|e| fail(&format!("post-failure: {e}")));
    let recovered_after_failure = recovered.bytes == want_fail;
    assert!(recovered_after_failure, "recovery after WorldFailed must match cold");

    Quarantine {
        healed_identical,
        quarantined: srv.pool().quarantined(),
        world_failed_typed,
        entries_after_failure,
        recovered_after_failure,
    }
}

// --------------------------------------------------------- fault storm

struct FaultStorm {
    specs: usize,
    replay_identical: usize,
    digest: String,
}

/// A seeded burst of faulted specs, computed, recomputed, and computed
/// again on a fresh server: three byte-identical answers each.
fn fault_storm_scenario(workers: Workers) -> FaultStorm {
    let mut rng = TortureRng::new(TORTURE_SEED ^ 0xF417);
    let specs: Vec<JobSpec> = (0..6)
        .map(|i| {
            let mut fault = FaultCfg::none(500 + i);
            fault.severity = (rng.below(9) + 1) as f64 / 10.0;
            fault.degrade = rng.below(2) == 0;
            JobSpec::new("t3e", 16).with_seed(600 + i).with_fault(fault)
        })
        .collect();
    let srv = Server::new(workers);
    let first: Vec<_> = srv
        .submit_batch(&specs)
        .into_iter()
        .map(|o| o.unwrap_or_else(|e| fail(&format!("storm spec: {e}"))).bytes)
        .collect();
    let fresh_srv = Server::new(workers);
    let again: Vec<_> = fresh_srv
        .submit_batch(&specs)
        .into_iter()
        .map(|o| o.unwrap_or_else(|e| fail(&format!("storm replay: {e}"))).bytes)
        .collect();
    let mut identical = 0;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (spec, (a, b)) in specs.iter().zip(first.iter().zip(&again)) {
        assert_eq!(a, b, "fault storm replay diverged for {}", spec.key_digest());
        let fresh = srv.recompute(spec).unwrap_or_else(|e| fail(&format!("storm audit: {e}")));
        assert_eq!(a.as_ref(), fresh.as_str(), "storm cache audit failed");
        identical += 1;
        for byte in a.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    FaultStorm { specs: specs.len(), replay_identical: identical, digest: format!("{hash:016x}") }
}

// ------------------------------------------------------------ overload

struct Overload {
    offers: usize,
    overloaded: usize,
    expired: usize,
    served: usize,
    shed_total: u64,
}

/// The DESIGN.md §12 flood through the deadline queue: exact typed
/// shed counts, freshest jobs served.
fn overload_scenario(workers: Workers) -> Overload {
    let srv = Server::new(workers);
    let mut q = Admission::with_deadline(&srv, 8, 16);
    let mut out = Overload { offers: 0, overloaded: 0, expired: 0, served: 0, shed_total: 0 };
    for i in 0..20 {
        out.offers += 1;
        match q.offer(JobSpec::new("t3e", 4).with_seed(700 + i)) {
            Ok(()) => {}
            Err(SpecError::Overloaded { .. }) => out.overloaded += 1,
            Err(e) => fail(&format!("flood offer {i}: unexpected error {e:?}")),
        }
    }
    for outcome in q.flush() {
        match outcome {
            Ok(_) => out.served += 1,
            Err(SpecError::DeadlineExpired { .. }) => out.expired += 1,
            Err(e) => fail(&format!("flood flush: unexpected error {e:?}")),
        }
    }
    out.shed_total = srv.shed_jobs();
    assert_eq!(
        (out.overloaded, out.expired, out.served),
        (12, 3, 5),
        "the worked example's exact counts"
    );
    assert_eq!(out.shed_total, 15, "every shed is counted, none silent");
    out
}

// ------------------------------------------------------------ shutdown

struct Shutdown {
    drained: bool,
    refusal: String,
}

/// Drain, then prove the door is typed-shut.
fn shutdown_scenario(workers: Workers) -> Shutdown {
    let srv = Server::new(workers);
    srv.submit(&JobSpec::new("t3e", 4).with_seed(800))
        .unwrap_or_else(|e| fail(&format!("pre-shutdown spec: {e}")));
    let (body, stop) = srv.handle_frame(r#"{"op":"shutdown"}"#);
    assert_eq!(body, "{\"ok\":true}");
    assert!(stop, "the shutdown op signals the transport loop");
    let drained = srv.inflight() == 0 && !srv.accepting();
    assert!(drained);
    let refusal = match srv.submit(&JobSpec::new("t3e", 4).with_seed(801)) {
        Err(e @ SpecError::ShuttingDown) => e.to_string(),
        other => fail(&format!("post-drain submission must be refused typed: {other:?}")),
    };
    Shutdown { drained, refusal }
}

// ----------------------------------------------------------- reporting

struct Report {
    frame_fuzz: FrameFuzz,
    disconnects: Disconnects,
    journal: JournalScenario,
    quarantine: Quarantine,
    fault_storm: FaultStorm,
    overload: Overload,
    shutdown: Shutdown,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::object()
            .field("schema", &1u32)
            .field("seed", &TORTURE_SEED)
            .raw(
                "frame_fuzz",
                Json::object()
                    .field("cases", &(self.frame_fuzz.cases as u64))
                    .field("protocol_closes", &(self.frame_fuzz.protocol_closes as u64))
                    .field("clean_closes", &(self.frame_fuzz.clean_closes as u64))
                    .field("replies", &(self.frame_fuzz.replies as u64))
                    .field("reply_digest", &self.frame_fuzz.reply_digest)
                    .build(),
            )
            .raw(
                "disconnects",
                Json::object()
                    .field("cuts", &(self.disconnects.cuts as u64))
                    .field("protocol_closes", &(self.disconnects.protocol_closes as u64))
                    .build(),
            )
            .raw(
                "journal",
                Json::object()
                    .field("specs", &(self.journal.specs as u64))
                    .field("recovered", &(self.journal.recovered as u64))
                    .field("recovered_bytes", &self.journal.recovered_bytes)
                    .field("hero_digest", &self.journal.hero_digest)
                    .field("result_digest", &self.journal.result_digest)
                    .field("audited_identical", &(self.journal.audited_identical as u64))
                    .field("torn_recovered", &(self.journal.torn_recovered as u64))
                    .field("torn_record", &(self.journal.torn_record as u64))
                    .field("torn_offset", &self.journal.torn_offset)
                    .build(),
            )
            .raw(
                "quarantine",
                Json::object()
                    .field("healed_identical", &self.quarantine.healed_identical)
                    .field("quarantined", &self.quarantine.quarantined)
                    .field("world_failed_typed", &self.quarantine.world_failed_typed)
                    .field(
                        "entries_after_failure",
                        &(self.quarantine.entries_after_failure as u64),
                    )
                    .field(
                        "recovered_after_failure",
                        &self.quarantine.recovered_after_failure,
                    )
                    .build(),
            )
            .raw(
                "fault_storm",
                Json::object()
                    .field("specs", &(self.fault_storm.specs as u64))
                    .field("replay_identical", &(self.fault_storm.replay_identical as u64))
                    .field("digest", &self.fault_storm.digest)
                    .build(),
            )
            .raw(
                "overload",
                Json::object()
                    .field("offers", &(self.overload.offers as u64))
                    .field("overloaded", &(self.overload.overloaded as u64))
                    .field("expired", &(self.overload.expired as u64))
                    .field("served", &(self.overload.served as u64))
                    .field("shed_total", &self.overload.shed_total)
                    .build(),
            )
            .raw(
                "shutdown",
                Json::object()
                    .field("drained", &self.shutdown.drained)
                    .field("refusal", &self.shutdown.refusal)
                    .build(),
            )
            .build()
    }
}

fn fail(message: &str) -> ! {
    eprintln!("serve_torture: FAIL — {message}");
    std::process::exit(1);
}

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(&format!("cannot write {path}: {e}"));
    }
}

/// xorshift64*: the harness's seeded adversarial-input stream
/// (harness policy, not model behavior — same stance as loadgen).
struct TortureRng(u64);

impl TortureRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next() >> 32) as u8
    }
}

struct Cli {
    out: Option<String>,
    golden: Option<String>,
    report: Option<String>,
    scratch: PathBuf,
    hero_procs: usize,
}

impl Cli {
    fn parse() -> Self {
        let mut cli = Cli {
            out: None,
            golden: None,
            report: None,
            scratch: PathBuf::from("target/serve_torture"),
            hero_procs: 512,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("serve_torture: {} needs a value", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--out" => cli.out = Some(value(i)),
                "--golden" => cli.golden = Some(value(i)),
                "--report" => cli.report = Some(value(i)),
                "--scratch" => cli.scratch = PathBuf::from(value(i)),
                "--hero-procs" => {
                    cli.hero_procs = value(i).parse().unwrap_or_else(|_| {
                        eprintln!("serve_torture: --hero-procs needs an integer");
                        std::process::exit(2);
                    })
                }
                other => {
                    eprintln!("serve_torture: unknown flag {other:?}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        cli
    }
}
