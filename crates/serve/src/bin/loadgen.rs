//! Seeded query-mix replay against an in-process [`Server`]: the
//! serving story's benchmark harness and correctness audit.
//!
//! Three phases over a fixed spec universe (a pattern ladder across
//! machines/partitions plus one 512-rank "hero" spec):
//!
//! 1. **cold** — every unique spec once, timing the miss path;
//! 2. **mixed** — a seeded stream of queries at a configurable
//!    hit/miss ratio, timing per-query latency;
//! 3. **replay** — the whole mix again through the bounded admission
//!    queue, timing pure cache-hit batch throughput.
//!
//! Afterwards the audit recomputes **every** unique spec with the
//! cache bypassed and byte-compares against the cached entry, and the
//! hero spec's cached latency is compared against its cold run (the
//! gate demands ≥ 50×; determinism makes the hit exact, so the only
//! question is speed).
//!
//! The report (`BENCH_SERVE.json`) is split into a `virtual` section —
//! counts, digests, b_eff values: bit-deterministic, byte-identical at
//! every `BEFF_WORKERS`, golden-comparable across hosts — and a `wall`
//! section (latency percentiles, throughput) that is honest wall time
//! and never gated on exact values. `--virtual-out FILE` writes the
//! canonical virtual section alone for the parity/golden gates.
//!
//! ```text
//! loadgen [--out FILE] [--virtual-out FILE] [--golden FILE]
//!         [--queries N] [--hit-ratio F] [--hero-procs N]
//! ```
//!
//! This file is on the `beff-analyze` wall-clock exempt list: it is
//! the one place in the serve stack that reads host time.

use beff_json::{Json, ToJson};
use beff_serve::{Admission, FaultCfg, JobSpec, Server};
use beff_sim::Workers;
use std::time::Instant;

/// Seed of the query mix (the mix itself is part of the benchmark
/// definition, so it is fixed, not host-entropy).
const MIX_SEED: u64 = 0x5EED_0001;

/// Seed base for fresh-miss variants generated in the mixed phase.
const VARIANT_SEED_BASE: u64 = 0x900D_0000;

fn main() {
    let cli = Cli::parse();
    let workers = match Workers::try_from_env() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let server = Server::new(workers);

    // The spec universe: pattern ladder + hero, all validated upfront.
    let ladder = ladder(cli.hero_procs);
    for spec in &ladder {
        if let Err(e) = spec.resolve() {
            eprintln!("loadgen: internal ladder spec invalid: {e}");
            std::process::exit(1);
        }
    }
    let hero = ladder.last().expect("ladder is never empty").clone();

    // Phase 1: cold — every unique spec once, per-spec miss latency.
    let mut cold_secs = Vec::with_capacity(ladder.len());
    let mut hero_cold_secs = 0.0;
    for spec in &ladder {
        let t = Instant::now();
        let outcome = server.submit(spec).expect("ladder specs are valid");
        let secs = t.elapsed().as_secs_f64();
        assert!(!outcome.cached, "cold phase must miss");
        if spec == &hero {
            hero_cold_secs = secs;
        }
        cold_secs.push(secs);
    }

    // Phase 2: mixed — seeded hit/miss stream, per-query latency.
    let mut rng = MixRng::new(MIX_SEED);
    let small: Vec<&JobSpec> = ladder.iter().filter(|s| s.procs <= 32).collect();
    let mut unique = ladder.clone();
    let mut mix: Vec<JobSpec> = Vec::with_capacity(cli.queries);
    let mut latencies = Vec::with_capacity(cli.queries);
    let (mut hits, mut misses) = (0u64, 0u64);
    for i in 0..cli.queries {
        let spec = if rng.unit() < cli.hit_ratio {
            // Replay a known spec (a guaranteed hit).
            unique[rng.below(unique.len())].clone()
        } else {
            // A fresh variant of a small ladder spec (a guaranteed miss).
            let base = small[rng.below(small.len())];
            base.clone().with_seed(VARIANT_SEED_BASE + i as u64)
        };
        let t = Instant::now();
        let outcome = server.submit(&spec).expect("mix specs are valid");
        latencies.push(t.elapsed().as_secs_f64());
        if outcome.cached {
            hits += 1;
        } else {
            misses += 1;
            unique.push(spec.clone());
        }
        mix.push(spec);
    }

    // Phase 3: replay the whole mix through the admission queue —
    // everything is cached now, so this times hit batch throughput.
    let t = Instant::now();
    let mut queue = Admission::new(&server, 8);
    let mut replayed = 0usize;
    for spec in &mix {
        replayed += queue.enqueue(spec.clone()).len();
    }
    replayed += queue.flush().len();
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(replayed, mix.len(), "the queue must answer every admitted query");

    // Hero hit latency: median of repeated cached queries.
    let mut hero_hits = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        let outcome = server.submit(&hero).expect("hero is valid");
        hero_hits.push(t.elapsed().as_secs_f64());
        assert!(outcome.cached, "hero must be cached by now");
    }
    let hero_hit_secs = median(&mut hero_hits);
    let speedup = hero_cold_secs / hero_hit_secs.max(1e-9);

    // Audit: every unique spec, recomputed with the cache bypassed,
    // must reproduce the cached bytes exactly.
    let mut audited = 0usize;
    for spec in &unique {
        let cached = server
            .submit(spec)
            .expect("unique specs are valid");
        assert!(cached.cached, "every unique spec is cached after the run");
        let fresh = server.recompute(spec).expect("unique specs are valid");
        if cached.bytes.as_ref() != fresh.as_str() {
            eprintln!(
                "loadgen: CACHE CORRECTNESS FAILURE for {} ({}): cached bytes differ from recomputation",
                spec.key_digest(),
                spec.machine,
            );
            std::process::exit(1);
        }
        audited += 1;
    }

    // Audit the serving-layer health counters too: a clean loadgen run
    // injects no poisons and sheds nothing, so any nonzero here means
    // the self-healing or load-shedding path fired when it must not
    // have (the torture harness is where those paths are exercised).
    let quarantined = server.pool().quarantined();
    let shed = server.shed_jobs();
    if quarantined != 0 || shed != 0 {
        eprintln!(
            "loadgen: HEALTH COUNTER FAILURE — quarantined_worlds={quarantined}, \
             shed_jobs={shed} on a clean run (both must be 0)"
        );
        std::process::exit(1);
    }

    let stats = server.cache_stats();
    let report = Report {
        workers: workers.get(),
        queries: cli.queries,
        hit_ratio: cli.hit_ratio,
        unique,
        hero: hero.clone(),
        hero_beff: beff_of(&server, &hero),
        audited,
        stats_entries: stats.entries,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        quarantined,
        shed,
        mixed_hits: hits,
        mixed_misses: misses,
        cold_secs,
        hero_cold_secs,
        hero_hit_secs,
        speedup,
        latencies,
        replay_secs,
        replayed,
    };

    let virtual_bytes = beff_json::to_canonical(&VirtualSection(&report));
    if let Some(path) = &cli.virtual_out {
        write_file(path, &virtual_bytes);
    }
    if let Some(path) = &cli.out {
        write_file(path, &(beff_json::to_string_pretty(&report) + "\n"));
    }
    if let Some(golden) = &cli.golden {
        let want = std::fs::read_to_string(golden).unwrap_or_else(|e| {
            eprintln!("loadgen: cannot read golden {golden}: {e}");
            std::process::exit(1);
        });
        if want != virtual_bytes {
            eprintln!(
                "loadgen: virtual metrics diverge from golden {golden} — determinism regression \
                 (or an intended change: regenerate with --virtual-out)"
            );
            std::process::exit(1);
        }
    }

    println!(
        "loadgen: {} queries over {} unique specs ({} hits / {} misses in the mix)",
        report.queries + report.unique.len(),
        report.unique.len(),
        report.mixed_hits,
        report.mixed_misses,
    );
    println!(
        "loadgen: hero {}x{} cold {:.3}s, cached {:.6}s → {:.0}× speedup",
        hero.machine, hero.procs, hero_cold_secs, hero_hit_secs, speedup
    );
    println!("loadgen: audit — {audited} specs recomputed, all byte-identical to cache");
    if speedup < 50.0 {
        eprintln!("loadgen: FAIL — cache-hit speedup {speedup:.1}× is below the 50× gate");
        std::process::exit(1);
    }
}

/// The fixed spec universe: small partitions across machine families,
/// one faulted spec, and the 512-rank hero last.
fn ladder(hero_procs: usize) -> Vec<JobSpec> {
    let mut fault = FaultCfg::none(7);
    fault.severity = 0.5;
    fault.degrade = true;
    vec![
        JobSpec::new("t3e", 16).with_seed(1),
        JobSpec::new("t3e", 32).with_seed(2),
        JobSpec::new("sr2201", 16).with_seed(3),
        JobSpec::new("sx4", 8).with_seed(4),
        JobSpec::new("ibm-sp", 16).with_seed(5),
        JobSpec::new("sr8000-rr", 16).with_seed(6),
        JobSpec::new("t3e", 16).with_seed(1).with_fault(fault),
        JobSpec::new("t3e", hero_procs),
    ]
}

/// The hero's headline number, read back out of its cached report.
fn beff_of(server: &Server, spec: &JobSpec) -> f64 {
    let outcome = server.submit(spec).expect("hero is valid");
    let parsed = beff_json::parse(outcome.bytes.as_ref()).expect("cached reports are JSON");
    let Json::Obj(fields) = parsed else { return f64::NAN };
    for (name, value) in fields {
        if name == "beff" {
            return match value {
                Json::Float(f) => f,
                Json::UInt(n) => n as f64,
                Json::Int(n) => n as f64,
                _ => f64::NAN,
            };
        }
    }
    f64::NAN
}

struct Report {
    workers: usize,
    queries: usize,
    hit_ratio: f64,
    unique: Vec<JobSpec>,
    hero: JobSpec,
    hero_beff: f64,
    audited: usize,
    stats_entries: usize,
    cache_hits: u64,
    cache_misses: u64,
    quarantined: u64,
    shed: u64,
    mixed_hits: u64,
    mixed_misses: u64,
    cold_secs: Vec<f64>,
    hero_cold_secs: f64,
    hero_hit_secs: f64,
    speedup: f64,
    latencies: Vec<f64>,
    replay_secs: f64,
    replayed: usize,
}

/// The deterministic half of the report: everything here is a pure
/// function of the CLI arguments and the mix seed — independent of
/// `BEFF_WORKERS`, host speed and wall time. The parity gate
/// byte-compares it across worker counts; the golden gate across
/// commits.
struct VirtualSection<'r>(&'r Report);

impl ToJson for VirtualSection<'_> {
    fn to_json(&self) -> Json {
        let r = self.0;
        let specs: Vec<Json> = r
            .unique
            .iter()
            .map(|s| {
                let bytes = s.canonical_key();
                Json::object()
                    .field("digest", &s.key_digest())
                    .field("machine", &s.machine)
                    .field("procs", &s.procs)
                    .field("schedule", s.schedule.as_str())
                    .field("seed", &s.seed)
                    .field("faulted", &s.fault.is_some())
                    .field("key_bytes", &(bytes.len() as u64))
                    .build()
            })
            .collect();
        // Serving-layer health counters: every submission in this
        // harness is serial (queue flushes batch at a time), so the
        // counts are a pure function of the mix — worker-sweep stable.
        let counters = Json::object()
            .field("cache_hits", &r.cache_hits)
            .field("cache_misses", &r.cache_misses)
            .field("quarantined_worlds", &r.quarantined)
            .field("shed_jobs", &r.shed)
            .build();
        Json::object()
            .field("schema", &2u32)
            .field("mix_seed", &MIX_SEED)
            .field("queries", &(r.queries as u64))
            .field("hit_ratio", &r.hit_ratio)
            .field("mixed_hits", &r.mixed_hits)
            .field("mixed_misses", &r.mixed_misses)
            .field("unique_specs", &(r.unique.len() as u64))
            .field("cache_entries", &(r.stats_entries as u64))
            .field("audited_identical", &(r.audited as u64))
            .field("hero_digest", &r.hero.key_digest())
            .field("hero_procs", &r.hero.procs)
            .field("hero_beff", &r.hero_beff)
            .raw("counters", counters)
            .raw("specs", Json::Arr(specs))
            .build()
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let mut lat = self.latencies.clone();
        Json::object()
            .raw("virtual", VirtualSection(self).to_json())
            .raw(
                "wall",
                Json::object()
                    .field("workers", &self.workers)
                    .field("cold_total_secs", &self.cold_secs.iter().sum::<f64>())
                    .field("hero_cold_secs", &self.hero_cold_secs)
                    .field("hero_hit_secs", &self.hero_hit_secs)
                    .field("hero_hit_speedup", &self.speedup)
                    .field("mixed_p50_ms", &(percentile(&mut lat, 0.50) * 1e3))
                    .field("mixed_p90_ms", &(percentile(&mut lat, 0.90) * 1e3))
                    .field("mixed_p99_ms", &(percentile(&mut lat, 0.99) * 1e3))
                    .field(
                        "replay_hit_qps",
                        &(self.replayed as f64 / self.replay_secs.max(1e-9)),
                    )
                    .build(),
            )
            .build()
    }
}

fn percentile(sorted: &mut [f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn median(xs: &mut [f64]) -> f64 {
    percentile(xs, 0.5)
}

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("loadgen: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// xorshift64*: a tiny seeded stream for the query mix (the simulation
/// substrate's RNG is not imported here — the mix is harness policy,
/// not model behavior).
struct MixRng(u64);

impl MixRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Cli {
    out: Option<String>,
    virtual_out: Option<String>,
    golden: Option<String>,
    queries: usize,
    hit_ratio: f64,
    hero_procs: usize,
}

impl Cli {
    fn parse() -> Self {
        let mut cli = Cli {
            out: None,
            virtual_out: None,
            golden: None,
            queries: 48,
            hit_ratio: 0.5,
            hero_procs: 512,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("loadgen: {} needs a value", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--out" => cli.out = Some(value(i)),
                "--virtual-out" => cli.virtual_out = Some(value(i)),
                "--golden" => cli.golden = Some(value(i)),
                "--queries" => {
                    cli.queries = value(i).parse().unwrap_or_else(|_| {
                        eprintln!("loadgen: --queries needs an integer");
                        std::process::exit(2);
                    })
                }
                "--hit-ratio" => {
                    cli.hit_ratio = value(i).parse().unwrap_or_else(|_| {
                        eprintln!("loadgen: --hit-ratio needs a number in 0..=1");
                        std::process::exit(2);
                    })
                }
                "--hero-procs" => {
                    cli.hero_procs = value(i).parse().unwrap_or_else(|_| {
                        eprintln!("loadgen: --hero-procs needs an integer");
                        std::process::exit(2);
                    })
                }
                other => {
                    eprintln!("loadgen: unknown flag {other:?}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        cli
    }
}
