//! The session pool: resident simulated partitions, checked out per
//! job and returned for reuse.
//!
//! A cold [`WorldSession`] spawn prices topology construction and
//! route-table warmup; a server answering thousands of queries per
//! partition shape must pay that once, not per query. The pool keeps
//! idle partitions keyed by `(machine, procs)`; checkout pops one (or
//! builds a fresh one when none is idle — under `map_ordered` fan-out
//! each concurrent miss gets its own), and check-in returns it.
//!
//! Every pooled partition owns a **private** network instance, so two
//! checkouts of the same shape can run on two worker threads without
//! sharing link state; [`Partition::run`] resets that network before
//! each run (measurements start from an idle machine), which is what
//! makes a pooled run bit-identical to a cold one — pinned by the
//! end-to-end recompute audit.
//!
//! Faulted jobs never touch the pool: a fault session is stateful
//! across runs (crash times live on one accumulated timeline), so the
//! server gives those jobs fresh single-use worlds instead.

use crate::spec::JobSpec;
use beff_core::beff::{run_beff, BeffConfig, BeffResult};
use beff_machines::Machine;
use beff_mpi::{World, WorldSession};
use beff_netsim::MachineNet;
use beff_sync::{order::Rank, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lock level 16 (`serve.pool`): above `serve.cache`, below every
/// simulation-substrate lock (DESIGN.md §8). Held only around the
/// idle-map push/pop, never across a world run.
static POOL_RANK: Rank = Rank::new(16, "serve.pool");

/// One resident simulated partition: sized machine model, private
/// network, resident world session.
pub struct Partition {
    shape: String,
    machine: Machine,
    net: Arc<MachineNet>,
    session: WorldSession,
}

impl Partition {
    /// Build a cold partition for an already-sized machine model.
    fn cold(machine: Machine, procs: usize) -> Self {
        let net = machine.network();
        let session = World::sim_partition(Arc::clone(&net), procs).session();
        Self { shape: shape_key(machine.key, procs), machine, net, session }
    }

    /// The sized machine model this partition simulates.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Run one b_eff schedule from an idle network.
    pub fn run(&self, cfg: &BeffConfig) -> BeffResult {
        self.net.reset();
        let cfg = cfg.clone();
        let mut results = self.session.run(move |c| run_beff(c, &cfg));
        results.swap_remove(0)
    }
}

/// Idle partitions keyed by shape, plus a built-partitions counter
/// (observability: `created() - idle_count()` partitions are currently
/// checked out or dropped).
pub struct SessionPool {
    idle: Mutex<BTreeMap<String, Vec<Partition>>>,
    created: AtomicUsize,
}

fn shape_key(machine: &str, procs: usize) -> String {
    format!("{machine}/{procs}")
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionPool {
    pub fn new() -> Self {
        Self { idle: Mutex::ranked(&POOL_RANK, BTreeMap::new()), created: AtomicUsize::new(0) }
    }

    /// Check a partition for `spec`'s shape out of the pool, building a
    /// cold one if no idle partition matches. The caller must have
    /// validated the spec ([`JobSpec::resolve`]) — this takes the sized
    /// machine it returned.
    pub fn checkout(&self, spec: &JobSpec, sized: &Machine) -> Partition {
        let key = shape_key(&spec.machine, spec.procs);
        if let Some(p) = self.idle.lock().get_mut(&key).and_then(Vec::pop) {
            return p;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Partition::cold(sized.clone(), spec.procs)
    }

    /// Return a partition for reuse.
    pub fn checkin(&self, partition: Partition) {
        self.idle
            .lock()
            .entry(partition.shape.clone())
            .or_default()
            .push(partition);
    }

    /// Partitions built over the pool's lifetime.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Partitions currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_checked_in_partitions() {
        let pool = SessionPool::new();
        let spec = JobSpec::new("t3e", 4);
        let sized = spec.resolve().expect("valid spec");
        let p = pool.checkout(&spec, &sized);
        assert_eq!(pool.created(), 1);
        pool.checkin(p);
        assert_eq!(pool.idle_count(), 1);
        let _again = pool.checkout(&spec, &sized);
        assert_eq!(pool.created(), 1, "idle partition reused, not rebuilt");
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn distinct_shapes_pool_separately() {
        let pool = SessionPool::new();
        let small = JobSpec::new("t3e", 4);
        let large = JobSpec::new("t3e", 8);
        let p4 = pool.checkout(&small, &small.resolve().expect("valid"));
        pool.checkin(p4);
        let _p8 = pool.checkout(&large, &large.resolve().expect("valid"));
        assert_eq!(pool.created(), 2, "8-rank job cannot reuse a 4-rank partition");
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn pooled_run_is_bit_identical_to_cold_run() {
        let spec = JobSpec::new("t3e", 4).with_seed(11);
        let sized = spec.resolve().expect("valid spec");
        let cfg = spec.beff_config(&sized);
        let pool = SessionPool::new();
        let p = pool.checkout(&spec, &sized);
        let warm1 = beff_json::to_string(&p.run(&cfg));
        let warm2 = beff_json::to_string(&p.run(&cfg));
        pool.checkin(p);
        let cold = beff_json::to_string(&Partition::cold(sized.clone(), 4).run(&cfg));
        assert_eq!(warm1, warm2, "session reuse must not leak state between runs");
        assert_eq!(warm1, cold, "pooled and cold runs must agree byte-for-byte");
    }
}
