//! The session pool: resident simulated partitions, checked out per
//! job, returned for reuse — and **quarantined** when damaged.
//!
//! A cold [`WorldSession`] spawn prices topology construction and
//! route-table warmup; a server answering thousands of queries per
//! partition shape must pay that once, not per query. The pool keeps
//! idle partitions keyed by `(machine, procs)`; checkout pops one (or
//! builds a fresh one when none is idle — under `map_ordered` fan-out
//! each concurrent miss gets its own), and check-in returns it.
//!
//! Every pooled partition owns a **private** network instance, so two
//! checkouts of the same shape can run on two worker threads without
//! sharing link state; [`Partition::run`] resets that network before
//! each run (measurements start from an idle machine), which is what
//! makes a pooled run bit-identical to a cold one — pinned by the
//! end-to-end recompute audit.
//!
//! ## Quarantine
//!
//! A run that exits through a typed [`BeffError`] may leave anything
//! behind it — link fault state on the private net, half-consumed
//! reservations — in an unknown condition. Rather than reason about
//! which damage `net.reset()` can undo, the pool refuses to: the
//! server [`quarantine`](SessionPool::quarantine)s the partition (it is
//! dropped, never re-checked-out) and the next checkout of that shape
//! builds a cold replacement. The `quarantined` counter is surfaced
//! through the `stats` op; post-quarantine results are pinned
//! bit-identical to cold runs (DESIGN.md §12).
//!
//! The quarantine path is exercised deterministically: the torture
//! harness [`arm_poison`](SessionPool::arm_poison)s a shape, and the
//! server's next clean run of that shape executes under
//! `FaultPlan::instant_crash` — a world poisoned on purpose, raising
//! the same typed fault an organically damaged world would.
//!
//! Faulted jobs never touch the pool: a fault session is stateful
//! across runs (crash times live on one accumulated timeline), so the
//! server gives those jobs fresh single-use worlds instead.

use crate::spec::JobSpec;
use beff_core::beff::{run_beff, BeffConfig, BeffResult};
use beff_faults::{FaultPlan, FaultSession};
use beff_machines::Machine;
use beff_mpi::{World, WorldSession};
use beff_netsim::MachineNet;
use beff_sim::BeffError;
use beff_sync::{order::Rank, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Lock level 16 (`serve.pool`): above `serve.cache`, below every
/// simulation-substrate lock (DESIGN.md §8). Held only around the
/// idle-map push/pop and poison bookkeeping, never across a world run.
static POOL_RANK: Rank = Rank::new(16, "serve.pool");

/// One resident simulated partition: sized machine model, private
/// network, resident world session.
pub struct Partition {
    shape: String,
    machine: Machine,
    net: Arc<MachineNet>,
    session: WorldSession,
}

impl Partition {
    /// Build a cold partition for an already-sized machine model.
    fn cold(machine: Machine, procs: usize) -> Self {
        let net = machine.network();
        let session = World::sim_partition(Arc::clone(&net), procs).session();
        Self { shape: shape_key(machine.key, procs), machine, net, session }
    }

    /// The sized machine model this partition simulates.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Run one b_eff schedule from an idle network. Panics if the run
    /// raises a typed fault — callers on the serving path use
    /// [`try_run`](Self::try_run) instead.
    pub fn run(&self, cfg: &BeffConfig) -> BeffResult {
        match self.try_run(cfg) {
            Ok(r) => r,
            Err(e) => panic!("pooled run raised a typed fault: {e}"),
        }
    }

    /// Run one b_eff schedule from an idle network, returning a typed
    /// [`BeffError`] as a value when the world fails instead of
    /// unwinding through the pool (which would take the daemon down).
    pub fn try_run(&self, cfg: &BeffConfig) -> Result<BeffResult, BeffError> {
        self.net.reset();
        let cfg = cfg.clone();
        let mut results = self.session.try_run(move |c| run_beff(c, &cfg))?;
        Ok(results.swap_remove(0))
    }

    /// Run under [`FaultPlan::instant_crash`]: the deterministic world
    /// poison. Always returns a typed error (rank 0 dies at t=0); the
    /// partition must be treated as damaged afterwards — this is the
    /// torture harness's way of manufacturing exactly the state the
    /// quarantine path exists to contain.
    pub fn poisoned_run(&self, cfg: &BeffConfig) -> Result<BeffResult, BeffError> {
        self.net.reset();
        let session = FaultSession::new(FaultPlan::instant_crash(0), self.session.size());
        let cfg = cfg.clone();
        let mut results = self
            .session
            .world()
            .with_faults(session)
            .try_run(move |c| run_beff(c, &cfg))?;
        Ok(results.swap_remove(0))
    }
}

/// Idle partitions keyed by shape, plus armed poisons and lifetime
/// counters (observability: `created() - idle_count()` partitions are
/// currently checked out or quarantined).
pub struct SessionPool {
    state: Mutex<PoolState>,
    created: AtomicUsize,
    quarantined: AtomicU64,
}

struct PoolState {
    idle: BTreeMap<String, Vec<Partition>>,
    /// Shape → number of pending one-shot poisons ([`arm_poison`]
    /// (SessionPool::arm_poison)).
    poisons: BTreeMap<String, usize>,
}

fn shape_key(machine: &str, procs: usize) -> String {
    format!("{machine}/{procs}")
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionPool {
    pub fn new() -> Self {
        Self {
            state: Mutex::ranked(
                &POOL_RANK,
                PoolState { idle: BTreeMap::new(), poisons: BTreeMap::new() },
            ),
            created: AtomicUsize::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Check a partition for `spec`'s shape out of the pool, building a
    /// cold one if no idle partition matches. The caller must have
    /// validated the spec ([`JobSpec::resolve`]) — this takes the sized
    /// machine it returned.
    pub fn checkout(&self, spec: &JobSpec, sized: &Machine) -> Partition {
        let key = shape_key(&spec.machine, spec.procs);
        if let Some(p) = self.state.lock().idle.get_mut(&key).and_then(Vec::pop) {
            return p;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Partition::cold(sized.clone(), spec.procs)
    }

    /// Return a healthy partition for reuse.
    pub fn checkin(&self, partition: Partition) {
        self.state
            .lock()
            .idle
            .entry(partition.shape.clone())
            .or_default()
            .push(partition);
    }

    /// Retire a damaged partition: it is dropped here, never
    /// re-checked-out, and the next checkout of its shape builds a
    /// cold replacement. Counted, so `stats` can surface how often the
    /// self-healing path fired.
    pub fn quarantine(&self, partition: Partition) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        drop(partition);
    }

    /// Arm `runs` one-shot poisons for a shape: the server's next
    /// `runs` clean executions of that shape run under
    /// [`Partition::poisoned_run`] and fail typed. Torture-harness
    /// surface, same philosophy as PR 4's fault plans — injected
    /// failures are first-class, seeded, and deterministic.
    pub fn arm_poison(&self, machine: &str, procs: usize, runs: usize) {
        if runs == 0 {
            return;
        }
        *self.state.lock().poisons.entry(shape_key(machine, procs)).or_insert(0) += runs;
    }

    /// Consume one armed poison for a shape, if any.
    pub fn take_poison(&self, machine: &str, procs: usize) -> bool {
        let mut state = self.state.lock();
        let key = shape_key(machine, procs);
        match state.poisons.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    state.poisons.remove(&key);
                }
                true
            }
            _ => false,
        }
    }

    /// Partitions built over the pool's lifetime.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Partitions currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.state.lock().idle.values().map(Vec::len).sum()
    }

    /// Partitions quarantined over the pool's lifetime (monotone).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_checked_in_partitions() {
        let pool = SessionPool::new();
        let spec = JobSpec::new("t3e", 4);
        let sized = spec.resolve().expect("valid spec");
        let p = pool.checkout(&spec, &sized);
        assert_eq!(pool.created(), 1);
        pool.checkin(p);
        assert_eq!(pool.idle_count(), 1);
        let _again = pool.checkout(&spec, &sized);
        assert_eq!(pool.created(), 1, "idle partition reused, not rebuilt");
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn distinct_shapes_pool_separately() {
        let pool = SessionPool::new();
        let small = JobSpec::new("t3e", 4);
        let large = JobSpec::new("t3e", 8);
        let p4 = pool.checkout(&small, &small.resolve().expect("valid"));
        pool.checkin(p4);
        let _p8 = pool.checkout(&large, &large.resolve().expect("valid"));
        assert_eq!(pool.created(), 2, "8-rank job cannot reuse a 4-rank partition");
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn pooled_run_is_bit_identical_to_cold_run() {
        let spec = JobSpec::new("t3e", 4).with_seed(11);
        let sized = spec.resolve().expect("valid spec");
        let cfg = spec.beff_config(&sized);
        let pool = SessionPool::new();
        let p = pool.checkout(&spec, &sized);
        let warm1 = beff_json::to_string(&p.run(&cfg));
        let warm2 = beff_json::to_string(&p.run(&cfg));
        pool.checkin(p);
        let cold = beff_json::to_string(&Partition::cold(sized.clone(), 4).run(&cfg));
        assert_eq!(warm1, warm2, "session reuse must not leak state between runs");
        assert_eq!(warm1, cold, "pooled and cold runs must agree byte-for-byte");
    }

    #[test]
    fn poisoned_run_raises_typed_and_quarantine_counts() {
        let spec = JobSpec::new("t3e", 4).with_seed(11);
        let sized = spec.resolve().expect("valid spec");
        let cfg = spec.beff_config(&sized);
        let pool = SessionPool::new();
        let p = pool.checkout(&spec, &sized);
        let err = p.poisoned_run(&cfg).expect_err("the poison always fires");
        assert!(
            matches!(err, BeffError::RankCrashed { .. } | BeffError::PeerFailed),
            "typed crash fault, got {err:?}"
        );
        pool.quarantine(p);
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.idle_count(), 0, "quarantined partitions never return");

        // The shape rebuilds cold on next demand and runs clean,
        // byte-identical to a never-poisoned partition.
        let fresh = pool.checkout(&spec, &sized);
        assert_eq!(pool.created(), 2);
        let after = beff_json::to_string(&fresh.try_run(&cfg).expect("fresh world is clean"));
        let cold = beff_json::to_string(&Partition::cold(sized.clone(), 4).run(&cfg));
        assert_eq!(after, cold, "post-quarantine runs must match cold runs");
    }

    #[test]
    fn armed_poisons_are_one_shot_and_shape_keyed() {
        let pool = SessionPool::new();
        pool.arm_poison("t3e", 4, 2);
        assert!(!pool.take_poison("t3e", 8), "different shape is unarmed");
        assert!(pool.take_poison("t3e", 4));
        assert!(pool.take_poison("t3e", 4));
        assert!(!pool.take_poison("t3e", 4), "poisons are consumed");
    }
}
