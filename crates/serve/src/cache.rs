//! Content-addressed result cache.
//!
//! Keys are the *full canonical spec bytes* ([`JobSpec::canonical_key`]
//! (crate::JobSpec::canonical_key)) — not a digest — so a hit can never
//! be a hash collision; digests exist only as short printable handles
//! in reports. Values are the finished result report bytes, shared out
//! as `Arc<str>` so a hit copies nothing.
//!
//! Because every simulation below the server is deterministic, a cache
//! hit is **exact**: recomputing any cached spec must reproduce the
//! stored bytes bit for bit. [`ResultCache::insert`] enforces that
//! invariant on every insert race (two equal specs computed
//! concurrently must agree), and the `loadgen` correctness audit
//! re-proves it end-to-end for every spec in a run.

use beff_sync::{order::Rank, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock level 14 (`serve.cache`): below every simulation-substrate
/// lock, so holding it across a (never-intended) nested acquisition
/// would still be hierarchy-clean; see DESIGN.md §8.
static CACHE_RANK: Rank = Rank::new(14, "serve.cache");

/// Monotonic hit/miss counters (a snapshot, not a transaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// The content-addressed store: canonical spec bytes → result bytes.
pub struct ResultCache {
    entries: Mutex<BTreeMap<String, Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    pub fn new() -> Self {
        Self {
            entries: Mutex::ranked(&CACHE_RANK, BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look `key` up, counting the query as a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let found = self.entries.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look `key` up without touching the counters (for audits).
    pub fn peek(&self, key: &str) -> Option<Arc<str>> {
        self.entries.lock().get(key).cloned()
    }

    /// Store a computed result, returning the shared bytes. If the key
    /// is already present the existing entry wins — and the new bytes
    /// must match it exactly: a disagreement means the determinism
    /// contract underneath the cache is broken, which is a panic, not
    /// a silent overwrite.
    pub fn insert(&self, key: String, bytes: String) -> Arc<str> {
        self.insert_if_absent(key, bytes).0
    }

    /// [`insert`](Self::insert), also reporting whether the key was
    /// new (`true`) or an existing entry won (`false`). The journal
    /// appends exactly the fresh inserts, so replay never sees
    /// redundant records from re-computed hits.
    pub fn insert_if_absent(&self, key: String, bytes: String) -> (Arc<str>, bool) {
        let mut entries = self.entries.lock();
        if let Some(existing) = entries.get(key.as_str()) {
            // beff-analyze: allow(panicflow): integrity tripwire — divergent recompute bytes mean determinism is already broken; dying loudly beats serving either answer
            assert_eq!(
                existing.as_ref(),
                bytes.as_str(),
                "cache integrity: recomputation of an existing key produced different bytes"
            );
            return (Arc::clone(existing), false);
        }
        let shared: Arc<str> = bytes.into();
        entries.insert(key, Arc::clone(&shared));
        (shared, true)
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_insert_then_hit() {
        let c = ResultCache::new();
        assert!(c.get("k").is_none());
        c.insert("k".into(), "{\"beff\":1.0}".into());
        let hit = c.get("k").expect("inserted");
        assert_eq!(hit.as_ref(), "{\"beff\":1.0}");
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn peek_does_not_count() {
        let c = ResultCache::new();
        c.insert("k".into(), "v".into());
        assert!(c.peek("k").is_some());
        assert!(c.peek("other").is_none());
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 0, entries: 1 });
    }

    #[test]
    fn identical_reinsert_is_idempotent() {
        let c = ResultCache::new();
        let a = c.insert("k".into(), "v".into());
        let b = c.insert("k".into(), "v".into());
        assert!(Arc::ptr_eq(&a, &b), "the first entry is kept and shared");
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn conflicting_reinsert_panics() {
        let c = ResultCache::new();
        c.insert("k".into(), "v1".into());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.insert("k".into(), "v2".into());
        }));
        assert!(r.is_err(), "divergent bytes for one key must be loud");
    }
}
