//! Job specs: the unit of work a client submits, and — serialized in
//! canonical form — the content address of its result.
//!
//! A [`JobSpec`] names everything that determines a b_eff result bit
//! for bit: machine model, partition size, measurement schedule,
//! pattern seed, extras flag, and (optionally) a fault plan. Because
//! the whole stack underneath is deterministic, two specs with the
//! same canonical serialization *must* produce byte-identical result
//! reports — which is what lets the server answer repeat queries from
//! a cache with exact (not approximate) hits.
//!
//! Canonicalization is delegated to [`beff_json::to_canonical`]: the
//! compact layout with every object's keys sorted recursively. The
//! field order a client happened to send (or a builder happened to
//! insert) therefore never leaks into the cache key; the property
//! tests in `tests/canonical.rs` pin this.

use beff_core::beff::BeffConfig;
use beff_faults::FaultSpec;
use beff_json::{Json, ToJson};
use beff_machines::Machine;
use beff_netsim::Topology;
use std::fmt;

/// Measurement schedule selector (the two shapes of
/// [`MeasureSchedule`](beff_core::beff::MeasureSchedule) the paper
/// harness uses). An enum rather than raw schedule numbers keeps the
/// spec surface small and every value cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Scaled-down CI schedule (`MeasureSchedule::quick`).
    Quick,
    /// Paper-fidelity schedule (`MeasureSchedule::paper`).
    Paper,
}

impl Schedule {
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::Quick => "quick",
            Schedule::Paper => "paper",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Schedule::Quick),
            "paper" => Some(Schedule::Paper),
            _ => None,
        }
    }
}

/// Deterministic fault plan attached to a job: the
/// [`FaultSpec`](beff_faults::FaultSpec) surface, minus `io_slow`
/// (the server runs b_eff, which prices no filesystem traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCfg {
    pub seed: u64,
    /// Overall severity in `0.0..=1.0`.
    pub severity: f64,
    pub degrade: bool,
    pub flapping: bool,
    pub stragglers: usize,
    pub drops: bool,
    pub crashes: usize,
    pub dead_links: usize,
}

impl FaultCfg {
    /// No fault classes enabled (still seeded).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            severity: 0.0,
            degrade: false,
            flapping: false,
            stragglers: 0,
            drops: false,
            crashes: 0,
            dead_links: 0,
        }
    }

    /// Is every fault class disabled? (Then the clean pooled path is
    /// bit-identical and the session pool may serve the job.)
    pub fn is_empty(&self) -> bool {
        !self.degrade
            && !self.flapping
            && self.stragglers == 0
            && !self.drops
            && self.crashes == 0
            && self.dead_links == 0
    }

    /// The materializable fault spec.
    pub fn to_fault_spec(&self) -> FaultSpec {
        let mut s = FaultSpec::none(self.seed).with_severity(self.severity);
        if self.degrade {
            s = s.degrade();
        }
        if self.flapping {
            s = s.flapping();
        }
        if self.stragglers > 0 {
            s = s.stragglers(self.stragglers);
        }
        if self.drops {
            s = s.drops();
        }
        if self.crashes > 0 {
            s = s.crashes(self.crashes);
        }
        if self.dead_links > 0 {
            s = s.dead_links(self.dead_links);
        }
        s
    }
}

impl ToJson for FaultCfg {
    fn to_json(&self) -> Json {
        Json::object()
            .field("seed", &self.seed)
            .field("severity", &self.severity)
            .field("degrade", &self.degrade)
            .field("flapping", &self.flapping)
            .field("stragglers", &self.stragglers)
            .field("drops", &self.drops)
            .field("crashes", &self.crashes)
            .field("dead_links", &self.dead_links)
            .build()
    }
}

/// One benchmark query: which machine, how many ranks, which schedule,
/// which seeds, which faults.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Machine catalog key (`beff_machines::by_key`).
    pub machine: String,
    /// Partition size in ranks (first `procs` processors).
    pub procs: usize,
    pub schedule: Schedule,
    /// Seed for the random neighborhood patterns.
    pub seed: u64,
    /// Measure the non-averaged diagnostic patterns too.
    pub extras: bool,
    /// Optional fault plan; `None` is the clean path.
    pub fault: Option<FaultCfg>,
}

impl JobSpec {
    /// A quick-schedule clean spec with the paper's default pattern
    /// seed. Refine with the `with_*` setters.
    pub fn new(machine: &str, procs: usize) -> Self {
        Self {
            machine: machine.to_string(),
            procs,
            schedule: Schedule::Quick,
            seed: 0xB0EF,
            extras: false,
            fault: None,
        }
    }

    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_extras(mut self, extras: bool) -> Self {
        self.extras = extras;
        self
    }

    pub fn with_fault(mut self, fault: FaultCfg) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The content address: canonical (key-sorted, compact) JSON of the
    /// spec. Structurally equal specs — however their fields were
    /// ordered on the wire — get byte-identical keys.
    pub fn canonical_key(&self) -> String {
        beff_json::to_canonical(self)
    }

    /// Short printable digest of the canonical key (FNV-1a 64, hex).
    pub fn key_digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_key().as_bytes()))
    }

    /// Resolve and validate against the machine catalog: the machine
    /// must exist, the partition must fit it (and respect SMP node
    /// granularity), and fault severity must be in range. Returns the
    /// machine model *sized for the partition*.
    pub fn resolve(&self) -> Result<Machine, SpecError> {
        let machine = beff_machines::by_key(&self.machine)
            .ok_or_else(|| SpecError::UnknownMachine(self.machine.clone()))?;
        if self.procs < 2 || self.procs > machine.procs {
            return Err(SpecError::BadProcs { procs: self.procs, max: machine.procs });
        }
        if let Topology::SmpCluster { ppn, .. } = machine.topology {
            if !self.procs.is_multiple_of(ppn) {
                return Err(SpecError::NotNodeGranular { procs: self.procs, ppn });
            }
        }
        if let Some(f) = &self.fault {
            if !(0.0..=1.0).contains(&f.severity) {
                return Err(SpecError::BadSeverity(f.severity));
            }
        }
        Ok(machine.sized_for(self.procs))
    }

    /// The b_eff measurement configuration this spec asks for, on the
    /// already-resolved machine.
    pub fn beff_config(&self, machine: &Machine) -> BeffConfig {
        let mut cfg = match self.schedule {
            Schedule::Quick => BeffConfig::quick(machine.mem_per_proc),
            Schedule::Paper => BeffConfig::paper(machine.mem_per_proc),
        };
        cfg.seed = self.seed;
        if !self.extras {
            cfg = cfg.without_extras();
        }
        cfg
    }

    /// Parse a spec from its wire JSON. Field order is free; unknown
    /// fields are rejected (a typo'd field silently defaulting would
    /// alias two *different* intents onto one cache key).
    pub fn from_json(v: &Json) -> Result<Self, SpecError> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => return Err(SpecError::Malformed("spec must be a JSON object".into())),
        };
        let mut machine: Option<String> = None;
        let mut procs: Option<usize> = None;
        let mut schedule = Schedule::Quick;
        let mut seed: u64 = 0xB0EF;
        let mut extras = false;
        let mut fault: Option<FaultCfg> = None;
        for (name, value) in fields {
            match name.as_str() {
                "machine" => machine = Some(as_str(value, "machine")?.to_string()),
                "procs" => procs = Some(as_u64(value, "procs")? as usize),
                "schedule" => {
                    let s = as_str(value, "schedule")?;
                    schedule = Schedule::from_str(s).ok_or_else(|| {
                        SpecError::Malformed(format!(
                            "schedule must be \"quick\" or \"paper\", got {s:?}"
                        ))
                    })?;
                }
                "seed" => seed = as_u64(value, "seed")?,
                "extras" => extras = as_bool(value, "extras")?,
                "fault" => match value {
                    Json::Null => fault = None,
                    other => fault = Some(fault_from_json(other)?),
                },
                other => {
                    return Err(SpecError::Malformed(format!("unknown spec field {other:?}")))
                }
            }
        }
        let machine =
            machine.ok_or_else(|| SpecError::Malformed("spec is missing \"machine\"".into()))?;
        let procs =
            procs.ok_or_else(|| SpecError::Malformed("spec is missing \"procs\"".into()))?;
        Ok(Self { machine, procs, schedule, seed, extras, fault })
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Json {
        Json::object()
            .field("machine", &self.machine)
            .field("procs", &self.procs)
            .field("schedule", self.schedule.as_str())
            .field("seed", &self.seed)
            .field("extras", &self.extras)
            .field("fault", &self.fault)
            .build()
    }
}

fn fault_from_json(v: &Json) -> Result<FaultCfg, SpecError> {
    let fields = match v {
        Json::Obj(fields) => fields,
        _ => return Err(SpecError::Malformed("fault must be a JSON object or null".into())),
    };
    let mut f = FaultCfg::none(0);
    for (name, value) in fields {
        match name.as_str() {
            "seed" => f.seed = as_u64(value, "fault.seed")?,
            "severity" => f.severity = as_f64(value, "fault.severity")?,
            "degrade" => f.degrade = as_bool(value, "fault.degrade")?,
            "flapping" => f.flapping = as_bool(value, "fault.flapping")?,
            "stragglers" => f.stragglers = as_u64(value, "fault.stragglers")? as usize,
            "drops" => f.drops = as_bool(value, "fault.drops")?,
            "crashes" => f.crashes = as_u64(value, "fault.crashes")? as usize,
            "dead_links" => f.dead_links = as_u64(value, "fault.dead_links")? as usize,
            other => {
                return Err(SpecError::Malformed(format!("unknown fault field {other:?}")))
            }
        }
    }
    Ok(f)
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, SpecError> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(SpecError::Malformed(format!("{what} must be a string"))),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, SpecError> {
    match v {
        Json::UInt(n) => Ok(*n),
        Json::Int(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(SpecError::Malformed(format!("{what} must be a non-negative integer"))),
    }
}

fn as_f64(v: &Json, what: &str) -> Result<f64, SpecError> {
    match v {
        Json::Float(f) => Ok(*f),
        Json::UInt(n) => Ok(*n as f64),
        Json::Int(n) => Ok(*n as f64),
        _ => Err(SpecError::Malformed(format!("{what} must be a number"))),
    }
}

fn as_bool(v: &Json, what: &str) -> Result<bool, SpecError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(SpecError::Malformed(format!("{what} must be a boolean"))),
    }
}

/// Why a spec cannot be served. The first group is spec-shaped (the
/// job itself is unservable); the second is service-conditioned (the
/// job was fine, the server's state refused it) — load shedding and
/// shutdown answer with *typed* rejections, never silent drops
/// (DESIGN.md §12).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    UnknownMachine(String),
    BadProcs { procs: usize, max: usize },
    NotNodeGranular { procs: usize, ppn: usize },
    BadSeverity(f64),
    /// Wire-shape problems: wrong types, unknown fields, bad JSON.
    Malformed(String),
    /// Shed at admission: the bounded queue (or batch frame) was full.
    Overloaded { queued: usize, capacity: usize },
    /// Shed at flush: the job outlived its virtual-deadline budget in
    /// the admission queue.
    DeadlineExpired { waited: u64, budget: u64 },
    /// The server is draining for shutdown; no new work is admitted.
    ShuttingDown,
    /// A clean job's world raised a typed fault even on a fresh
    /// (post-quarantine) partition. The failure is reported, never
    /// cached — a later retry re-runs the simulation.
    WorldFailed(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownMachine(key) => {
                write!(f, "unknown machine {key:?} (see beff_machines::catalog)")
            }
            SpecError::BadProcs { procs, max } => {
                write!(f, "partition of {procs} ranks out of range (2..={max})")
            }
            SpecError::NotNodeGranular { procs, ppn } => {
                write!(f, "partition of {procs} ranks is not a multiple of {ppn} procs/node")
            }
            SpecError::BadSeverity(s) => {
                write!(f, "fault severity {s} out of range (0.0..=1.0)")
            }
            SpecError::Malformed(msg) => write!(f, "malformed spec: {msg}"),
            SpecError::Overloaded { queued, capacity } => {
                write!(f, "overloaded: admission queue full ({queued}/{capacity}); job shed")
            }
            SpecError::DeadlineExpired { waited, budget } => {
                write!(
                    f,
                    "overloaded: job waited {waited} admission ticks (budget {budget}); shed unexecuted"
                )
            }
            SpecError::ShuttingDown => {
                write!(f, "server is shutting down; no new jobs admitted")
            }
            SpecError::WorldFailed(cause) => {
                write!(f, "world failed on a fresh partition after quarantine: {cause}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// FNV-1a 64-bit: the digest used for short printable content
/// addresses in reports (not a collision-resistant hash; the cache
/// itself keys on the full canonical bytes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_ignores_builder_order() {
        let a = JobSpec::new("t3e", 16).with_seed(7).with_extras(true);
        let b = JobSpec::new("t3e", 16).with_extras(true).with_seed(7);
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn wire_field_order_does_not_change_the_key() {
        let fwd = beff_json::parse(r#"{"machine":"t3e","procs":16,"seed":7}"#)
            .expect("valid json");
        let rev = beff_json::parse(r#"{"seed":7,"procs":16,"machine":"t3e"}"#)
            .expect("valid json");
        let a = JobSpec::from_json(&fwd).expect("valid spec");
        let b = JobSpec::from_json(&rev).expect("valid spec");
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.key_digest(), b.key_digest());
    }

    #[test]
    fn seed_bit_changes_the_key() {
        let a = JobSpec::new("t3e", 16).with_seed(0xB0EF);
        let b = JobSpec::new("t3e", 16).with_seed(0xB0EF ^ 1);
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn unknown_field_is_rejected() {
        let j = beff_json::parse(r#"{"machine":"t3e","procs":16,"sede":7}"#)
            .expect("valid json");
        assert!(matches!(JobSpec::from_json(&j), Err(SpecError::Malformed(_))));
    }

    #[test]
    fn resolve_validates_against_the_catalog() {
        assert!(JobSpec::new("t3e", 16).resolve().is_ok());
        assert!(matches!(
            JobSpec::new("nope", 16).resolve(),
            Err(SpecError::UnknownMachine(_))
        ));
        assert!(matches!(
            JobSpec::new("t3e", 1).resolve(),
            Err(SpecError::BadProcs { .. })
        ));
        assert!(matches!(
            JobSpec::new("t3e", 100_000).resolve(),
            Err(SpecError::BadProcs { .. })
        ));
        // SR 8000 is an SMP cluster with 8 procs/node: 12 ranks is not
        // an installable partition.
        assert!(matches!(
            JobSpec::new("sr8000-rr", 12).resolve(),
            Err(SpecError::NotNodeGranular { ppn: 8, .. })
        ));
        let mut bad = JobSpec::new("t3e", 16);
        bad.fault = Some(FaultCfg { severity: 1.5, ..FaultCfg::none(1) });
        assert!(matches!(bad.resolve(), Err(SpecError::BadSeverity(_))));
    }

    #[test]
    fn json_round_trip_preserves_the_spec() {
        let mut f = FaultCfg::none(9);
        f.severity = 0.5;
        f.degrade = true;
        f.stragglers = 2;
        let spec = JobSpec::new("sr2201", 16)
            .with_schedule(Schedule::Paper)
            .with_seed(42)
            .with_extras(true)
            .with_fault(f);
        let wire = beff_json::to_string(&spec);
        let back = JobSpec::from_json(&beff_json::parse(&wire).expect("own output parses"))
            .expect("own output is a valid spec");
        assert_eq!(spec, back);
        assert_eq!(spec.canonical_key(), back.canonical_key());
    }
}
