//! # beff-serve
//!
//! b_eff as a service: a resident benchmark daemon that turns the
//! one-shot characterization runs into a long-running queryable
//! instrument.
//!
//! The paper's b_eff is a single run on a single machine. The
//! north-star here is a what-if service — "what does the effective
//! bandwidth of a 512-rank T3E partition look like with degraded
//! links?" — answered millions of times. Two properties of this stack
//! make that cheap:
//!
//! 1. **Determinism**: every simulation below the server is
//!    bit-deterministic, so a result is a pure function of its job
//!    spec. Millions of queries collapse onto thousands of distinct
//!    simulations, and a cache hit is *exact*, not approximate.
//! 2. **Resident worlds**: partitions are expensive to spawn and free
//!    to keep ([`WorldSession`](beff_mpi::WorldSession)); a session
//!    pool pays the spawn once per partition shape.
//!
//! The pieces (DESIGN.md §11):
//!
//! * [`spec`] — [`JobSpec`]: machine + procs + schedule + seeds +
//!   fault plan; canonically serialized, it *is* the cache key,
//! * [`wire`] — 4-byte length-prefixed JSON frames,
//! * [`cache`] — content-addressed result store (exact hits),
//! * [`journal`] — durable append-only shadow of the cache, replayed
//!   on startup so a restarted daemon serves old results from disk,
//! * [`pool`] — resident [`Partition`](pool::Partition)s, checked out
//!   per job, quarantined when a run exits through a typed fault,
//! * [`queue`] — bounded admission queue with deadline/shed policy,
//! * [`server`] — the transport-agnostic core tying them together.
//!
//! The failure model — what survives a torn journal, a poisoned
//! world, a hostile frame, an overload burst, a racing shutdown — is
//! DESIGN.md §12, and is enforced by the `serve_torture` binary: a
//! seeded adversarial scenario mix whose deterministic section is a
//! byte-compared `verify.sh` golden.
//!
//! Binaries: `serve` (TCP daemon over the frame protocol), `loadgen`
//! (seeded query-mix replay against an in-process server, emitting the
//! `BENCH_SERVE.json` throughput/latency report that `verify.sh`
//! gates), and `serve_torture` (the failure-model gate).

pub mod cache;
pub mod journal;
pub mod pool;
pub mod queue;
pub mod server;
pub mod spec;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use journal::{Journal, JournalError, Recovery};
pub use queue::Admission;
pub use server::{serve_connection, ConnClose, Outcome, Server};
pub use spec::{fnv1a64, FaultCfg, JobSpec, Schedule, SpecError};
