//! The durable result journal: crash-safe persistence for the
//! content-addressed cache.
//!
//! The in-memory [`ResultCache`](crate::ResultCache) dies with the
//! process; the journal is its append-only on-disk shadow. Every
//! freshly computed `(canonical-key, result-bytes)` pair is appended
//! as one checksummed record, and on startup the daemon replays the
//! file to warm the cache — a kill-and-restart serves every
//! previously-computed spec from disk, byte-identically, without
//! recomputation.
//!
//! ## Format
//!
//! ```text
//! file   := magic record*
//! magic  := "BEFFJRN1"                      (8 bytes)
//! record := key_len   u32 be                (4 bytes)
//!           result_len u32 be               (4 bytes)
//!           key        UTF-8                (key_len bytes)
//!           result     UTF-8                (result_len bytes)
//!           checksum   u64 be               (8 bytes)
//! ```
//!
//! `checksum` is [`fnv1a64`] over the record bytes it seals — the two
//! length prefixes plus `key` plus `result` — so a torn tail, a bit
//! flip, and a lying length field are all detected. Both lengths are
//! capped at [`MAX_FRAME`](crate::wire::MAX_FRAME): a corrupt prefix
//! must not drive an allocation, exactly like the wire codec.
//!
//! ## Recovery discipline
//!
//! Replay is **prefix-consistent**: records are applied in order until
//! the first torn or corrupt one, which truncates the journal there —
//! typed ([`Corrupt`] inside a [`Recovery`] report), never a panic,
//! and never a partial record applied. After a truncating replay the
//! file is healed (`set_len` to the last good offset) so subsequent
//! appends extend a clean prefix. A journal whose *header* is damaged
//! mid-write (shorter than the magic) is reset to empty the same way;
//! a file that is simply not a journal (wrong magic) is refused with a
//! typed [`JournalError`] instead of being destroyed.
//!
//! Replayed records feed the cache through the same first-write-wins
//! byte-equality discipline as live inserts; a journal that contradicts
//! *itself* (two records for one key with different bytes) is treated
//! as corruption at the second record, not a panic.

use crate::spec::fnv1a64;
use crate::wire::MAX_FRAME;
use beff_sync::{order::Rank, Mutex};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Lock level 12 (`serve.journal`): the lowest serve lock — held only
/// around one record write, never while any other lock is held (the
/// cache insert completes before the append starts); see DESIGN.md §8.
static JOURNAL_RANK: Rank = Rank::new(12, "serve.journal");

/// File magic: "BEFFJRN" + format version digit.
pub const MAGIC: &[u8; 8] = b"BEFFJRN1";

/// Why a journal could not be opened or appended to. Transport-level
/// failures stay typed values — a daemon must degrade (serve from
/// memory), not die, when its disk misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level file operation failed.
    Io { path: String, op: &'static str, error: String },
    /// The file exists but does not start with [`MAGIC`] — it is not a
    /// journal, and is refused rather than overwritten.
    BadHeader { path: String, found: String },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, op, error } => {
                write!(f, "journal {path}: {op} failed: {error}")
            }
            JournalError::BadHeader { path, found } => {
                write!(f, "journal {path}: bad header {found:?} (not a beff journal; refusing to overwrite)")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Why replay stopped early at some record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corrupt {
    /// The file ends inside the record (a torn final write).
    Torn { have: usize, need: usize },
    /// A length prefix exceeds the [`MAX_FRAME`] cap (a lying field).
    Oversized { field: &'static str, len: usize },
    /// The stored checksum does not seal the stored bytes.
    Checksum { want: u64, got: u64 },
    /// Key or result bytes are not UTF-8.
    BadUtf8,
    /// A second record for an already-replayed key carries different
    /// bytes — the journal contradicts itself.
    Conflict { digest: String },
    /// The header itself was torn (file shorter than the magic).
    TornHeader { have: usize },
}

impl fmt::Display for Corrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corrupt::Torn { have, need } => {
                write!(f, "torn record: {have} of {need} bytes present")
            }
            Corrupt::Oversized { field, len } => {
                write!(f, "{field} length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            Corrupt::Checksum { want, got } => {
                write!(f, "checksum mismatch: stored {want:#018x}, computed {got:#018x}")
            }
            Corrupt::BadUtf8 => write!(f, "record bytes are not valid UTF-8"),
            Corrupt::Conflict { digest } => {
                write!(f, "conflicting duplicate record for key digest {digest}")
            }
            Corrupt::TornHeader { have } => {
                write!(f, "torn header: {have} of {} magic bytes present", MAGIC.len())
            }
        }
    }
}

/// Where and why a replay truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// Byte offset of the first bad record (= the healed file length).
    pub offset: u64,
    /// Index of the first bad record (= number of records recovered).
    pub record: usize,
    pub reason: Corrupt,
}

impl fmt::Display for Truncation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal truncated at record {} (offset {}): {}",
            self.record, self.offset, self.reason
        )
    }
}

/// What a replay found: how much survived, and whether (and why) the
/// tail was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Records replayed into the cache.
    pub recovered: usize,
    /// Healed file length in bytes (header + surviving records).
    pub bytes: u64,
    /// `Some` when the file held a torn or corrupt tail.
    pub truncated: Option<Truncation>,
}

/// An open journal: replayed once at [`open`](Journal::open), then
/// append-only.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying every intact
    /// record. Returns the journal positioned for appends, the
    /// recovered `(key, result)` records in journal order, and the
    /// [`Recovery`] report. Torn or corrupt tails are healed in place;
    /// only a non-journal file or a failing filesystem is an error.
    pub fn open(path: &Path) -> Result<(Journal, Vec<(String, String)>, Recovery), JournalError> {
        let err = |op: &'static str, e: std::io::Error| JournalError::Io {
            path: path.display().to_string(),
            op,
            error: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| err("open", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| err("read", e))?;

        // Header: absent (fresh file) → write it; torn → heal to a
        // fresh journal; wrong → typed refusal.
        let mut truncated = None;
        if raw.is_empty() {
            file.write_all(MAGIC).map_err(|e| err("write header", e))?;
        } else if raw.len() < MAGIC.len() {
            truncated = Some(Truncation {
                offset: 0,
                record: 0,
                reason: Corrupt::TornHeader { have: raw.len() },
            });
            file.set_len(0).map_err(|e| err("heal", e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| err("seek", e))?;
            file.write_all(MAGIC).map_err(|e| err("write header", e))?;
            raw.clear();
        } else if &raw[..MAGIC.len()] != MAGIC {
            return Err(JournalError::BadHeader {
                path: path.display().to_string(),
                found: format!("{:02x?}", &raw[..MAGIC.len()]),
            });
        }

        // Records: replay until the first bad one.
        let mut records = Vec::new();
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        let mut offset = MAGIC.len().min(raw.len());
        if truncated.is_none() {
            while offset < raw.len() {
                match parse_record(&raw[offset..]) {
                    Ok((key, result, used)) => {
                        if let Some(prior) = seen.get(key) {
                            if *prior != result {
                                truncated = Some(Truncation {
                                    offset: offset as u64,
                                    record: records.len(),
                                    reason: Corrupt::Conflict {
                                        digest: format!("{:016x}", fnv1a64(key.as_bytes())),
                                    },
                                });
                                break;
                            }
                            // Identical duplicate: first write wins,
                            // nothing new to apply.
                            offset += used;
                            continue;
                        }
                        seen.insert(key, result);
                        records.push((key.to_string(), result.to_string()));
                        offset += used;
                    }
                    Err(reason) => {
                        truncated = Some(Truncation {
                            offset: offset as u64,
                            record: records.len(),
                            reason,
                        });
                        break;
                    }
                }
            }
        }

        // Heal: cut the bad tail so appends extend a clean prefix.
        // Record offsets start at the magic, so a record-level
        // truncation offset is always ≥ the header length; a healed or
        // fresh header leaves exactly the magic.
        let good: u64 = match &truncated {
            Some(Truncation { reason: Corrupt::TornHeader { .. }, .. }) => MAGIC.len() as u64,
            Some(t) => t.offset,
            None => offset.max(MAGIC.len()) as u64,
        };
        file.set_len(good).map_err(|e| err("heal", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| err("seek", e))?;

        let recovery =
            Recovery { recovered: records.len(), bytes: good, truncated };
        let journal = Journal {
            path: path.to_path_buf(),
            file: Mutex::ranked(&JOURNAL_RANK, file),
        };
        Ok((journal, records, recovery))
    }

    /// Append one record. The caller guarantees `key`/`result` fit the
    /// frame cap (cache keys are small; result reports are bounded by
    /// the same cap the wire refuses).
    pub fn append(&self, key: &str, result: &str) -> Result<(), JournalError> {
        let bytes = encode_record(key, result);
        let mut file = self.file.lock();
        file.write_all(&bytes).map_err(|e| JournalError::Io {
            path: self.path.display().to_string(),
            op: "append",
            error: e.to_string(),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encode one record (lengths + bytes + sealing checksum).
pub fn encode_record(key: &str, result: &str) -> Vec<u8> {
    let klen = u32::try_from(key.len()).expect("cache keys are far below 4 GiB");
    let rlen = u32::try_from(result.len()).expect("results are capped at MAX_FRAME");
    let mut out = Vec::with_capacity(16 + key.len() + result.len());
    out.extend_from_slice(&klen.to_be_bytes());
    out.extend_from_slice(&rlen.to_be_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(result.as_bytes());
    let check = fnv1a64(&out);
    out.extend_from_slice(&check.to_be_bytes());
    out
}

/// Parse the first record of `buf`: `(key, result, bytes_used)`, or
/// why the bytes are not one intact record.
fn parse_record(buf: &[u8]) -> Result<(&str, &str, usize), Corrupt> {
    if buf.len() < 8 {
        return Err(Corrupt::Torn { have: buf.len(), need: 8 });
    }
    let klen = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let rlen = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if klen > MAX_FRAME {
        return Err(Corrupt::Oversized { field: "key", len: klen });
    }
    if rlen > MAX_FRAME {
        return Err(Corrupt::Oversized { field: "result", len: rlen });
    }
    let need = 8 + klen + rlen + 8;
    if buf.len() < need {
        return Err(Corrupt::Torn { have: buf.len(), need });
    }
    let sealed = &buf[..8 + klen + rlen];
    let got = fnv1a64(sealed);
    let want = u64::from_be_bytes(
        buf[8 + klen + rlen..need].try_into().expect("slice is exactly 8 bytes"),
    );
    if want != got {
        return Err(Corrupt::Checksum { want, got });
    }
    let key = std::str::from_utf8(&buf[8..8 + klen]).map_err(|_| Corrupt::BadUtf8)?;
    let result =
        std::str::from_utf8(&buf[8 + klen..8 + klen + rlen]).map_err(|_| Corrupt::BadUtf8)?;
    Ok((key, result, need))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("beff-journal-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn fresh(name: &str) -> PathBuf {
        let p = scratch(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = fresh("round_trip.beffj");
        {
            let (j, records, rec) = Journal::open(&path).expect("fresh journal opens");
            assert!(records.is_empty());
            assert_eq!(rec, Recovery { recovered: 0, bytes: 8, truncated: None });
            j.append("k1", "{\"beff\":1.0}").expect("append");
            j.append("k2", "{\"beff\":2.0}").expect("append");
        }
        let (_, records, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.recovered, 2);
        assert!(rec.truncated.is_none());
        assert_eq!(records[0], ("k1".to_string(), "{\"beff\":1.0}".to_string()));
        assert_eq!(records[1], ("k2".to_string(), "{\"beff\":2.0}".to_string()));
    }

    #[test]
    fn torn_final_record_recovers_the_prefix() {
        let path = fresh("torn.beffj");
        {
            let (j, _, _) = Journal::open(&path).expect("open");
            j.append("k1", "v1").expect("append");
            j.append("k2", "v2").expect("append");
        }
        // Tear the last record: drop its final 3 bytes.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("reopen");
        f.set_len(len - 3).expect("tear");
        drop(f);

        let (_, records, rec) = Journal::open(&path).expect("replay survives the tear");
        assert_eq!(rec.recovered, 1, "only the intact prefix replays");
        assert_eq!(records[0].0, "k1");
        let t = rec.truncated.expect("the tear is reported");
        assert_eq!(t.record, 1);
        assert!(matches!(t.reason, Corrupt::Torn { .. }), "{:?}", t.reason);
        // Healed: the file now ends at the last good record...
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), t.offset);
        // ...and a clean reopen sees no damage at all.
        let (_, _, rec2) = Journal::open(&path).expect("reopen healed");
        assert_eq!(rec2, Recovery { recovered: 1, bytes: t.offset, truncated: None });
    }

    #[test]
    fn flipped_byte_is_a_checksum_truncation() {
        let path = fresh("flip.beffj");
        {
            let (j, _, _) = Journal::open(&path).expect("open");
            j.append("k1", "v1").expect("append");
            j.append("k2", "v2").expect("append");
        }
        let mut raw = std::fs::read(&path).expect("read");
        let second = 8 + encode_record("k1", "v1").len();
        raw[second + 9] ^= 0x01; // one payload bit of record 2
        std::fs::write(&path, &raw).expect("write corrupted");

        let (_, _, rec) = Journal::open(&path).expect("typed, not a panic");
        assert_eq!(rec.recovered, 1);
        let t = rec.truncated.expect("corruption reported");
        assert!(matches!(t.reason, Corrupt::Checksum { .. }), "{:?}", t.reason);
    }

    #[test]
    fn lying_length_field_is_refused_within_the_cap() {
        let path = fresh("lying_len.beffj");
        {
            let (j, _, _) = Journal::open(&path).expect("open");
            j.append("k1", "v1").expect("append");
        }
        let mut raw = std::fs::read(&path).expect("read");
        // Oversize the result length of an appended garbage record.
        raw.extend_from_slice(&4u32.to_be_bytes());
        raw.extend_from_slice(&(u32::MAX).to_be_bytes());
        raw.extend_from_slice(b"keyy");
        std::fs::write(&path, &raw).expect("write");
        let (_, _, rec) = Journal::open(&path).expect("typed");
        assert_eq!(rec.recovered, 1);
        assert!(matches!(
            rec.truncated.expect("reported").reason,
            Corrupt::Oversized { field: "result", .. }
        ));
    }

    #[test]
    fn conflicting_duplicate_truncates_identical_duplicate_does_not() {
        let path = fresh("dup.beffj");
        {
            let (j, _, _) = Journal::open(&path).expect("open");
            j.append("k", "v").expect("append");
            j.append("k", "v").expect("identical duplicate");
            j.append("k2", "v2").expect("append");
        }
        let (_, records, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.recovered, 2, "identical duplicate folds away");
        assert_eq!(records.len(), 2);
        assert!(rec.truncated.is_none());

        // Now force a conflicting duplicate.
        {
            let (j, _, _) = Journal::open(&path).expect("reopen");
            j.append("k", "DIFFERENT").expect("append");
        }
        let (_, _, rec) = Journal::open(&path).expect("typed");
        assert_eq!(rec.recovered, 2);
        assert!(matches!(
            rec.truncated.expect("conflict reported").reason,
            Corrupt::Conflict { .. }
        ));
    }

    #[test]
    fn wrong_magic_is_refused_not_destroyed() {
        let path = fresh("not_a_journal.beffj");
        std::fs::write(&path, b"definitely not a journal").expect("write");
        let Err(e) = Journal::open(&path) else { panic!("wrong magic must refuse") };
        assert!(matches!(e, JournalError::BadHeader { .. }), "{e:?}");
        assert_eq!(
            std::fs::read(&path).expect("still there"),
            b"definitely not a journal",
            "a refused file must not be modified"
        );
    }

    #[test]
    fn torn_header_heals_to_a_fresh_journal() {
        let path = fresh("torn_header.beffj");
        std::fs::write(&path, &MAGIC[..3]).expect("write partial magic");
        let (j, records, rec) = Journal::open(&path).expect("heals");
        assert!(records.is_empty());
        assert!(matches!(
            rec.truncated.expect("reported").reason,
            Corrupt::TornHeader { have: 3 }
        ));
        j.append("k", "v").expect("usable after heal");
        let (_, records, rec2) = Journal::open(&path).expect("reopen");
        assert_eq!((records.len(), rec2.truncated), (1, None));
    }

    #[test]
    fn empty_payloads_are_valid_records() {
        let path = fresh("empty.beffj");
        {
            let (j, _, _) = Journal::open(&path).expect("open");
            j.append("", "").expect("append empty");
        }
        let (_, records, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(records, vec![(String::new(), String::new())]);
        assert!(rec.truncated.is_none());
    }
}
