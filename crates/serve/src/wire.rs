//! The wire protocol: 4-byte big-endian length prefix + UTF-8 JSON
//! payload, in both directions.
//!
//! Framing and transport are separated so the same codec drives the
//! TCP daemon (`bin/serve.rs`, via [`read_frame`]/[`write_frame`]) and
//! fully in-process tests/load generation (via [`encode`]/[`decode`]
//! over byte slices). Nothing here interprets the payload — request
//! and response shapes live in [`crate::server`].

use std::fmt;
use std::io::{self, Read, Write};

/// Frames above this size are refused (a corrupt or hostile length
/// prefix must not drive an allocation): 16 MiB, an order of magnitude
/// above the largest paper-schedule result report.
pub const MAX_FRAME: usize = 16 << 20;

/// Framing failures (transport errors stay `io::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// Payload is not UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode one frame: length prefix + payload bytes.
pub fn encode(payload: &str) -> Vec<u8> {
    // beff-analyze: allow(panicflow): every encoded payload is bounded by MAX_FRAME, far below u32::MAX
    let len = u32::try_from(payload.len()).expect("payload under 4 GiB");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decode the first frame of `buf`. `Ok(None)` means the buffer does
/// not yet hold a whole frame (read more); `Ok(Some((payload, used)))`
/// returns the payload and how many bytes it consumed.
pub fn decode(buf: &[u8]) -> Result<Option<(String, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|_| WireError::BadUtf8)?
        .to_string();
    Ok(Some((payload, 4 + len)))
}

/// Read one frame from a blocking transport. `Ok(None)` is a clean
/// end-of-stream at a frame boundary; EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix)? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                let more = r.read(&mut prefix[got..])?;
                if more == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame length prefix",
                    ));
                }
                got += more;
            }
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let payload = String::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, WireError::BadUtf8.to_string()))?;
    Ok(Some(payload))
}

/// Write one frame to a blocking transport.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    w.write_all(&encode(payload))?;
    w.flush()
}

/// An in-memory duplex transport: reads consume a fixed input script,
/// writes append to [`output`](MemStream::output). This is how the
/// torture harness and the connection tests drive
/// [`serve_connection`](crate::server::serve_connection) through every
/// adversarial byte sequence — truncations, lying lengths, garbage —
/// without a socket, so the byte-level behaviour is deterministic and
/// replayable.
pub struct MemStream {
    input: io::Cursor<Vec<u8>>,
    /// Every byte the server wrote back, in order.
    pub output: Vec<u8>,
}

impl MemStream {
    pub fn new(input: Vec<u8>) -> Self {
        Self { input: io::Cursor::new(input), output: Vec::new() }
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn encode_decode_round_trip() {
        let bytes = encode(r#"{"op":"stats"}"#);
        let (payload, used) = decode(&bytes).expect("well-formed").expect("complete");
        assert_eq!(payload, r#"{"op":"stats"}"#);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn decode_waits_for_a_whole_frame() {
        let bytes = encode("hello");
        assert_eq!(decode(&bytes[..3]).expect("short prefix is fine"), None);
        assert_eq!(decode(&bytes[..7]).expect("short payload is fine"), None);
    }

    #[test]
    fn decode_leaves_trailing_bytes_for_the_next_frame() {
        let mut bytes = encode("one");
        bytes.extend_from_slice(&encode("two"));
        let (p1, used) = decode(&bytes).expect("ok").expect("complete");
        assert_eq!(p1, "one");
        let (p2, _) = decode(&bytes[used..]).expect("ok").expect("complete");
        assert_eq!(p2, "two");
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(b"junk");
        assert!(matches!(decode(&bytes), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "alpha").expect("vec write");
        write_frame(&mut buf, "beta").expect("vec write");
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("ok"), Some("alpha".into()));
        assert_eq!(read_frame(&mut r).expect("ok"), Some("beta".into()));
        assert_eq!(read_frame(&mut r).expect("clean eof"), None);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let bytes = encode("truncated");
        let mut r = Cursor::new(&bytes[..bytes.len() - 2]);
        assert!(read_frame(&mut r).is_err());
    }
}
