//! Property tests for the parallel-filesystem simulator.

use beff_pfs::{DataRef, Pfs, PfsConfig};
use proptest::prelude::*;

fn store_cfg() -> PfsConfig {
    PfsConfig { clients: 4, store_data: true, ..PfsConfig::default() }
}

proptest! {
    #[test]
    fn write_read_roundtrip_arbitrary_layout(
        writes in prop::collection::vec((0u64..500_000, 1usize..20_000, any::<u8>()), 1..12)
    ) {
        let pfs = Pfs::new(store_cfg());
        let (f, mut t) = pfs.open("p", 0.0);
        // apply writes in order; remember the final byte value per range
        let mut model = std::collections::BTreeMap::new(); // byte -> value, sparse check points
        for &(off, len, val) in &writes {
            let data = vec![val; len];
            t = pfs.write(0, &f, off, DataRef::Bytes(&data), t);
            // track first/mid/last byte of each write
            for p in [off, off + len as u64 / 2, off + len as u64 - 1] {
                model.insert(p, val);
            }
        }
        // later writes may have overwritten earlier checkpoints; recompute
        for (&p, v) in model.iter_mut() {
            for &(off, len, val) in &writes {
                if p >= off && p < off + len as u64 {
                    *v = val; // last write in program order wins
                }
            }
        }
        for (&p, &v) in &model {
            let mut out = [0u8; 1];
            let (nread, _) = pfs.read(1, &f, p, 1, Some(&mut out), t);
            prop_assert_eq!(nread, 1);
            prop_assert_eq!(out[0], v, "byte at {}", p);
        }
    }

    #[test]
    fn completion_times_are_monotone_in_length(
        off in 0u64..1_000_000,
        len in 1u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let a = {
            let pfs = Pfs::new(PfsConfig::default());
            let (f, t) = pfs.open("m", 0.0);
            pfs.write(0, &f, off, DataRef::Len(len), t)
        };
        let b = {
            let pfs = Pfs::new(PfsConfig::default());
            let (f, t) = pfs.open("m", 0.0);
            pfs.write(0, &f, off, DataRef::Len(len + extra), t)
        };
        prop_assert!(b >= a, "{b} < {a}");
    }

    #[test]
    fn reads_never_exceed_file_size(
        file_len in 0u64..100_000,
        read_off in 0u64..200_000,
        read_len in 0u64..200_000,
    ) {
        let pfs = Pfs::new(PfsConfig::default());
        let (f, t) = pfs.open("r", 0.0);
        let t = pfs.write(0, &f, 0, DataRef::Len(file_len), t);
        let (n, done) = pfs.read(0, &f, read_off, read_len, None, t);
        prop_assert!(n <= read_len);
        prop_assert!(read_off + n <= file_len.max(read_off));
        prop_assert!(done >= t);
    }

    #[test]
    fn sync_is_idempotent_and_monotone(lens in prop::collection::vec(1u64..4_000_000, 1..6)) {
        let pfs = Pfs::new(PfsConfig::default());
        let (f, mut t) = pfs.open("s", 0.0);
        let mut off = 0;
        for &l in &lens {
            t = pfs.write(0, &f, off, DataRef::Len(l), t);
            off += l;
        }
        let s1 = pfs.sync(t);
        let s2 = pfs.sync(s1);
        prop_assert!(s1 >= t);
        // second sync with nothing dirty is (nearly) free
        prop_assert!(s2 - s1 < 1e-9, "second sync cost {}", s2 - s1);
    }
}
