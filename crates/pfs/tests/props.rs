//! Property tests for the parallel-filesystem simulator.

use beff_check::{check, ensure, ensure_eq};
use beff_pfs::{DataRef, Pfs, PfsConfig};

fn store_cfg() -> PfsConfig {
    PfsConfig { clients: 4, store_data: true, ..PfsConfig::default() }
}

#[test]
fn write_read_roundtrip_arbitrary_layout() {
    check("write read roundtrip arbitrary layout", |g| {
        let writes = g.vec(1..=11, |g| {
            (g.u64(0..=499_999), g.usize(1..=19_999), g.u64(0..=255) as u8)
        });
        let pfs = Pfs::new(store_cfg());
        let (f, mut t) = pfs.open("p", 0.0);
        // apply writes in order; remember the final byte value per range
        let mut model = std::collections::BTreeMap::new(); // byte -> value, sparse check points
        for &(off, len, val) in &writes {
            let data = vec![val; len];
            t = pfs.write(0, &f, off, DataRef::Bytes(&data), t);
            // track first/mid/last byte of each write
            for p in [off, off + len as u64 / 2, off + len as u64 - 1] {
                model.insert(p, val);
            }
        }
        // later writes may have overwritten earlier checkpoints; recompute
        for (&p, v) in model.iter_mut() {
            for &(off, len, val) in &writes {
                if p >= off && p < off + len as u64 {
                    *v = val; // last write in program order wins
                }
            }
        }
        for (&p, &v) in &model {
            let mut out = [0u8; 1];
            let (nread, _) = pfs.read(1, &f, p, 1, Some(&mut out), t);
            ensure_eq!(nread, 1);
            ensure_eq!(out[0], v, "byte at {}", p);
        }
    });
}

#[test]
fn completion_times_are_monotone_in_length() {
    check("completion times are monotone in length", |g| {
        let off = g.u64(0..=999_999);
        let len = g.u64(1..=999_999);
        let extra = g.u64(1..=999_999);
        let a = {
            let pfs = Pfs::new(PfsConfig::default());
            let (f, t) = pfs.open("m", 0.0);
            pfs.write(0, &f, off, DataRef::Len(len), t)
        };
        let b = {
            let pfs = Pfs::new(PfsConfig::default());
            let (f, t) = pfs.open("m", 0.0);
            pfs.write(0, &f, off, DataRef::Len(len + extra), t)
        };
        ensure!(b >= a, "{} < {}", b, a);
    });
}

#[test]
fn reads_never_exceed_file_size() {
    check("reads never exceed file size", |g| {
        let file_len = g.u64(0..=99_999);
        let read_off = g.u64(0..=199_999);
        let read_len = g.u64(0..=199_999);
        let pfs = Pfs::new(PfsConfig::default());
        let (f, t) = pfs.open("r", 0.0);
        let t = pfs.write(0, &f, 0, DataRef::Len(file_len), t);
        let (n, done) = pfs.read(0, &f, read_off, read_len, None, t);
        ensure!(n <= read_len);
        ensure!(read_off + n <= file_len.max(read_off));
        ensure!(done >= t);
    });
}

#[test]
fn sync_is_idempotent_and_monotone() {
    check("sync is idempotent and monotone", |g| {
        let lens = g.vec(1..=5, |g| g.u64(1..=3_999_999));
        let pfs = Pfs::new(PfsConfig::default());
        let (f, mut t) = pfs.open("s", 0.0);
        let mut off = 0;
        for &l in &lens {
            t = pfs.write(0, &f, off, DataRef::Len(l), t);
            off += l;
        }
        let s1 = pfs.sync(t);
        let s2 = pfs.sync(s1);
        ensure!(s1 >= t);
        // second sync with nothing dirty is (nearly) free
        ensure!(s2 - s1 < 1e-9, "second sync cost {}", s2 - s1);
    });
}
