//! An I/O server: a serially-shared disk resource with per-request
//! overhead, streaming bandwidth, an optional *seek* model (a request
//! that does not extend one of the server's recent streams pays a disk
//! arm movement) and an adjustable speed factor for
//! failure/degradation injection.

use beff_netsim::{Resource, Secs, MB};
use beff_sync::Mutex;

/// How many concurrent stream tails the server's track buffers follow.
const STREAMS: usize = 16;

/// Prefetch window: a request within this distance of a tracked stream
/// tail counts as sequential (striped requests advance in *file*
/// offsets by a full stripe round, not by the per-server byte count).
const STREAM_SLACK: u64 = 1024 * 1024;

#[derive(Debug)]
pub struct Server {
    res: Resource,
    request_overhead: Secs,
    /// Extra cost when a request does not extend a recent stream
    /// (0.0 disables seek modeling — the default for the calibrated
    /// machine models, which the paper's benchmark does not probe).
    seek_overhead: Mutex<Secs>,
    byte_time: Secs,
    /// Recent stream end-offsets (prefetch/track buffers) and the
    /// round-robin victim cursor.
    streams: Mutex<(usize, [u64; STREAMS])>,
    /// 1.0 = healthy; 0.5 = half speed; small values ~ outage.
    speed_factor: Mutex<f64>,
}

impl Server {
    pub fn new(request_overhead: Secs, mbps: f64) -> Self {
        Self {
            res: Resource::new(),
            request_overhead,
            seek_overhead: Mutex::new(0.0),
            byte_time: 1.0 / (mbps * MB as f64),
            streams: Mutex::new((0, [u64::MAX; STREAMS])),
            speed_factor: Mutex::new(1.0),
        }
    }

    /// Enable/disable the seek model.
    pub fn set_seek_overhead(&self, seek: Secs) {
        *self.seek_overhead.lock() = seek;
    }

    /// Serve a request of `bytes` arriving at `t`; returns completion.
    pub fn request(&self, t: Secs, bytes: u64) -> Secs {
        self.request_at(t, bytes, None)
    }

    /// Serve a request with a known file offset: sequential extensions
    /// of a recent stream skip the seek cost.
    pub fn request_at(&self, t: Secs, bytes: u64, offset: Option<u64>) -> Secs {
        let f = *self.speed_factor.lock();
        assert!(f > 0.0, "speed factor must be positive");
        let seek = *self.seek_overhead.lock();
        let mut extra = 0.0;
        if seek > 0.0 {
            if let Some(off) = offset {
                let mut g = self.streams.lock();
                let (cursor, st) = &mut *g;
                let near = |e: u64| e != u64::MAX && e.abs_diff(off) <= STREAM_SLACK;
                if let Some(slot) = st.iter().position(|&e| near(e)) {
                    st[slot] = off + bytes; // extends a stream: no seek
                } else {
                    extra = seek;
                    // round-robin victim replacement
                    st[*cursor] = off + bytes;
                    *cursor = (*cursor + 1) % STREAMS;
                }
            } else {
                extra = seek;
            }
        }
        let dur = (self.request_overhead + extra + bytes as f64 * self.byte_time) / f;
        self.res.reserve_finish(t, dur)
    }

    /// Degrade (or restore) the server.
    pub fn set_speed_factor(&self, f: f64) {
        assert!(f > 0.0, "speed factor must be positive");
        *self.speed_factor.lock() = f;
    }

    /// Next-free time (diagnostics).
    pub fn horizon(&self) -> Secs {
        self.res.horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_costs_overhead_plus_transfer() {
        let s = Server::new(1e-3, 1.0); // 1 ms + 1 MB/s
        let done = s.request(0.0, MB);
        assert!((done - 1.001).abs() < 1e-9, "done={done}");
    }

    #[test]
    fn requests_serialize() {
        let s = Server::new(0.0, 1.0);
        let a = s.request(0.0, MB);
        let b = s.request(0.0, MB);
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_server_is_slower() {
        let s = Server::new(0.0, 10.0);
        let healthy = s.request(0.0, 10 * MB) - 0.0;
        s.set_speed_factor(0.25);
        let t0 = s.horizon();
        let degraded = s.request(t0, 10 * MB) - t0;
        assert!((degraded / healthy - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_factor_rejected() {
        Server::new(0.0, 10.0).set_speed_factor(0.0);
    }

    #[test]
    fn sequential_streams_skip_seeks() {
        let s = Server::new(0.0, 1.0);
        s.set_seek_overhead(0.5);
        // first touch pays the seek, extensions do not
        let mut t = s.request_at(0.0, MB, Some(0));
        assert!((t - 1.5).abs() < 1e-9, "first request seeks: {t}");
        t = s.request_at(t, MB, Some(MB));
        assert!((t - 2.5).abs() < 1e-9, "extension is seek-free: {t}");
        // a far-away request seeks again
        t = s.request_at(t, MB, Some(100 * MB));
        assert!((t - 4.0).abs() < 1e-9, "random access seeks: {t}");
        // near-miss within the prefetch window is sequential
        t = s.request_at(t, MB, Some(101 * MB + 512 * 1024));
        assert!((t - 5.0).abs() < 1e-9, "prefetch window covers slack: {t}");
    }

    #[test]
    fn seek_model_disabled_by_default() {
        let s = Server::new(0.0, 1.0);
        let t = s.request_at(0.0, MB, Some(777));
        assert!((t - 1.0).abs() < 1e-9);
    }
}
