//! Parallel-filesystem model parameters.
//!
//! The knobs mirror the paper's §3.2 category 5 ("filesystem
//! parameters"): number of I/O servers, striping unit, disk block size,
//! cache size — plus the per-request software overheads that make the
//! 1 kB-chunk patterns slow on every real system in Fig. 4.

use beff_json::{Json, ToJson};
use beff_netsim::Secs;

/// Configuration of a simulated parallel filesystem.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Number of MPI clients that may issue I/O (per-client links).
    pub clients: usize,
    /// Number of I/O servers the file data is striped over.
    pub servers: usize,
    /// Striping unit in bytes (round-robin across servers).
    pub stripe_unit: u64,
    /// Disk block size: accesses not aligned to this granularity pay a
    /// read-modify-write penalty (the "non-wellformed" effect).
    pub disk_block: u64,
    /// Per-extent server-side overhead (seek + request handling).
    pub server_request_overhead: Secs,
    /// Streaming bandwidth of one server's disks, MByte/s.
    pub server_mbps: f64,
    /// Per-call client-side software overhead (syscall + middleware).
    pub client_request_overhead: Secs,
    /// Per-client injection bandwidth into the I/O subsystem, MByte/s.
    pub client_mbps: f64,
    /// Aggregate bandwidth of the I/O channel (GigaRing, GPFS fabric,
    /// fibre channel): every byte moved between clients and the I/O
    /// subsystem crosses this shared resource, cache hit or not. This
    /// is what makes the T3E's I/O a *global* resource in Fig. 3.
    pub aggregate_mbps: f64,
    /// Filesystem cache capacity in bytes (0 disables the cache).
    pub cache_bytes: u64,
    /// Cache (memory) transfer bandwidth, MByte/s.
    pub cache_mbps: f64,
    /// Cost of `open` / `close` per file.
    pub open_cost: Secs,
    pub close_cost: Secs,
    /// Keep file contents so reads return the written bytes
    /// (integrity tests: on; large benchmark runs: off).
    pub store_data: bool,
}

impl ToJson for PfsConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("clients", &self.clients)
            .field("servers", &self.servers)
            .field("stripe_unit", &self.stripe_unit)
            .field("disk_block", &self.disk_block)
            .field("server_request_overhead", &self.server_request_overhead)
            .field("server_mbps", &self.server_mbps)
            .field("client_request_overhead", &self.client_request_overhead)
            .field("client_mbps", &self.client_mbps)
            .field("aggregate_mbps", &self.aggregate_mbps)
            .field("cache_bytes", &self.cache_bytes)
            .field("cache_mbps", &self.cache_mbps)
            .field("open_cost", &self.open_cost)
            .field("close_cost", &self.close_cost)
            .field("store_data", &self.store_data)
            .build()
    }
}

impl PfsConfig {
    /// Aggregate disk drain bandwidth in bytes/s.
    pub fn drain_bytes_per_sec(&self) -> f64 {
        self.servers as f64 * self.server_mbps * (1024.0 * 1024.0)
    }
}

impl Default for PfsConfig {
    /// A modest late-90s parallel filesystem: 4 servers x 30 MB/s,
    /// 64 kB stripes, 256 MB cache.
    fn default() -> Self {
        Self {
            clients: 16,
            servers: 4,
            stripe_unit: 64 * 1024,
            disk_block: 16 * 1024,
            server_request_overhead: 400e-6,
            server_mbps: 30.0,
            client_request_overhead: 60e-6,
            client_mbps: 100.0,
            aggregate_mbps: 400.0,
            cache_bytes: 256 * 1024 * 1024,
            cache_mbps: 400.0,
            open_cost: 2e-3,
            close_cost: 1e-3,
            store_data: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_is_servers_times_bandwidth() {
        let c = PfsConfig { servers: 10, server_mbps: 30.0, ..PfsConfig::default() };
        assert_eq!(c.drain_bytes_per_sec(), 10.0 * 30.0 * 1048576.0);
    }
}
