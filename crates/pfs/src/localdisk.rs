//! Real-filesystem backend for *real mode*: the same MPI-IO layer can
//! run against actual files on the host disk, with wall-clock timing.
//! Uses positioned I/O (`pread`/`pwrite`) so concurrent ranks do not
//! fight over a shared cursor.

use beff_sync::{Mutex, Rank};

/// Lock-hierarchy position of the name table (DESIGN.md §8).
static DISK_RANK: Rank = Rank::new(60, "pfs.disk");
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One real file, opened read+write.
#[derive(Debug)]
pub struct LocalFile {
    file: File,
    path: PathBuf,
}

impl LocalFile {
    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.write_all_at(data, offset)
    }

    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        // read as much as available (short read at EOF is fine)
        let mut done = 0;
        while done < buf.len() {
            match self.file.read_at(&mut buf[done..], offset + done as u64) {
                Ok(0) => break,
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(done)
    }

    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    pub fn size(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    pub fn truncate(&self) -> io::Result<()> {
        self.file.set_len(0)
    }
}

/// A directory of real files used as the storage backend.
#[derive(Debug)]
pub struct LocalDisk {
    dir: PathBuf,
    files: Mutex<BTreeMap<String, Arc<LocalFile>>>,
}

impl LocalDisk {
    /// Create (or reuse) `dir` as the storage root.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, files: Mutex::ranked(&DISK_RANK, BTreeMap::new()) })
    }

    /// A LocalDisk in a fresh unique subdirectory of the system temp dir.
    pub fn temp(label: &str) -> io::Result<Self> {
        let unique = format!(
            "beff-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        Self::new(std::env::temp_dir().join(unique))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Open (creating if needed) a file by logical name.
    pub fn open(&self, name: &str) -> io::Result<Arc<LocalFile>> {
        let mut files = self.files.lock();
        if let Some(f) = files.get(name) {
            return Ok(Arc::clone(f));
        }
        let path = self.dir.join(name);
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let lf = Arc::new(LocalFile { file, path });
        files.insert(name.to_string(), Arc::clone(&lf));
        Ok(lf)
    }

    /// Delete a file (best effort).
    pub fn unlink(&self, name: &str) {
        self.files.lock().remove(name);
        let _ = std::fs::remove_file(self.dir.join(name));
    }

    /// Remove the whole storage directory (cleanup).
    pub fn destroy(self) {
        let dir = self.dir.clone();
        drop(self);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let d = LocalDisk::temp("t1").unwrap();
        let f = d.open("a.dat").unwrap();
        f.write_at(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(f.read_at(10, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(f.size().unwrap(), 15);
        d.destroy();
    }

    #[test]
    fn short_read_at_eof() {
        let d = LocalDisk::temp("t2").unwrap();
        let f = d.open("a.dat").unwrap();
        f.write_at(0, b"xy").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 2);
        d.destroy();
    }

    #[test]
    fn open_is_shared_and_unlink_removes() {
        let d = LocalDisk::temp("t3").unwrap();
        let a = d.open("a").unwrap();
        let b = d.open("a").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        d.unlink("a");
        assert!(!d.dir().join("a").exists());
        d.destroy();
    }

    #[test]
    fn concurrent_positioned_writes_do_not_interleave() {
        let d = LocalDisk::temp("t4").unwrap();
        let f = d.open("a").unwrap();
        std::thread::scope(|s| {
            for i in 0..4u8 {
                let f = &f;
                s.spawn(move || {
                    f.write_at(i as u64 * 1000, &vec![i + 1; 1000]).unwrap();
                });
            }
        });
        let mut buf = vec![0u8; 4000];
        f.read_at(0, &mut buf).unwrap();
        for i in 0..4 {
            assert!(buf[i * 1000..(i + 1) * 1000].iter().all(|&b| b == i as u8 + 1));
        }
        d.destroy();
    }
}
