//! # beff-pfs
//!
//! A parallel-filesystem simulator (plus a real-disk backend) serving
//! as the storage substrate of the b_eff_io reproduction.
//!
//! The simulated filesystem ([`Pfs`]) models the mechanisms the paper's
//! evaluation hinges on: round-robin **striping** over I/O servers,
//! per-request **software overhead**, per-client **injection links**, a
//! write-back **filesystem cache** with drain throttling and
//! LRU-by-budget residency, and **read-modify-write penalties** for
//! non-wellformed (unaligned) accesses. Every operation is priced in
//! virtual time; contention is expressed through next-free-time
//! reservation on servers and client links.
//!
//! [`LocalDisk`] is the real-mode twin: the same MPI-IO layer can run
//! against actual host files with wall-clock timing.

pub mod cache;
pub mod config;
pub mod file;
pub mod fs;
pub mod localdisk;
pub mod server;
pub mod stripe;

pub use cache::{Cache, CACHE_BLOCK};
pub use config::PfsConfig;
pub use file::FsFile;
pub use fs::{DataRef, Pfs};
pub use localdisk::{LocalDisk, LocalFile};
pub use server::Server;
pub use stripe::{per_server_bytes, split as stripe_split, Extent};
