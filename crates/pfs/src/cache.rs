//! The filesystem write-back cache model.
//!
//! Mechanisms (each one reproduces a phenomenon the paper discusses in
//! §5.4):
//!
//! * **write-behind**: writes are absorbed at memory speed while the
//!   cache has room; dirty data drains to disk at the aggregate server
//!   bandwidth in the background. A benchmark whose file fits in the
//!   cache therefore reports bandwidths above disk speed — the NEC
//!   SX-5 anecdote (cached results above hardware peak).
//! * **admission throttling**: when a write does not fit, it stalls
//!   until drain frees room, so sustained writes asymptote to disk
//!   bandwidth.
//! * **read caching with LRU-by-budget**: a read hits the cache if the
//!   bytes were accessed within the last `cache_bytes` of unique cache
//!   traffic (a clock approximation of LRU). Short runs (T = 10 min)
//!   re-read cached data; long runs (T = 30 min) do not — Fig. 3's
//!   T-dependence.
//! * **`sync` waits for drain** — the `MPI_File_sync` at the end of
//!   every write pattern.

use crate::config::PfsConfig;
use beff_netsim::{Secs, MB};
use beff_sync::Mutex;

/// Cache block granularity for hit/miss bookkeeping.
pub const CACHE_BLOCK: u64 = 64 * 1024;

#[derive(Debug)]
struct State {
    /// Dirty bytes not yet on disk.
    dirty: f64,
    /// Virtual time of the last dirty-accounting update.
    last: Secs,
    /// Cumulative unique bytes that have entered the cache (LRU clock).
    cum: u64,
}

/// Shared write-back cache of one filesystem.
#[derive(Debug)]
pub struct Cache {
    capacity: f64,
    cache_byte_time: Secs,
    drain_rate: f64, // bytes/sec, healthy servers
    /// Multiplier on `drain_rate`: the drain goes *through* the
    /// servers, so degrading them (fault injection) slows it too.
    drain_factor: Mutex<f64>,
    state: Mutex<State>,
}

impl Cache {
    pub fn new(cfg: &PfsConfig) -> Self {
        Self {
            capacity: cfg.cache_bytes as f64,
            cache_byte_time: 1.0 / (cfg.cache_mbps * MB as f64),
            drain_rate: cfg.drain_bytes_per_sec(),
            drain_factor: Mutex::new(1.0),
            state: Mutex::new(State { dirty: 0.0, last: 0.0, cum: 0 }),
        }
    }

    /// Current effective drain rate (bytes/sec).
    fn rate(&self) -> f64 {
        self.drain_rate * *self.drain_factor.lock()
    }

    /// Scale the drain bandwidth by `f` (e.g. `1 / slowdown` when the
    /// servers are degraded). `f = 1.0` restores the healthy rate.
    pub fn set_drain_factor(&self, f: f64) {
        assert!(f > 0.0 && f.is_finite(), "drain factor must be a positive scale");
        *self.drain_factor.lock() = f;
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0.0
    }

    fn drain_to(&self, s: &mut State, t: Secs) {
        if t > s.last {
            s.dirty = (s.dirty - (t - s.last) * self.rate()).max(0.0);
            s.last = t;
        }
    }

    /// Admit a write of `len` bytes at time `t`; returns the completion
    /// time. Stalls (in virtual time) until drain frees room.
    pub fn admit_write(&self, t: Secs, len: u64) -> Secs {
        let mut s = self.state.lock();
        self.drain_to(&mut s, t);
        let len_f = len as f64;
        let free = self.capacity - s.dirty;
        let start = if len_f <= free {
            t
        } else {
            // wait until drain makes room (a huge request effectively
            // streams at drain rate)
            t + (len_f - free) / self.rate()
        };
        let done = start + len_f * self.cache_byte_time;
        self.drain_to(&mut s, done);
        s.dirty = (s.dirty + len_f).min(self.capacity.max(len_f));
        s.last = s.last.max(done);
        done
    }

    /// Wait until all dirty data is on disk; returns completion time.
    pub fn sync(&self, t: Secs) -> Secs {
        let mut s = self.state.lock();
        self.drain_to(&mut s, t);
        let done = t + s.dirty / self.rate();
        s.dirty = 0.0;
        s.last = done;
        done
    }

    /// Account `len` freshly-cached bytes and return the LRU clock
    /// value to stamp them with (the clock value *before* this access:
    /// a block is evicted once `cache_bytes` further bytes have entered
    /// since it began caching).
    pub fn touch(&self, len: u64) -> u64 {
        let mut s = self.state.lock();
        let stamp = s.cum;
        s.cum += len;
        stamp
    }

    /// Is a block stamped `stamp` still resident?
    pub fn resident(&self, stamp: u64) -> bool {
        let s = self.state.lock();
        (s.cum - stamp) as f64 <= self.capacity
    }

    /// Time to move `len` bytes at cache (memory) speed.
    #[inline]
    pub fn transfer_time(&self, len: u64) -> Secs {
        len as f64 * self.cache_byte_time
    }

    /// Current dirty bytes (diagnostics / tests).
    pub fn dirty_at(&self, t: Secs) -> f64 {
        let mut s = self.state.lock();
        self.drain_to(&mut s, t);
        s.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity_mb: u64, cache_mbps: f64, servers: usize, server_mbps: f64) -> Cache {
        Cache::new(&PfsConfig {
            cache_bytes: capacity_mb * MB,
            cache_mbps,
            servers,
            server_mbps,
            ..PfsConfig::default()
        })
    }

    #[test]
    fn small_write_at_memory_speed() {
        let c = cache(100, 100.0, 1, 10.0);
        let done = c.admit_write(0.0, 10 * MB);
        assert!((done - 0.1).abs() < 1e-9, "done={done}");
    }

    #[test]
    fn oversized_write_throttles_to_drain_rate() {
        let c = cache(10, 1000.0, 1, 10.0); // 10 MB cache, 10 MB/s drain
        let done = c.admit_write(0.0, 110 * MB);
        // 100 MB over capacity at 10 MB/s drain = ~10 s stall
        assert!(done > 9.0, "done={done}");
    }

    #[test]
    fn drain_frees_room_over_time() {
        let c = cache(10, 1000.0, 1, 10.0);
        c.admit_write(0.0, 10 * MB); // cache now full
        // ten seconds later everything has drained
        assert!(c.dirty_at(20.0) == 0.0);
        let done = c.admit_write(20.0, MB);
        assert!(done - 20.0 < 0.01, "no stall expected, done={done}");
    }

    #[test]
    fn sync_waits_for_dirty() {
        let c = cache(100, 1000.0, 1, 10.0);
        c.admit_write(0.0, 50 * MB);
        let done = c.sync(0.1);
        // ~49 MB still dirty at t=0.1, at 10 MB/s → ~4.9 s
        assert!(done > 4.0 && done < 6.0, "done={done}");
        assert_eq!(c.dirty_at(done), 0.0);
    }

    #[test]
    fn residency_follows_lru_budget() {
        let c = cache(1, 1000.0, 1, 10.0); // 1 MB capacity
        let stamp = c.touch(512 * 1024);
        assert!(c.resident(stamp));
        c.touch(512 * 1024); // budget now exactly at capacity
        assert!(c.resident(stamp));
        c.touch(1); // one byte beyond
        assert!(!c.resident(stamp));
    }

    #[test]
    fn disabled_cache_reports_disabled() {
        let c = cache(0, 1000.0, 1, 10.0);
        assert!(!c.enabled());
    }

    #[test]
    fn sustained_writes_asymptote_to_drain_bandwidth() {
        let c = cache(8, 1000.0, 4, 25.0); // 100 MB/s drain
        let mut t = 0.0;
        let total = 1000 * MB;
        let chunk = 8 * MB;
        let mut written = 0;
        while written < total {
            t = c.admit_write(t, chunk);
            written += chunk;
        }
        t = c.sync(t);
        let mbps = total as f64 / MB as f64 / t;
        assert!((80.0..=110.0).contains(&mbps), "sustained {mbps} MB/s");
    }
}
