//! File objects of the simulated filesystem: metadata, optional sparse
//! content store, and per-block cache residency stamps.

use crate::cache::CACHE_BLOCK;
use beff_sync::Mutex;
// beff-analyze: allow(hash-order): per-block maps below are keyed-lookup-only, never iterated
use std::collections::HashMap;

#[derive(Debug, Default)]
struct Inner {
    size: u64,
    /// Sparse content, CACHE_BLOCK-sized blocks (store-data mode only).
    /// Hash maps are kept here (hot per-block path) because access is
    /// strictly by key: nothing ever iterates them, so hasher order
    /// cannot leak into results.
    // beff-analyze: allow(hash-order): keyed by block index, cleared wholesale, never iterated
    blocks: HashMap<u64, Box<[u8]>>,
    /// Cache residency: block index -> LRU stamp.
    // beff-analyze: allow(hash-order): keyed by block index, never iterated
    cached: HashMap<u64, u64>,
}

/// One simulated file.
#[derive(Debug, Default)]
pub struct FsFile {
    pub(crate) name: String,
    inner: Mutex<Inner>,
}

impl FsFile {
    pub fn new(name: String) -> Self {
        Self { name, inner: Mutex::new(Inner::default()) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn size(&self) -> u64 {
        self.inner.lock().size
    }

    /// Grow the file to at least `end` bytes.
    pub fn extend_to(&self, end: u64) {
        let mut g = self.inner.lock();
        if end > g.size {
            g.size = end;
        }
    }

    /// Truncate to zero and drop content (rewrite-from-scratch tests).
    pub fn truncate(&self) {
        let mut g = self.inner.lock();
        g.size = 0;
        g.blocks.clear();
        g.cached.clear();
    }

    /// Store `data` at `offset` (store-data mode).
    pub fn store(&self, offset: u64, data: &[u8]) {
        let mut g = self.inner.lock();
        let end = offset + data.len() as u64;
        if end > g.size {
            g.size = end;
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let block = abs / CACHE_BLOCK;
            let in_block = (abs % CACHE_BLOCK) as usize;
            let n = ((CACHE_BLOCK as usize) - in_block).min(data.len() - pos);
            let buf = g
                .blocks
                .entry(block)
                .or_insert_with(|| vec![0u8; CACHE_BLOCK as usize].into_boxed_slice());
            buf[in_block..in_block + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Load stored bytes at `offset` into `out`; unwritten regions read
    /// as zero.
    pub fn load(&self, offset: u64, out: &mut [u8]) {
        let g = self.inner.lock();
        let mut pos = 0usize;
        while pos < out.len() {
            let abs = offset + pos as u64;
            let block = abs / CACHE_BLOCK;
            let in_block = (abs % CACHE_BLOCK) as usize;
            let n = ((CACHE_BLOCK as usize) - in_block).min(out.len() - pos);
            match g.blocks.get(&block) {
                Some(buf) => out[pos..pos + n].copy_from_slice(&buf[in_block..in_block + n]),
                None => out[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Stamp the blocks overlapping `[offset, offset+len)` as cached.
    pub fn mark_cached(&self, offset: u64, len: u64, stamp: u64) {
        if len == 0 {
            return;
        }
        let mut g = self.inner.lock();
        let first = offset / CACHE_BLOCK;
        let last = (offset + len - 1) / CACHE_BLOCK;
        for b in first..=last {
            g.cached.insert(b, stamp);
        }
    }

    /// How many bytes of `[offset, offset+len)` are in blocks whose
    /// stamp satisfies `resident` — plus the count of *new* bytes that
    /// will have to come from the servers.
    pub fn cached_split(
        &self,
        offset: u64,
        len: u64,
        resident: impl Fn(u64) -> bool,
    ) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let g = self.inner.lock();
        let first = offset / CACHE_BLOCK;
        let last = (offset + len - 1) / CACHE_BLOCK;
        let mut hit = 0u64;
        for b in first..=last {
            let bstart = b * CACHE_BLOCK;
            let bend = bstart + CACHE_BLOCK;
            let ov = bend.min(offset + len) - bstart.max(offset);
            if g.cached.get(&b).is_some_and(|&s| resident(s)) {
                hit += ov;
            }
        }
        (hit, len - hit)
    }

    /// The maximal contiguous sub-ranges of `[offset, offset+len)` that
    /// are *not* cache-resident (these must come from the servers).
    pub fn miss_runs(
        &self,
        offset: u64,
        len: u64,
        resident: impl Fn(u64) -> bool,
    ) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let g = self.inner.lock();
        let first = offset / CACHE_BLOCK;
        let last = (offset + len - 1) / CACHE_BLOCK;
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for b in first..=last {
            if g.cached.get(&b).is_some_and(|&s| resident(s)) {
                continue;
            }
            let bstart = b * CACHE_BLOCK;
            let bend = bstart + CACHE_BLOCK;
            let s = bstart.max(offset);
            let e = bend.min(offset + len);
            match runs.last_mut() {
                Some(r) if r.0 + r.1 == s => r.1 += e - s,
                _ => runs.push((s, e - s)),
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip_across_blocks() {
        let f = FsFile::new("x".into());
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        f.store(CACHE_BLOCK - 100, &data);
        let mut out = vec![0u8; data.len()];
        f.load(CACHE_BLOCK - 100, &mut out);
        assert_eq!(out, data);
        assert_eq!(f.size(), CACHE_BLOCK - 100 + 200_000);
    }

    #[test]
    fn unwritten_reads_zero() {
        let f = FsFile::new("x".into());
        f.store(0, b"abc");
        let mut out = [9u8; 6];
        f.load(1_000_000, &mut out);
        assert_eq!(out, [0u8; 6]);
    }

    #[test]
    fn cached_split_counts_overlap() {
        let f = FsFile::new("x".into());
        f.mark_cached(0, CACHE_BLOCK, 5);
        // second block not cached
        let (hit, miss) = f.cached_split(CACHE_BLOCK / 2, CACHE_BLOCK, |s| s == 5);
        assert_eq!(hit, CACHE_BLOCK / 2);
        assert_eq!(miss, CACHE_BLOCK / 2);
    }

    #[test]
    fn eviction_via_resident_predicate() {
        let f = FsFile::new("x".into());
        f.mark_cached(0, 10, 1);
        let (hit, miss) = f.cached_split(0, 10, |_| false);
        assert_eq!((hit, miss), (0, 10));
    }

    #[test]
    fn truncate_clears_everything() {
        let f = FsFile::new("x".into());
        f.store(0, b"data");
        f.mark_cached(0, 4, 1);
        f.truncate();
        assert_eq!(f.size(), 0);
        let (hit, _) = f.cached_split(0, 4, |_| true);
        assert_eq!(hit, 0);
    }

    #[test]
    fn extend_to_grows_monotonically() {
        let f = FsFile::new("x".into());
        f.extend_to(100);
        f.extend_to(50);
        assert_eq!(f.size(), 100);
    }
}

#[cfg(test)]
mod miss_run_tests {
    use super::*;

    #[test]
    fn all_miss_is_one_run() {
        let f = FsFile::new("x".into());
        assert_eq!(f.miss_runs(10, 100, |_| true), vec![(10, 100)]);
    }

    #[test]
    fn cached_middle_splits_runs() {
        let f = FsFile::new("x".into());
        f.mark_cached(CACHE_BLOCK, CACHE_BLOCK, 1); // block 1 cached
        let runs = f.miss_runs(0, 3 * CACHE_BLOCK, |s| s == 1);
        assert_eq!(runs, vec![(0, CACHE_BLOCK), (2 * CACHE_BLOCK, CACHE_BLOCK)]);
    }

    #[test]
    fn fully_cached_has_no_runs() {
        let f = FsFile::new("x".into());
        f.mark_cached(0, 4 * CACHE_BLOCK, 1);
        assert!(f.miss_runs(100, CACHE_BLOCK, |_| true).is_empty());
    }

    #[test]
    fn runs_and_split_agree() {
        let f = FsFile::new("x".into());
        f.mark_cached(0, CACHE_BLOCK, 1);
        f.mark_cached(3 * CACHE_BLOCK, CACHE_BLOCK, 1);
        let (hit, miss) = f.cached_split(0, 5 * CACHE_BLOCK, |_| true);
        let runs = f.miss_runs(0, 5 * CACHE_BLOCK, |_| true);
        let run_total: u64 = runs.iter().map(|r| r.1).sum();
        assert_eq!(miss, run_total);
        assert_eq!(hit + miss, 5 * CACHE_BLOCK);
    }
}
