//! Striping math: map a contiguous byte range of a file onto the
//! per-server extents of a round-robin striped layout.

/// One contiguous piece of a request on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Server index the stripe lives on.
    pub server: usize,
    /// Offset within the *file* where this extent starts.
    pub file_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Split `[offset, offset+len)` into stripe-unit extents, round-robin
/// over `servers`. Extents are emitted in file order; consecutive
/// stripes on the *same* server (possible when `servers == 1`) are
/// merged.
pub fn split(offset: u64, len: u64, stripe_unit: u64, servers: usize) -> Vec<Extent> {
    assert!(stripe_unit > 0 && servers > 0);
    let mut out: Vec<Extent> = Vec::new();
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let stripe = pos / stripe_unit;
        let server = (stripe % servers as u64) as usize;
        let stripe_end = (stripe + 1) * stripe_unit;
        let piece = stripe_end.min(end) - pos;
        match out.last_mut() {
            Some(last)
                if last.server == server && last.file_offset + last.len == pos =>
            {
                last.len += piece;
            }
            _ => out.push(Extent { server, file_offset: pos, len: piece }),
        }
        pos += piece;
    }
    out
}

/// Total bytes each server moves for the range (index = server id).
pub fn per_server_bytes(offset: u64, len: u64, stripe_unit: u64, servers: usize) -> Vec<u64> {
    let mut bytes = vec![0u64; servers];
    for e in split(offset, len, stripe_unit, servers) {
        bytes[e.server] += e.len;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_single_extent() {
        let e = split(0, 100, 1024, 4);
        assert_eq!(e, vec![Extent { server: 0, file_offset: 0, len: 100 }]);
    }

    #[test]
    fn crosses_stripe_boundary() {
        let e = split(1000, 100, 1024, 4);
        assert_eq!(
            e,
            vec![
                Extent { server: 0, file_offset: 1000, len: 24 },
                Extent { server: 1, file_offset: 1024, len: 76 },
            ]
        );
    }

    #[test]
    fn round_robin_wraps() {
        let e = split(0, 4096, 1024, 2);
        let servers: Vec<usize> = e.iter().map(|x| x.server).collect();
        assert_eq!(servers, vec![0, 1, 0, 1]);
    }

    #[test]
    fn one_server_merges_contiguous() {
        let e = split(0, 10 * 1024, 1024, 1);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].len, 10 * 1024);
    }

    #[test]
    fn coverage_is_exact_and_ordered() {
        let (off, len, su, s) = (777u64, 123_456u64, 4096u64, 5usize);
        let ex = split(off, len, su, s);
        let mut pos = off;
        for e in &ex {
            assert_eq!(e.file_offset, pos, "gap or overlap at {pos}");
            pos += e.len;
        }
        assert_eq!(pos, off + len);
    }

    #[test]
    fn per_server_bytes_sums_to_len() {
        let b = per_server_bytes(100, 1_000_000, 65536, 7);
        assert_eq!(b.iter().sum::<u64>(), 1_000_000);
        // balanced to within one stripe unit
        let max = *b.iter().max().unwrap();
        let min = *b.iter().min().unwrap();
        assert!(max - min <= 2 * 65536, "{b:?}");
    }

    #[test]
    fn zero_len_is_empty() {
        assert!(split(50, 0, 1024, 3).is_empty());
    }
}
