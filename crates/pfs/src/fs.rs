//! The simulated parallel filesystem: ties together striping, servers,
//! the write-back cache, and per-client injection links, and prices
//! every operation in virtual time.
//!
//! Cost structure of a write (read is symmetric):
//!
//! 1. per-call client software overhead (`client_request_overhead`) —
//!    this is what caps 1 kB-chunk patterns on every system in Fig. 4;
//! 2. client injection link occupancy (`len / client_mbps`) — this is
//!    what makes b_eff_io scale with the number of SP nodes in Fig. 3;
//! 3. non-wellformed penalties: a write whose boundaries are not
//!    `disk_block`-aligned stages partial blocks (write amplification),
//!    and *rewriting* interior data unaligned additionally stalls on a
//!    synchronous block fetch (read-modify-write);
//! 4. the cache absorbs what fits (memory speed) and throttles the rest
//!    to the aggregate server drain bandwidth — this is what makes the
//!    T3E's I/O a "global resource" that 8 clients already saturate;
//! 5. without a cache, extents go to the striped servers directly, each
//!    paying `server_request_overhead` (seek) per extent.
//!
//! Consistency note: reads return bytes another client wrote only if
//! the read is ordered after the write by MPI synchronization (barrier,
//! sync, collective). That is exactly the MPI-IO consistency model, and
//! the b_eff_io access phases respect it.

use crate::cache::Cache;
use crate::config::PfsConfig;
use crate::file::FsFile;
use crate::server::Server;
use crate::stripe;
use beff_netsim::{Resource, Secs, MB};
use beff_sync::{Mutex, Rank};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lock-hierarchy position of the filesystem name table (DESIGN.md §8).
static FILES_RANK: Rank = Rank::new(60, "pfs.files");

/// Payload of a write: real bytes (store-data mode) or just a length.
#[derive(Debug, Clone, Copy)]
pub enum DataRef<'a> {
    Bytes(&'a [u8]),
    Len(u64),
}

impl DataRef<'_> {
    #[inline]
    pub fn len(&self) -> u64 {
        match self {
            DataRef::Bytes(b) => b.len() as u64,
            DataRef::Len(n) => *n,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The filesystem.
pub struct Pfs {
    cfg: PfsConfig,
    servers: Vec<Server>,
    clients: Vec<Resource>,
    /// Shared I/O channel: aggregate ceiling for all client traffic.
    channel: Resource,
    channel_byte_time: Secs,
    cache: Cache,
    files: Mutex<BTreeMap<String, Arc<FsFile>>>,
    client_byte_time: Secs,
}

impl Pfs {
    pub fn new(cfg: PfsConfig) -> Self {
        assert!(cfg.servers > 0 && cfg.clients > 0);
        assert!(cfg.stripe_unit > 0 && cfg.disk_block > 0);
        let servers = (0..cfg.servers)
            .map(|_| Server::new(cfg.server_request_overhead, cfg.server_mbps))
            .collect();
        let clients = (0..cfg.clients).map(|_| Resource::new()).collect();
        let cache = Cache::new(&cfg);
        let client_byte_time = 1.0 / (cfg.client_mbps * MB as f64);
        let channel_byte_time = 1.0 / (cfg.aggregate_mbps * MB as f64);
        Self {
            cfg,
            servers,
            clients,
            channel: Resource::new(),
            channel_byte_time,
            cache,
            files: Mutex::ranked(&FILES_RANK, BTreeMap::new()),
            client_byte_time,
        }
    }

    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Open (creating if needed); returns the file and the completion
    /// time of the open itself.
    pub fn open(&self, path: &str, t: Secs) -> (Arc<FsFile>, Secs) {
        let mut files = self.files.lock();
        let f = files
            .entry(path.to_string())
            .or_insert_with(|| Arc::new(FsFile::new(path.to_string())))
            .clone();
        (f, t + self.cfg.open_cost)
    }

    /// Close cost.
    pub fn close(&self, t: Secs) -> Secs {
        t + self.cfg.close_cost
    }

    /// Remove a file.
    pub fn unlink(&self, path: &str) {
        self.files.lock().remove(path);
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    /// Degrade server `i` (failure injection).
    pub fn set_server_speed_factor(&self, i: usize, f: f64) {
        self.servers[i].set_speed_factor(f);
    }

    /// Degrade *every* I/O server by `slowdown` (>= 1.0): the fault
    /// layer's `io_slowdown` maps here as speed factor `1 / slowdown`.
    /// The write-back cache drains through the same servers, so its
    /// drain bandwidth degrades by the same factor.
    pub fn degrade_servers(&self, slowdown: f64) {
        assert!(slowdown >= 1.0, "slowdown is a multiplier on service time");
        for s in &self.servers {
            s.set_speed_factor(1.0 / slowdown);
        }
        self.cache.set_drain_factor(1.0 / slowdown);
    }

    /// Enable the disk seek model on every server (0.0 disables; the
    /// calibrated machine defaults leave it off).
    pub fn set_seek_overhead(&self, seek: Secs) {
        for s in &self.servers {
            s.set_seek_overhead(seek);
        }
    }

    fn client_inject(&self, client: usize, t: Secs, len: u64) -> Secs {
        let t0 = t + self.cfg.client_request_overhead;
        let t1 = self.clients[client].reserve_finish(t0, len as f64 * self.client_byte_time);
        // all traffic shares the I/O channel
        self.channel.reserve_finish(t1 - len as f64 * self.client_byte_time,
            len as f64 * self.channel_byte_time).max(t1)
    }

    /// Extra bytes staged for unaligned boundaries (write amplification)
    /// and whether an interior rewrite forces a synchronous block fetch.
    fn boundary_penalties(&self, f: &FsFile, offset: u64, len: u64) -> (u64, u64) {
        let bs = self.cfg.disk_block;
        let size_before = f.size();
        let mut amplified = 0u64;
        let mut rmw_fetches = 0u64;
        for b in [offset, offset + len] {
            if b % bs != 0 {
                amplified += bs;
                if b < size_before {
                    rmw_fetches += 1;
                }
            }
        }
        (amplified, rmw_fetches)
    }

    fn server_of(&self, offset: u64) -> usize {
        ((offset / self.cfg.stripe_unit) % self.cfg.servers as u64) as usize
    }

    /// Write `data` at `offset`; returns the completion time.
    pub fn write(&self, client: usize, f: &FsFile, offset: u64, data: DataRef<'_>, t: Secs) -> Secs {
        let len = data.len();
        if len == 0 {
            return t;
        }
        let mut t1 = self.client_inject(client, t, len);

        let (amplified, rmw_fetches) = self.boundary_penalties(f, offset, len);
        if rmw_fetches > 0 {
            // synchronous partial-block fetch before the write can land
            let done = self.servers[self.server_of(offset)]
                .request(t1, rmw_fetches * self.cfg.disk_block);
            t1 = t1.max(done);
        }

        let done = if self.cache.enabled() {
            let d = self.cache.admit_write(t1, len + amplified);
            let stamp = self.cache.touch(len);
            f.mark_cached(offset, len, stamp);
            d
        } else {
            // One scatter-gather request per involved server: servers
            // coalesce the stripes of a single contiguous client call.
            let mut finish = t1;
            let mut starts = vec![u64::MAX; self.cfg.servers];
            let mut per_server = vec![0u64; self.cfg.servers];
            for e in stripe::split(offset, len + amplified, self.cfg.stripe_unit, self.cfg.servers) {
                per_server[e.server] += e.len;
                starts[e.server] = starts[e.server].min(e.file_offset);
            }
            for (s, &bytes) in per_server.iter().enumerate() {
                if bytes > 0 {
                    finish =
                        finish.max(self.servers[s].request_at(t1, bytes, Some(starts[s])));
                }
            }
            finish
        };

        if self.cfg.store_data {
            if let DataRef::Bytes(b) = data {
                f.store(offset, b);
            }
        }
        f.extend_to(offset + len);
        done
    }

    /// Read up to `len` bytes at `offset` (clamped at EOF) into `out`
    /// when present; returns `(bytes_read, completion_time)`.
    pub fn read(
        &self,
        client: usize,
        f: &FsFile,
        offset: u64,
        len: u64,
        out: Option<&mut [u8]>,
        t: Secs,
    ) -> (u64, Secs) {
        let avail = f.size().saturating_sub(offset);
        let len = len.min(avail);
        if len == 0 {
            return (0, t + self.cfg.client_request_overhead);
        }
        let t1 = self.client_inject(client, t, len);

        let (runs, hit_bytes) = if self.cache.enabled() {
            let runs = f.miss_runs(offset, len, |s| self.cache.resident(s));
            let miss: u64 = runs.iter().map(|r| r.1).sum();
            (runs, len - miss)
        } else {
            (vec![(offset, len)], 0)
        };

        let mut finish = t1 + self.cache.transfer_time(hit_bytes);
        let bs = self.cfg.disk_block;
        for (roff, rlen) in &runs {
            // read amplification at unaligned run boundaries
            let mut extra = 0u64;
            if roff % bs != 0 {
                extra += bs;
            }
            if (roff + rlen) % bs != 0 {
                extra += bs;
            }
            let mut starts = vec![u64::MAX; self.cfg.servers];
            let mut per_server = vec![0u64; self.cfg.servers];
            for e in stripe::split(*roff, rlen + extra, self.cfg.stripe_unit, self.cfg.servers) {
                per_server[e.server] += e.len;
                starts[e.server] = starts[e.server].min(e.file_offset);
            }
            for (s, &bytes) in per_server.iter().enumerate() {
                if bytes > 0 {
                    finish =
                        finish.max(self.servers[s].request_at(t1, bytes, Some(starts[s])));
                }
            }
        }

        if self.cache.enabled() {
            let miss: u64 = runs.iter().map(|r| r.1).sum();
            if miss > 0 {
                let stamp = self.cache.touch(miss);
                for (roff, rlen) in &runs {
                    f.mark_cached(*roff, *rlen, stamp);
                }
            }
        }

        if self.cfg.store_data {
            if let Some(buf) = out {
                let n = len as usize;
                assert!(buf.len() >= n, "read buffer too small");
                f.load(offset, &mut buf[..n]);
            }
        }
        (len, finish)
    }

    /// Flush all dirty cached data to disk (`MPI_File_sync` backend).
    pub fn sync(&self, t: Secs) -> Secs {
        self.cache.sync(t)
    }

    /// Direct cache access (diagnostics / tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs(cfg: PfsConfig) -> Pfs {
        Pfs::new(cfg)
    }

    fn base_cfg() -> PfsConfig {
        PfsConfig {
            clients: 4,
            servers: 4,
            stripe_unit: 64 * 1024,
            disk_block: 16 * 1024,
            server_request_overhead: 1e-3,
            server_mbps: 25.0,
            client_request_overhead: 100e-6,
            client_mbps: 200.0,
            aggregate_mbps: 10_000.0,
            cache_bytes: 0,
            cache_mbps: 400.0,
            open_cost: 0.0,
            close_cost: 0.0,
            store_data: true,
        }
    }

    #[test]
    fn open_is_idempotent() {
        let p = pfs(base_cfg());
        let (a, _) = p.open("f", 0.0);
        let (b, _) = p.open("f", 0.0);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(p.exists("f"));
        p.unlink("f");
        assert!(!p.exists("f"));
    }

    #[test]
    fn write_then_read_roundtrips_data() {
        let p = pfs(base_cfg());
        let (f, t) = p.open("f", 0.0);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
        let t = p.write(0, &f, 0, DataRef::Bytes(&data), t);
        let mut out = vec![0u8; data.len()];
        let (n, _t2) = p.read(1, &f, 0, data.len() as u64, Some(&mut out), t);
        assert_eq!(n, data.len() as u64);
        assert_eq!(out, data);
    }

    #[test]
    fn read_clamps_at_eof() {
        let p = pfs(base_cfg());
        let (f, t) = p.open("f", 0.0);
        let t = p.write(0, &f, 0, DataRef::Len(1000), t);
        let (n, _) = p.read(0, &f, 500, 10_000, None, t);
        assert_eq!(n, 500);
        let (n, _) = p.read(0, &f, 5000, 10, None, t);
        assert_eq!(n, 0);
    }

    #[test]
    fn large_write_is_striped_across_servers() {
        // 4 servers at 25 MB/s: a 100 MB write should take ~1 s, not 4.
        let p = pfs(base_cfg());
        let (f, _) = p.open("f", 0.0);
        let done = p.write(0, &f, 0, DataRef::Len(100 * MB), 0.0);
        assert!(done > 0.8 && done < 1.6, "done={done}");
    }

    #[test]
    fn single_server_is_four_times_slower() {
        let cfg = PfsConfig { servers: 1, ..base_cfg() };
        let p = pfs(cfg);
        let (f, _) = p.open("f", 0.0);
        let done = p.write(0, &f, 0, DataRef::Len(100 * MB), 0.0);
        assert!(done > 3.5 && done < 5.0, "done={done}");
    }

    #[test]
    fn per_request_overhead_dominates_small_chunks() {
        // 1 kB chunks, 1 ms server overhead and 0.1 ms client overhead:
        // bandwidth must collapse vs 1 MB chunks.
        let p = pfs(base_cfg());
        let (f, _) = p.open("f", 0.0);
        let mut t = 0.0;
        let mut off = 0u64;
        for _ in 0..100 {
            t = p.write(0, &f, off, DataRef::Len(1024), t);
            off += 1024;
        }
        let small_bw = (100.0 * 1024.0) / t / MB as f64;

        let p2 = pfs(base_cfg());
        let (f2, _) = p2.open("f", 0.0);
        let mut t2 = 0.0;
        let mut off2 = 0u64;
        for _ in 0..100 {
            t2 = p2.write(0, &f2, off2, DataRef::Len(MB), t2);
            off2 += MB;
        }
        let big_bw = (100.0 * MB as f64) / t2 / MB as f64;
        assert!(big_bw > 20.0 * small_bw, "big={big_bw} small={small_bw}");
    }

    #[test]
    fn cache_makes_rewrite_and_read_fast_until_it_spills() {
        let cfg = PfsConfig { cache_bytes: 64 * MB, ..base_cfg() };
        let p = pfs(cfg);
        let (f, _) = p.open("f", 0.0);
        // 16 MB fits in cache: client link (0.08 s) + memory-speed
        // admit (0.04 s) — far below the ~0.64 s disk would take
        let done = p.write(0, &f, 0, DataRef::Len(16 * MB), 0.0);
        assert!(done < 0.2, "cached write done={done}");
        // read it back: cache hit, also fast
        let (_, rdone) = p.read(0, &f, 0, 16 * MB, None, done);
        assert!(rdone - done < 0.2, "cached read {}", rdone - done);
        // sync waits until all 16 MB are on disk; at 100 MB/s aggregate
        // drain the data cannot be durable before t = 0.16 s
        let sdone = p.sync(rdone);
        assert!(sdone >= rdone, "sync never completes early");
        assert!(sdone >= 16.0 / 100.0, "durable no earlier than drain allows: {sdone}");
        assert_eq!(p.cache().dirty_at(sdone), 0.0);
    }

    #[test]
    fn uncached_read_is_disk_speed() {
        let cfg = PfsConfig { cache_bytes: 8 * MB, ..base_cfg() };
        let p = pfs(cfg);
        let (f, _) = p.open("f", 0.0);
        // write 64 MB: far beyond cache, so most of it is not resident
        let t = p.write(0, &f, 0, DataRef::Len(64 * MB), 0.0);
        let t = p.sync(t);
        let (_, done) = p.read(0, &f, 0, 32 * MB, None, t);
        let bw = 32.0 / (done - t);
        assert!(bw < 150.0, "read must not exceed disk+overlap speeds: {bw} MB/s");
    }

    #[test]
    fn unaligned_interior_rewrite_pays_rmw() {
        let p = pfs(base_cfg());
        let (f, _) = p.open("f", 0.0);
        let t = p.write(0, &f, 0, DataRef::Len(MB), 0.0);
        // aligned rewrite of 32 kB
        let a0 = t;
        let a1 = p.write(0, &f, 0, DataRef::Len(32 * 1024), a0);
        // unaligned rewrite of the same size
        let b1 = p.write(0, &f, 8 + 64 * 1024, DataRef::Len(32 * 1024), a1);
        let aligned_cost = a1 - a0;
        let unaligned_cost = b1 - a1;
        assert!(
            unaligned_cost > 1.5 * aligned_cost,
            "aligned={aligned_cost} unaligned={unaligned_cost}"
        );
    }

    #[test]
    fn degraded_server_slows_striped_write() {
        let p = pfs(base_cfg());
        let (f, _) = p.open("f", 0.0);
        let healthy = p.write(0, &f, 0, DataRef::Len(64 * MB), 0.0);
        p.set_server_speed_factor(0, 0.1);
        let t1 = p.write(0, &f, 0, DataRef::Len(64 * MB), healthy) - healthy;
        assert!(t1 > 2.0 * healthy, "degraded write must straggle: {t1} vs {healthy}");
    }

    #[test]
    fn concurrent_clients_share_servers() {
        let p = Arc::new(pfs(base_cfg()));
        let mut finishes = Vec::new();
        std::thread::scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|c| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let (f, _) = p.open(&format!("f{c}"), 0.0);
                        p.write(c, &f, 0, DataRef::Len(25 * MB), 0.0)
                    })
                })
                .collect();
            for h in hs {
                finishes.push(h.join().unwrap());
            }
        });
        // 4 clients x 25 MB over 100 MB/s aggregate ≈ 1 s for the last
        let max = finishes.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.8, "servers must be shared: {finishes:?}");
    }

    #[test]
    fn zero_length_ops_are_cheap_and_safe() {
        let p = pfs(base_cfg());
        let (f, t) = p.open("f", 0.0);
        assert_eq!(p.write(0, &f, 0, DataRef::Len(0), t), t);
        let (n, _) = p.read(0, &f, 0, 0, None, t);
        assert_eq!(n, 0);
    }
}
