//! # beff-core
//!
//! The paper's primary contribution: the **effective bandwidth
//! benchmark** ([`beff`]) and the **effective I/O bandwidth benchmark**
//! ([`beffio`]), plus the balance factor ([`balance`]).
//!
//! Both benchmarks are written against the `beff-mpi` communicator and
//! the `beff-mpiio` file API, so the same code runs on the real engine
//! (host threads, wall clock, real files) and on simulated machine
//! models in virtual time.

pub mod balance;
pub mod beff;
pub mod beffio;
pub mod logavg;

pub use balance::Balance;
pub use beff::{run_beff, BeffConfig, BeffResult};
pub use beffio::{run_beff_io, BeffIoConfig, BeffIoResult};
