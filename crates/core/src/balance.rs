//! The balance factor (paper §2.1, Fig. 1): the ratio of the effective
//! communication bandwidth to the Linpack floating-point performance —
//! how many bytes per second a machine can move per flop it can
//! compute.

use beff_json::{Json, ToJson};

/// Balance factor of a system.
#[derive(Debug, Clone, Copy)]
pub struct Balance {
    /// b_eff in MByte/s.
    pub beff_mbps: f64,
    /// R_max (Linpack) in MFlop/s.
    pub rmax_mflops: f64,
}

impl ToJson for Balance {
    fn to_json(&self) -> Json {
        Json::object()
            .field("beff_mbps", &self.beff_mbps)
            .field("rmax_mflops", &self.rmax_mflops)
            .build()
    }
}

impl Balance {
    pub fn new(beff_mbps: f64, rmax_mflops: f64) -> Self {
        assert!(rmax_mflops > 0.0, "R_max must be positive");
        Self { beff_mbps, rmax_mflops }
    }

    /// The balance factor in bytes communicated per flop
    /// (MByte/s ÷ MFlop/s).
    pub fn factor(&self) -> f64 {
        self.beff_mbps / self.rmax_mflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_ratio() {
        let b = Balance::new(19_919.0, 450_000.0); // T3E-like numbers
        assert!((b.factor() - 19_919.0 / 450_000.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rmax_rejected() {
        Balance::new(1.0, 0.0);
    }
}
