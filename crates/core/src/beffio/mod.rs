//! The effective I/O bandwidth benchmark **b_eff_io** (paper §5).
//!
//! Five pattern types over the Table 2 chunk-size/time-unit grid, three
//! access methods (initial write / rewrite / read), time-driven
//! repetition with `T/3 · U/ΣU` budgets, segment-size derivation for
//! the segmented types, and the weighted averaging that produces the
//! single b_eff_io number:
//!
//! ```text
//! type value    = bytes / (t_close - t_open)
//! method value  = avg over types, scatter type double-weighted
//! b_eff_io      = 0.25·write + 0.25·rewrite + 0.5·read
//! ```

pub mod access;
pub mod patterns;
pub mod random;
pub mod result;
pub mod run;
pub mod schedule;
pub mod segment;

pub use access::{BeffIoConfig, Bufs, RunState};
pub use patterns::{all_patterns, mpart, sum_u, ChunkBase, IoPattern, PatternType, PATTERN_TYPES};
pub use result::{
    AccessMethod, BeffIoResult, MethodRun, PatternDetail, TypeRun, ACCESS_METHODS,
};
pub use random::{run_random_io, RandomIoConfig, RandomIoPoint, RandomIoResult};
pub use run::run_beff_io;
pub use schedule::{pattern_time, Termination, TimeLoop};
