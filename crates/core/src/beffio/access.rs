//! The per-pattern-type access drivers of b_eff_io.
//!
//! Layout bookkeeping: within one pattern type, each pattern appends
//! after the data of all previous patterns (the paper's footnote 1 —
//! "the alignment is implicitly defined by the data written by all
//! previous patterns in the same pattern type"). The *initial write*
//! defines the authoritative layout; rewrite and read follow it, capped
//! at the written repetition counts so they never run off the end of
//! the file.

use super::patterns::{all_patterns, IoPattern, PatternType};
use super::result::{AccessMethod, PatternDetail, TypeRun};
use super::schedule::{pattern_time, Termination, TimeLoop};
use beff_json::{Json, ToJson};
use beff_mpi::{Comm, ReduceOp};
use beff_mpiio::{AMode, FileView, Hints, IoWorld, MpiFile};
use beff_netsim::{Secs, MB};
use std::sync::Arc;

/// Configuration of a b_eff_io run.
#[derive(Debug, Clone)]
pub struct BeffIoConfig {
    /// Scheduled time T for the whole partition (paper: ≥ 900 s for
    /// official values; scaled down for CI).
    pub t_sched: Secs,
    /// Memory per node: determines M_PART = max(2 MB, mem/128).
    pub mem_per_node: u64,
    pub termination: Termination,
    pub hints: Hints,
    /// File name prefix on the storage backend.
    pub prefix: String,
    /// Verify read data against the written fill pattern (requires
    /// copy-data + store-data modes).
    pub verify: bool,
}

impl ToJson for BeffIoConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("t_sched", &self.t_sched)
            .field("mem_per_node", &self.mem_per_node)
            .field("termination", &self.termination)
            .field("hints", &self.hints)
            .field("prefix", &self.prefix)
            .field("verify", &self.verify)
            .build()
    }
}

impl BeffIoConfig {
    /// Paper-fidelity parameters (T = 15 minutes).
    pub fn paper(mem_per_node: u64) -> Self {
        Self {
            t_sched: 900.0,
            mem_per_node,
            termination: Termination::RootCheck,
            hints: Hints::default(),
            prefix: "beffio".into(),
            verify: false,
        }
    }

    /// Scaled-down schedule: same pattern table, small T.
    pub fn quick(mem_per_node: u64) -> Self {
        Self { t_sched: 6.0, ..Self::paper(mem_per_node) }
    }

    pub fn with_t(mut self, t: Secs) -> Self {
        self.t_sched = t;
        self
    }

    pub fn with_verify(mut self) -> Self {
        self.verify = true;
        self
    }
}

/// Bookkeeping shared across the three access methods.
#[derive(Debug, Clone)]
pub struct RunState {
    /// Local written repetitions, indexed by pattern id (0..=42).
    pub written: [u64; 43],
    /// Agreed (max over ranks) written repetitions, by pattern id.
    pub agreed: [u64; 43],
    /// Size-driven repetitions of the segmented types, per standard
    /// chunk-size row.
    pub seg_reps: [u64; 8],
    /// Segment size (multiple of 1 MB).
    pub segment: u64,
}

impl RunState {
    pub fn new() -> Self {
        Self { written: [0; 43], agreed: [0; 43], seg_reps: [1; 8], segment: MB }
    }
}

impl Default for RunState {
    fn default() -> Self {
        Self::new()
    }
}

/// Write/read scratch buffers (write side pre-filled with the rank's
/// fill byte for verification).
pub struct Bufs {
    pub w: Vec<u8>,
    pub r: Vec<u8>,
    pub fill: u8,
}

impl Bufs {
    pub fn new(rank: usize, max_call: u64) -> Self {
        let fill = (rank % 251) as u8 + 1;
        Self { w: vec![fill; max_call as usize], r: vec![0; max_call as usize], fill }
    }
}

fn method_amode(m: AccessMethod) -> AMode {
    match m {
        AccessMethod::InitialWrite => AMode::create_write(),
        AccessMethod::Rewrite => AMode::write_only(),
        AccessMethod::Read => AMode::read_only(),
    }
}

fn type_patterns(t: PatternType) -> Vec<IoPattern> {
    all_patterns().into_iter().filter(|p| p.ptype == t).collect()
}

fn max_u64(comm: &mut Comm, v: u64) -> u64 {
    comm.allreduce_scalar(v as f64, ReduceOp::Max) as u64
}

fn sum_u64(comm: &mut Comm, v: u64) -> u64 {
    comm.allreduce_scalar(v as f64, ReduceOp::Sum) as u64
}

fn max_f64(comm: &mut Comm, v: f64) -> f64 {
    comm.allreduce_scalar(v, ReduceOp::Max)
}

fn verify_buf(buf: &[u8], fill: u8, what: &str) {
    if let Some(pos) = buf.iter().position(|&b| b != fill) {
        panic!("data verification failed in {what}: byte {pos} is {} not {fill}", buf[pos]);
    }
}

/// Run one pattern type under one access method. Collective over
/// `comm`; `selfc` is this rank's size-1 communicator (type 2 opens).
#[allow(clippy::too_many_arguments)]
pub fn run_pattern_type(
    comm: &mut Comm,
    selfc: &mut Comm,
    io: &Arc<IoWorld>,
    cfg: &BeffIoConfig,
    method: AccessMethod,
    ptype: PatternType,
    state: &mut RunState,
    bufs: &mut Bufs,
) -> TypeRun {
    match ptype {
        PatternType::Scatter => run_scatter(comm, io, cfg, method, state, bufs),
        PatternType::Shared => run_shared(comm, io, cfg, method, state, bufs),
        PatternType::Separate => run_separate(comm, selfc, io, cfg, method, state, bufs),
        PatternType::Segmented | PatternType::SegColl => {
            run_segmented(comm, io, cfg, method, ptype, state, bufs)
        }
    }
}

/// Pattern type 0: strided collective access, scattering memory chunks
/// of L bytes into disk chunks of l bytes with one call.
fn run_scatter(
    comm: &mut Comm,
    io: &Arc<IoWorld>,
    cfg: &BeffIoConfig,
    method: AccessMethod,
    state: &mut RunState,
    bufs: &mut Bufs,
) -> TypeRun {
    let mpart = super::patterns::mpart(cfg.mem_per_node);
    let sum_u = super::patterns::sum_u();
    let n = comm.size() as u64;
    let rank = comm.rank() as u64;
    let path = format!("{}_t0", cfg.prefix);

    comm.barrier();
    let t_open = comm.now();
    let mut f = MpiFile::open(comm, io, &path, method_amode(method), cfg.hints)
        .expect("type 0 open");

    let mut base = 0u64;
    let mut details = Vec::new();
    let mut total_bytes = 0u64;
    for p in type_patterns(PatternType::Scatter) {
        let l = p.l(mpart);
        let call = p.call_bytes(mpart) as usize;
        f.set_view(FileView::Strided { disp: base + rank * l, block: l, stride: n * l });
        let budget = pattern_time(cfg.t_sched, p.u, sum_u);
        let cap = if method == AccessMethod::InitialWrite {
            u64::MAX
        } else {
            state.agreed[p.id].max(1)
        };
        comm.barrier();
        let p_t0 = comm.now();
        let mut lp =
            TimeLoop::new(comm, budget, true, cfg.termination).with_max_iters(cap);
        while lp.next(comm) {
            if method.is_write() {
                f.write_all(comm, &bufs.w[..call]);
            } else {
                f.read_all(comm, &mut bufs.r[..call]);
                if cfg.verify {
                    verify_buf(&bufs.r[..call], bufs.fill, "type 0 read_all");
                }
            }
        }
        if method.is_write() {
            f.sync(comm);
        }
        let reps = lp.iterations();
        if method == AccessMethod::InitialWrite {
            state.written[p.id] = reps;
        }
        let secs = max_f64(comm, comm.now() - p_t0);
        let bytes = sum_u64(comm, reps * call as u64);
        total_bytes += bytes;
        details.push(PatternDetail {
            id: p.id,
            chunk_label: p.chunk_label(),
            chunk_bytes: l,
            reps: max_u64(comm, reps),
            bytes,
            secs,
        });
        let layout_reps = if method == AccessMethod::InitialWrite {
            reps
        } else {
            state.agreed[p.id].max(1)
        };
        base += n * layout_reps * call as u64;
    }
    f.close(comm);
    let open_close_secs = max_f64(comm, comm.now() - t_open);
    TypeRun { ptype: PatternType::Scatter, open_close_secs, bytes: total_bytes, patterns: details }
}

/// Pattern type 1: collective access through the shared file pointer,
/// one call per disk chunk (`MPI_File_write_ordered`).
fn run_shared(
    comm: &mut Comm,
    io: &Arc<IoWorld>,
    cfg: &BeffIoConfig,
    method: AccessMethod,
    state: &mut RunState,
    bufs: &mut Bufs,
) -> TypeRun {
    let mpart = super::patterns::mpart(cfg.mem_per_node);
    let sum_u = super::patterns::sum_u();
    let n = comm.size() as u64;
    let path = format!("{}_t1", cfg.prefix);

    comm.barrier();
    let t_open = comm.now();
    let mut f = MpiFile::open(comm, io, &path, method_amode(method), cfg.hints)
        .expect("type 1 open");

    let mut base = 0u64;
    let mut details = Vec::new();
    let mut total_bytes = 0u64;
    for p in type_patterns(PatternType::Shared) {
        let l = p.l(mpart) as usize;
        // align the shared pointer to the write layout
        comm.barrier();
        if comm.rank() == 0 {
            f.seek_shared(base);
        }
        comm.barrier();
        let budget = pattern_time(cfg.t_sched, p.u, sum_u);
        let cap = if method == AccessMethod::InitialWrite {
            u64::MAX
        } else {
            state.agreed[p.id].max(1)
        };
        let p_t0 = comm.now();
        let mut lp =
            TimeLoop::new(comm, budget, true, cfg.termination).with_max_iters(cap);
        while lp.next(comm) {
            if method.is_write() {
                f.write_ordered(comm, &bufs.w[..l]);
            } else {
                f.read_ordered(comm, &mut bufs.r[..l]);
                if cfg.verify {
                    verify_buf(&bufs.r[..l], bufs.fill, "type 1 read_ordered");
                }
            }
        }
        if method.is_write() {
            f.sync(comm);
        }
        let reps = lp.iterations();
        if method == AccessMethod::InitialWrite {
            state.written[p.id] = reps;
        }
        let secs = max_f64(comm, comm.now() - p_t0);
        let bytes = sum_u64(comm, reps * l as u64);
        total_bytes += bytes;
        details.push(PatternDetail {
            id: p.id,
            chunk_label: p.chunk_label(),
            chunk_bytes: l as u64,
            reps: max_u64(comm, reps),
            bytes,
            secs,
        });
        let layout_reps = if method == AccessMethod::InitialWrite {
            reps
        } else {
            state.agreed[p.id].max(1)
        };
        base += n * layout_reps * l as u64;
    }
    f.close(comm);
    let open_close_secs = max_f64(comm, comm.now() - t_open);
    TypeRun { ptype: PatternType::Shared, open_close_secs, bytes: total_bytes, patterns: details }
}

/// Pattern type 2: noncollective access to one file per process.
#[allow(clippy::too_many_arguments)]
fn run_separate(
    comm: &mut Comm,
    selfc: &mut Comm,
    io: &Arc<IoWorld>,
    cfg: &BeffIoConfig,
    method: AccessMethod,
    state: &mut RunState,
    bufs: &mut Bufs,
) -> TypeRun {
    let mpart = super::patterns::mpart(cfg.mem_per_node);
    let sum_u = super::patterns::sum_u();
    let path = format!("{}_t2_r{}", cfg.prefix, comm.rank());

    comm.barrier();
    let t_open = comm.now();
    let mut f = MpiFile::open(selfc, io, &path, method_amode(method), cfg.hints)
        .expect("type 2 open");

    let mut pos = 0u64; // local layout position
    let mut details = Vec::new();
    let mut total_bytes = 0u64;
    for p in type_patterns(PatternType::Separate) {
        let l = p.l(mpart) as usize;
        f.seek(pos);
        let budget = pattern_time(cfg.t_sched, p.u, sum_u);
        let cap = if method == AccessMethod::InitialWrite {
            u64::MAX
        } else {
            state.written[p.id].max(1) // local cap: files differ per rank
        };
        let p_t0 = comm.now();
        let mut lp =
            TimeLoop::new(comm, budget, false, cfg.termination).with_max_iters(cap);
        while lp.next(comm) {
            if method.is_write() {
                f.write(comm, &bufs.w[..l]);
            } else {
                f.read(comm, &mut bufs.r[..l]);
                if cfg.verify {
                    verify_buf(&bufs.r[..l], bufs.fill, "type 2 read");
                }
            }
        }
        if method.is_write() {
            f.sync(comm);
        }
        let reps = lp.iterations();
        if method == AccessMethod::InitialWrite {
            state.written[p.id] = reps;
        }
        let secs = max_f64(comm, comm.now() - p_t0);
        let bytes = sum_u64(comm, reps * l as u64);
        total_bytes += bytes;
        details.push(PatternDetail {
            id: p.id,
            chunk_label: p.chunk_label(),
            chunk_bytes: l as u64,
            reps: max_u64(comm, reps),
            bytes,
            secs,
        });
        let layout_reps = if method == AccessMethod::InitialWrite {
            reps
        } else {
            state.written[p.id].max(1)
        };
        pos += layout_reps * l as u64;
    }
    f.close(selfc);
    let open_close_secs = max_f64(comm, comm.now() - t_open);
    TypeRun { ptype: PatternType::Separate, open_close_secs, bytes: total_bytes, patterns: details }
}

/// Pattern types 3 and 4: one file of per-rank segments; size-driven
/// repetitions computed from the measurements of types 0–2; type 3
/// uses noncollective calls, type 4 collective ones.
fn run_segmented(
    comm: &mut Comm,
    io: &Arc<IoWorld>,
    cfg: &BeffIoConfig,
    method: AccessMethod,
    ptype: PatternType,
    state: &mut RunState,
    bufs: &mut Bufs,
) -> TypeRun {
    let mpart = super::patterns::mpart(cfg.mem_per_node);
    let rank = comm.rank() as u64;
    let seg = state.segment;
    let collective = ptype == PatternType::SegColl;
    let path = format!("{}_t{}", cfg.prefix, ptype as usize);

    comm.barrier();
    let t_open = comm.now();
    let mut f =
        MpiFile::open(comm, io, &path, method_amode(method), cfg.hints).expect("segmented open");
    f.set_view(FileView::Contiguous { disp: rank * seg });

    let mut pos = 0u64; // position within the segment (same on all ranks)
    let mut details = Vec::new();
    let mut total_bytes = 0u64;
    for p in type_patterns(ptype) {
        let p_t0 = comm.now();
        let (reps, moved) = if p.fillup {
            // fill (or re-walk) the rest of the segment in 1 MB steps
            let mut moved = 0u64;
            let mut reps = 0u64;
            while pos + moved < seg {
                let chunk = (seg - pos - moved).min(MB) as usize;
                if method.is_write() {
                    f.write(comm, &bufs.w[..chunk]);
                } else {
                    f.read(comm, &mut bufs.r[..chunk]);
                    if cfg.verify {
                        verify_buf(&bufs.r[..chunk], bufs.fill, "segment fill-up read");
                    }
                }
                moved += chunk as u64;
                reps += 1;
            }
            (reps, moved)
        } else {
            let l = p.l(mpart) as usize;
            let reps = state.seg_reps[p.std_row()];
            for _ in 0..reps {
                if method.is_write() {
                    if collective {
                        f.write_all(comm, &bufs.w[..l]);
                    } else {
                        f.write(comm, &bufs.w[..l]);
                    }
                } else if collective {
                    f.read_all(comm, &mut bufs.r[..l]);
                    if cfg.verify {
                        verify_buf(&bufs.r[..l], bufs.fill, "type 4 read_all");
                    }
                } else {
                    f.read(comm, &mut bufs.r[..l]);
                    if cfg.verify {
                        verify_buf(&bufs.r[..l], bufs.fill, "type 3 read");
                    }
                }
            }
            (reps, reps * l as u64)
        };
        if method.is_write() {
            f.sync(comm);
        }
        if method == AccessMethod::InitialWrite {
            state.written[p.id] = reps;
        }
        let secs = max_f64(comm, comm.now() - p_t0);
        let bytes = sum_u64(comm, moved);
        total_bytes += bytes;
        details.push(PatternDetail {
            id: p.id,
            chunk_label: if p.fillup { "fill-up".into() } else { p.chunk_label() },
            chunk_bytes: if p.fillup { MB } else { p.l(mpart) },
            reps: max_u64(comm, reps),
            bytes,
            secs,
        });
        pos += moved;
    }
    assert!(pos <= seg, "segment overflow: pos={pos} seg={seg}");
    f.close(comm);
    let open_close_secs = max_f64(comm, comm.now() - t_open);
    TypeRun { ptype, open_close_secs, bytes: total_bytes, patterns: details }
}
