//! Random access patterns — the paper's §6 *future work*, implemented
//! as an extension study: "Although [Crandall et al.] stated that 'the
//! majority of the request patterns are sequential', we should examine
//! whether random access patterns can be included into the b_eff_io
//! benchmark."
//!
//! The study writes a file sequentially, then performs time-driven
//! random-offset accesses of several chunk sizes and reports
//! random-vs-sequential bandwidth ratios. Random *writes* stay within
//! each rank's own region (so the pattern is race-free and MPI-IO
//! consistency-clean); random *reads* roam the whole file.

use super::schedule::TimeLoop;
use beff_json::{Json, ToJson};
use beff_mpi::{Comm, ReduceOp};
use beff_mpiio::{AMode, Hints, IoWorld, MpiFile};
use beff_netsim::{Rng64, Secs, MB};
use std::sync::Arc;

/// Configuration of the random-access study.
#[derive(Debug, Clone)]
pub struct RandomIoConfig {
    /// Bytes of file region per rank.
    pub region_per_rank: u64,
    /// Chunk sizes to test.
    pub chunks: Vec<u64>,
    /// Time budget per (chunk, mode) measurement.
    pub time_per_point: Secs,
    /// RNG seed (same offsets on every run).
    pub seed: u64,
    pub prefix: String,
}

impl RandomIoConfig {
    pub fn quick() -> Self {
        Self {
            region_per_rank: 8 * MB,
            chunks: vec![1024, 32 * 1024, MB],
            time_per_point: 1.0,
            seed: 0x5EED,
            prefix: "randio".into(),
        }
    }
}

impl ToJson for RandomIoConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("region_per_rank", &self.region_per_rank)
            .field("chunks", &self.chunks)
            .field("time_per_point", &self.time_per_point)
            .field("seed", &self.seed)
            .field("prefix", &self.prefix)
            .build()
    }
}

/// One measured point of the study.
#[derive(Debug, Clone)]
pub struct RandomIoPoint {
    pub chunk: u64,
    /// Sequential read bandwidth, MB/s aggregate.
    pub seq_read_mbps: f64,
    /// Random read bandwidth.
    pub rand_read_mbps: f64,
    /// Random write bandwidth (within own region).
    pub rand_write_mbps: f64,
}

impl ToJson for RandomIoPoint {
    fn to_json(&self) -> Json {
        Json::object()
            .field("chunk", &self.chunk)
            .field("seq_read_mbps", &self.seq_read_mbps)
            .field("rand_read_mbps", &self.rand_read_mbps)
            .field("rand_write_mbps", &self.rand_write_mbps)
            .build()
    }
}

/// Results over all chunk sizes.
#[derive(Debug, Clone)]
pub struct RandomIoResult {
    pub nprocs: usize,
    pub points: Vec<RandomIoPoint>,
}

impl ToJson for RandomIoResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("nprocs", &self.nprocs)
            .field("points", &self.points)
            .build()
    }
}

impl RandomIoResult {
    /// Random-to-sequential read ratio at the smallest chunk — the
    /// headline number for "should random patterns join b_eff_io".
    pub fn small_chunk_penalty(&self) -> f64 {
        self.points
            .first()
            .map(|p| if p.seq_read_mbps > 0.0 { p.rand_read_mbps / p.seq_read_mbps } else { 0.0 })
            .unwrap_or(0.0)
    }
}

fn measure(
    comm: &mut Comm,
    f: &mut MpiFile,
    cfg: &RandomIoConfig,
    chunk: u64,
    mode: Mode,
    buf: &mut [u8],
) -> f64 {
    let n = comm.size() as u64;
    let region = cfg.region_per_rank;
    let total = n * region;
    let slots_global = total / chunk;
    let slots_local = region / chunk;
    let mut rng = Rng64::new(cfg.seed ^ (chunk << 8) ^ comm.rank() as u64);
    comm.barrier();
    let t0 = comm.now();
    let mut lp = TimeLoop::new(comm, cfg.time_per_point, false, super::schedule::Termination::RootCheck);
    let mut moved = 0u64;
    let mut seq_pos = 0u64;
    while lp.next(comm) {
        match mode {
            Mode::SeqRead => {
                let off = comm.rank() as u64 * region + seq_pos;
                f.read_at(comm, off, &mut buf[..chunk as usize]);
                seq_pos = (seq_pos + chunk) % region.saturating_sub(chunk).max(1);
            }
            Mode::RandRead => {
                let off = rng.below(slots_global.max(1)) * chunk;
                f.read_at(comm, off, &mut buf[..chunk as usize]);
            }
            Mode::RandWrite => {
                let off = comm.rank() as u64 * region + rng.below(slots_local.max(1)) * chunk;
                f.write_at(comm, off, &buf[..chunk as usize]);
            }
        }
        moved += chunk;
    }
    if mode == Mode::RandWrite {
        f.sync(comm);
    }
    let dt = comm.allreduce_scalar(comm.now() - t0, ReduceOp::Max).max(1e-12);
    let total_moved = comm.allreduce_scalar(moved as f64, ReduceOp::Sum);
    total_moved / MB as f64 / dt
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    SeqRead,
    RandRead,
    RandWrite,
}

/// Run the random-access study. Collective; every rank returns the same
/// (reduced) result.
pub fn run_random_io(comm: &mut Comm, io: &Arc<IoWorld>, cfg: &RandomIoConfig) -> RandomIoResult {
    let path = format!("{}_file", cfg.prefix);
    let region = cfg.region_per_rank;

    // lay the file down sequentially with large writes
    let mut f = MpiFile::open(comm, io, &path, AMode::read_write_create(), Hints::default())
        .expect("random-io open");
    let max_chunk = cfg.chunks.iter().copied().max().unwrap_or(MB).max(MB);
    let mut buf = vec![(comm.rank() % 251) as u8 + 1; max_chunk as usize];
    let mut pos = comm.rank() as u64 * region;
    let mut remaining = region;
    while remaining > 0 {
        let step = remaining.min(MB);
        f.write_at(comm, pos, &buf[..step as usize]);
        pos += step;
        remaining -= step;
    }
    f.sync(comm);
    comm.barrier();

    let mut points = Vec::new();
    for &chunk in &cfg.chunks {
        assert!(chunk <= region, "chunk {chunk} larger than region {region}");
        let seq = measure(comm, &mut f, cfg, chunk, Mode::SeqRead, &mut buf);
        let rr = measure(comm, &mut f, cfg, chunk, Mode::RandRead, &mut buf);
        let rw = measure(comm, &mut f, cfg, chunk, Mode::RandWrite, &mut buf);
        points.push(RandomIoPoint {
            chunk,
            seq_read_mbps: seq,
            rand_read_mbps: rr,
            rand_write_mbps: rw,
        });
    }
    f.close(comm);
    RandomIoResult { nprocs: comm.size(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_netsim::{MachineNet, NetParams, Topology};
    use beff_pfs::{Pfs, PfsConfig};

    fn setup(n: usize, cache_mb: u64) -> (World, Arc<IoWorld>) {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: n,
            store_data: false,
            cache_bytes: cache_mb * MB,
            ..PfsConfig::default()
        }));
        (World::sim(net), IoWorld::sim(pfs))
    }

    #[test]
    fn study_runs_and_reports_all_chunks() {
        let (w, io) = setup(2, 0);
        let cfg = RandomIoConfig { time_per_point: 0.2, ..RandomIoConfig::quick() };
        let rs = w.run(move |c| run_random_io(c, &io, &cfg));
        let r = &rs[0];
        assert_eq!(r.points.len(), 3);
        for p in &r.points {
            assert!(p.seq_read_mbps > 0.0, "{p:?}");
            assert!(p.rand_read_mbps > 0.0, "{p:?}");
            assert!(p.rand_write_mbps > 0.0, "{p:?}");
        }
        // all ranks agree
        assert!((rs[0].points[0].rand_read_mbps - rs[1].points[0].rand_read_mbps).abs() < 1e-9);
    }

    #[test]
    fn random_reads_do_not_beat_sequential_without_cache() {
        let (w, io) = setup(2, 0);
        let cfg = RandomIoConfig {
            time_per_point: 0.3,
            chunks: vec![32 * 1024],
            ..RandomIoConfig::quick()
        };
        let rs = w.run(move |c| run_random_io(c, &io, &cfg));
        let p = &rs[0].points[0];
        // uncached random access pays unaligned/uncoalesced costs; it
        // must not exceed sequential bandwidth by more than noise
        assert!(
            p.rand_read_mbps <= p.seq_read_mbps * 1.25,
            "rand {} vs seq {}",
            p.rand_read_mbps,
            p.seq_read_mbps
        );
    }

    #[test]
    fn penalty_metric_is_first_chunk_ratio() {
        let r = RandomIoResult {
            nprocs: 2,
            points: vec![RandomIoPoint {
                chunk: 1024,
                seq_read_mbps: 100.0,
                rand_read_mbps: 25.0,
                rand_write_mbps: 10.0,
            }],
        };
        assert!((r.small_chunk_penalty() - 0.25).abs() < 1e-12);
    }
}
