//! Segment-size computation for the segmented pattern types (3 and 4).
//!
//! Paper §5.4: "for each chunk size l, a repeating factor is calculated
//! from the measured repeating factors of the pattern types 0–2. The
//! segment size is calculated as the sum of the chunk sizes multiplied
//! by these repeating factors. The sum is rounded up to the next
//! multiple of 1 MB." (The paper also notes the two drawbacks of this
//! scheme — 1 MB alignment and 32-bit overflow — which we inherit
//! faithfully, minus the 32-bit limit.)

use super::access::RunState;
use super::patterns::{all_patterns, PatternType};
use beff_mpi::{Comm, ReduceOp};
use beff_netsim::MB;

/// Agree on written repetition counts (max over ranks) and derive the
/// size-driven repetitions and the segment size. Call after the types
/// 0–2 of the *initial write* completed.
pub fn compute_segment(comm: &mut Comm, state: &mut RunState, mpart: u64) {
    // one allreduce for all counters
    let flat: Vec<f64> = state.written.iter().map(|&w| w as f64).collect();
    let agreed = comm.allreduce_f64(&flat, ReduceOp::Max);
    for (a, v) in state.agreed.iter_mut().zip(&agreed) {
        *a = *v as u64;
    }

    // bytes each type moved per rank for each chunk-size row; the
    // segmented types replay the same volume with their own chunk size
    let ps = all_patterns();
    let mut sum = 0u64;
    for row in 0..8usize {
        let l_row = ps[25 + row].l(mpart); // type 3 row chunk size
        let mut max_bytes = 0u64;
        for p in &ps {
            let measured = matches!(
                p.ptype,
                PatternType::Scatter | PatternType::Shared | PatternType::Separate
            );
            if measured && p.std_row() == row {
                max_bytes = max_bytes.max(state.agreed[p.id] * p.call_bytes(mpart));
            }
        }
        state.seg_reps[row] = max_bytes.div_ceil(l_row).max(1);
        sum += state.seg_reps[row] * l_row;
    }
    state.segment = sum.div_ceil(MB) * MB;
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_netsim::{MachineNet, NetParams, Topology, KB};
    use std::sync::Arc;

    #[test]
    fn segment_is_mb_aligned_and_agreed() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default()));
        let states = World::sim(net).run(|c| {
            let mut st = RunState::new();
            // pretend the write phase measured some repetitions,
            // rank-dependent so the allreduce matters
            for id in 0..25 {
                st.written[id] = (id as u64 + 1) * (c.rank() as u64 + 1);
            }
            compute_segment(c, &mut st, 2 * MB);
            st
        });
        let a = &states[0];
        let b = &states[1];
        assert_eq!(a.segment, b.segment, "segment must be agreed");
        assert_eq!(a.seg_reps, b.seg_reps);
        assert_eq!(a.segment % MB, 0);
        // agreed counts are the max over ranks (rank 1 doubled them)
        assert_eq!(a.agreed[3], 8);
        // the segment holds all rows' data
        let ps = all_patterns();
        let total: u64 = (0..8).map(|row| a.seg_reps[row] * ps[25 + row].l(2 * MB)).sum();
        assert!(a.segment >= total);
        assert!(a.segment - total < MB);
    }

    #[test]
    fn scatter_volume_dominates_when_it_moved_more() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 1 }, NetParams::default()));
        let states = World::sim(net).run(|c| {
            let mut st = RunState::new();
            // pattern 5 (type 0, 1 kB chunks, 1024 per call): 3 reps
            st.written[5] = 3;
            st.written[13] = 10; // type 1, 1 kB: 10 x 1 kB only
            st.written[21] = 10; // type 2, 1 kB
            compute_segment(c, &mut st, 2 * MB);
            st
        });
        // pattern 5 is std_row 4 (the 1 kB slot): 3 x 1024 chunks
        assert_eq!(states[0].seg_reps[4], 3 * 1024);
    }

    #[test]
    fn zero_measurements_still_give_positive_reps() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 1 }, NetParams::default()));
        let states = World::sim(net).run(|c| {
            let mut st = RunState::new();
            compute_segment(c, &mut st, 2 * MB);
            st
        });
        assert!(states[0].seg_reps.iter().all(|&r| r >= 1));
        assert!(states[0].segment >= MB);
        // minimal segment: sum of one chunk per row, MB-rounded
        let ps = all_patterns();
        let min: u64 = (0..8).map(|row| ps[25 + row].l(2 * MB)).sum();
        assert_eq!(states[0].segment, min.div_ceil(MB) * MB);
    }

    #[test]
    fn kb_row_identity() {
        // guard: the 1 kB ladder slot is std_row 4
        let ps = all_patterns();
        assert_eq!(ps[25 + 4].l(2 * MB), KB);
        assert_eq!(ps[5].std_row(), 4);
    }
}
