//! b_eff_io result types and the weighted averaging of §5.1:
//! pattern-type value = bytes / (close − open); access-method value =
//! average of the five types with the scatter type double-weighted;
//! partition value = 25 % initial write + 25 % rewrite + 50 % read.

use super::patterns::PatternType;
use crate::logavg::weighted_mean;
use beff_json::{Json, ToJson};
use beff_netsim::{Secs, MB};

/// The three access methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMethod {
    InitialWrite,
    Rewrite,
    Read,
}

impl ToJson for AccessMethod {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                AccessMethod::InitialWrite => "InitialWrite",
                AccessMethod::Rewrite => "Rewrite",
                AccessMethod::Read => "Read",
            }
            .to_owned(),
        )
    }
}

pub const ACCESS_METHODS: [AccessMethod; 3] =
    [AccessMethod::InitialWrite, AccessMethod::Rewrite, AccessMethod::Read];

impl AccessMethod {
    pub fn name(&self) -> &'static str {
        match self {
            AccessMethod::InitialWrite => "initial write",
            AccessMethod::Rewrite => "rewrite",
            AccessMethod::Read => "read",
        }
    }

    pub fn is_write(&self) -> bool {
        !matches!(self, AccessMethod::Read)
    }

    /// Weight in the partition value.
    pub fn weight(&self) -> f64 {
        match self {
            AccessMethod::InitialWrite | AccessMethod::Rewrite => 0.25,
            AccessMethod::Read => 0.5,
        }
    }
}

/// Measured detail of one pattern (one Fig. 4 data point).
#[derive(Debug, Clone)]
pub struct PatternDetail {
    pub id: usize,
    pub chunk_label: String,
    pub chunk_bytes: u64,
    /// Repetitions (max over ranks).
    pub reps: u64,
    /// Bytes moved, summed over ranks.
    pub bytes: u64,
    /// Elapsed seconds (max over ranks).
    pub secs: Secs,
}

impl ToJson for PatternDetail {
    fn to_json(&self) -> Json {
        Json::object()
            .field("id", &self.id)
            .field("chunk_label", &self.chunk_label)
            .field("chunk_bytes", &self.chunk_bytes)
            .field("reps", &self.reps)
            .field("bytes", &self.bytes)
            .field("secs", &self.secs)
            .build()
    }
}

impl PatternDetail {
    pub fn mbps(&self) -> f64 {
        if self.secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / MB as f64 / self.secs
        }
    }
}

/// Results of one pattern type under one access method.
#[derive(Debug, Clone)]
pub struct TypeRun {
    pub ptype: PatternType,
    /// open-to-close wall time (max over ranks).
    pub open_close_secs: Secs,
    /// Total bytes over all ranks and patterns.
    pub bytes: u64,
    pub patterns: Vec<PatternDetail>,
}

impl ToJson for TypeRun {
    fn to_json(&self) -> Json {
        Json::object()
            .field("ptype", &self.ptype)
            .field("open_close_secs", &self.open_close_secs)
            .field("bytes", &self.bytes)
            .field("patterns", &self.patterns)
            .build()
    }
}

impl TypeRun {
    /// "total number of transferred bytes divided by the total amount
    /// of time from opening till closing the file".
    pub fn mbps(&self) -> f64 {
        if self.open_close_secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / MB as f64 / self.open_close_secs
        }
    }
}

/// One access method over all five types.
#[derive(Debug, Clone)]
pub struct MethodRun {
    pub method: AccessMethod,
    pub types: Vec<TypeRun>,
}

impl ToJson for MethodRun {
    fn to_json(&self) -> Json {
        Json::object()
            .field("method", &self.method)
            .field("types", &self.types)
            .build()
    }
}

impl MethodRun {
    /// Average of the pattern types, scatter double-weighted.
    pub fn value(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .types
            .iter()
            .map(|t| {
                let w = if t.ptype == PatternType::Scatter { 2.0 } else { 1.0 };
                (t.mbps(), w)
            })
            .collect();
        weighted_mean(&pairs)
    }
}

/// A complete b_eff_io run on one partition.
#[derive(Debug, Clone)]
pub struct BeffIoResult {
    pub nprocs: usize,
    /// Scheduled time T in seconds.
    pub t_sched: Secs,
    pub mpart: u64,
    /// Segment size used by the segmented types.
    pub segment: u64,
    pub methods: Vec<MethodRun>,
    /// The partition's b_eff_io value in MByte/s.
    pub beff_io: f64,
}

impl ToJson for BeffIoResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("nprocs", &self.nprocs)
            .field("t_sched", &self.t_sched)
            .field("mpart", &self.mpart)
            .field("segment", &self.segment)
            .field("methods", &self.methods)
            .field("beff_io", &self.beff_io)
            .build()
    }
}

impl BeffIoResult {
    pub fn assemble(
        nprocs: usize,
        t_sched: Secs,
        mpart: u64,
        segment: u64,
        methods: Vec<MethodRun>,
    ) -> Self {
        let pairs: Vec<(f64, f64)> =
            methods.iter().map(|m| (m.value(), m.method.weight())).collect();
        let beff_io = weighted_mean(&pairs);
        Self { nprocs, t_sched, mpart, segment, methods, beff_io }
    }

    /// Value of one access method (None if absent).
    pub fn method_value(&self, m: AccessMethod) -> Option<f64> {
        self.methods.iter().find(|r| r.method == m).map(|r| r.value())
    }

    /// The Fig. 4-style detail table: one row per (method, type,
    /// pattern) with its bandwidth.
    pub fn detail_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "b_eff_io detail: {} processes, T = {:.0} s, M_PART = {} B, segment = {} B",
            self.nprocs, self.t_sched, self.mpart, self.segment
        );
        for m in &self.methods {
            let _ = writeln!(s, "-- access method: {} (value {:.1} MB/s)", m.method.name(), m.value());
            for t in &m.types {
                let _ = writeln!(
                    s,
                    "   type {} [{}]: {:.1} MB/s over {:.2} s",
                    t.ptype as usize,
                    t.ptype.name(),
                    t.mbps(),
                    t.open_close_secs
                );
                for p in &t.patterns {
                    let _ = writeln!(
                        s,
                        "      #{:<2} {:<12} reps {:>6}  {:>12} B  {:>8.3} s  {:>9.2} MB/s",
                        p.id, p.chunk_label, p.reps, p.bytes, p.secs, p.mbps()
                    );
                }
            }
        }
        let _ = writeln!(s, "b_eff_io = {:.1} MB/s", self.beff_io);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trun(ptype: PatternType, bytes: u64, secs: f64) -> TypeRun {
        TypeRun { ptype, open_close_secs: secs, bytes, patterns: vec![] }
    }

    #[test]
    fn type_value_is_bytes_over_open_close() {
        let t = trun(PatternType::Shared, 100 * MB, 10.0);
        assert!((t.mbps() - 10.0).abs() < 1e-12);
        assert_eq!(trun(PatternType::Shared, 1, 0.0).mbps(), 0.0);
    }

    #[test]
    fn method_value_double_weights_scatter() {
        let m = MethodRun {
            method: AccessMethod::Read,
            types: vec![
                trun(PatternType::Scatter, 60 * MB, 1.0), // 60 MB/s, weight 2
                trun(PatternType::Shared, 30 * MB, 1.0),
                trun(PatternType::Separate, 30 * MB, 1.0),
                trun(PatternType::Segmented, 30 * MB, 1.0),
                trun(PatternType::SegColl, 30 * MB, 1.0),
            ],
        };
        // (2*60 + 30*4) / 6 = 40
        assert!((m.value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn partition_value_weights_methods_25_25_50() {
        let mk = |method, mbps: u64| MethodRun {
            method,
            types: vec![trun(PatternType::Shared, mbps * MB, 1.0)],
        };
        let r = BeffIoResult::assemble(
            4,
            900.0,
            2 * MB,
            MB,
            vec![
                mk(AccessMethod::InitialWrite, 100),
                mk(AccessMethod::Rewrite, 200),
                mk(AccessMethod::Read, 400),
            ],
        );
        assert!((r.beff_io - (0.25 * 100.0 + 0.25 * 200.0 + 0.5 * 400.0)).abs() < 1e-9);
        assert_eq!(r.method_value(AccessMethod::Read), Some(400.0));
    }

    #[test]
    fn pattern_detail_mbps() {
        let p = PatternDetail {
            id: 3,
            chunk_label: "1 MB".into(),
            chunk_bytes: MB,
            reps: 10,
            bytes: 50 * MB,
            secs: 5.0,
        };
        assert!((p.mbps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn detail_table_renders() {
        let r = BeffIoResult::assemble(2, 900.0, 2 * MB, MB, vec![]);
        let s = r.detail_table();
        assert!(s.contains("b_eff_io"));
    }
}
