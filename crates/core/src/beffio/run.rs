//! Top-level b_eff_io driver: three access methods × five pattern
//! types, with segment computation between types 2 and 3 of the
//! initial write.

use super::access::{run_pattern_type, BeffIoConfig, Bufs, RunState};
use super::patterns::{all_patterns, mpart, PatternType, PATTERN_TYPES};
use super::result::{AccessMethod, BeffIoResult, MethodRun, ACCESS_METHODS};
use super::segment::compute_segment;
use beff_mpi::Comm;
use beff_mpiio::IoWorld;
use std::sync::Arc;

/// Run the effective I/O bandwidth benchmark on `comm` against the
/// storage behind `io`. Collective; all ranks return the same result.
pub fn run_beff_io(comm: &mut Comm, io: &Arc<IoWorld>, cfg: &BeffIoConfig) -> BeffIoResult {
    let mp = mpart(cfg.mem_per_node);
    let max_call = all_patterns().iter().map(|p| p.call_bytes(mp)).max().expect("patterns");
    let mut bufs = Bufs::new(comm.rank(), max_call);
    let mut selfc = comm
        .split(Some(comm.rank() as u32), 0)
        .expect("self communicator");
    let mut state = RunState::new();

    let mut methods = Vec::with_capacity(3);
    for method in ACCESS_METHODS {
        let mut types = Vec::with_capacity(5);
        for ptype in PATTERN_TYPES {
            if method == AccessMethod::InitialWrite && ptype == PatternType::Segmented {
                // the segmented types are size-driven: derive their
                // repetition factors from what types 0-2 just measured
                compute_segment(comm, &mut state, mp);
            }
            types.push(run_pattern_type(
                comm, &mut selfc, io, cfg, method, ptype, &mut state, &mut bufs,
            ));
        }
        methods.push(MethodRun { method, types });
    }

    BeffIoResult::assemble(comm.size(), cfg.t_sched, mp, state.segment, methods)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_mpiio::Hints;
    use beff_netsim::{MachineNet, NetParams, Topology, MB};
    use beff_pfs::{Pfs, PfsConfig};

    fn setup(n: usize, store: bool) -> (World, Arc<IoWorld>) {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
        let pfs = Arc::new(Pfs::new(PfsConfig {
            clients: n,
            store_data: store,
            ..PfsConfig::default()
        }));
        (World::sim(net).copy_data(store), IoWorld::sim(pfs))
    }

    fn tiny_cfg() -> BeffIoConfig {
        // tiny T so CI stays fast; mem 256 MB -> M_PART = 2 MB
        BeffIoConfig::quick(256 * MB).with_t(1.5)
    }

    #[test]
    fn beff_io_completes_and_is_positive() {
        let (w, io) = setup(4, false);
        let cfg = tiny_cfg();
        let rs = w.run(move |c| run_beff_io(c, &io, &cfg));
        let r = &rs[0];
        assert!(r.beff_io > 0.0, "b_eff_io = {}", r.beff_io);
        assert_eq!(r.methods.len(), 3);
        for m in &r.methods {
            assert_eq!(m.types.len(), 5);
            for t in &m.types {
                assert!(t.bytes > 0, "{:?}/{:?} moved no bytes", m.method, t.ptype);
                assert!(t.open_close_secs > 0.0);
                let expect = match t.ptype {
                    PatternType::Scatter | PatternType::Segmented | PatternType::SegColl => 9,
                    PatternType::Shared | PatternType::Separate => 8,
                };
                assert_eq!(t.patterns.len(), expect, "{:?}", t.ptype);
            }
        }
        // all ranks agree on the single number
        for other in &rs[1..] {
            assert!((other.beff_io - r.beff_io).abs() < 1e-9);
        }
    }

    #[test]
    fn beff_io_with_data_verification() {
        // store_data + copy_data + verify: every read checks the fill
        let (w, io) = setup(2, true);
        let cfg = tiny_cfg().with_verify();
        let rs = w.run(move |c| run_beff_io(c, &io, &cfg));
        assert!(rs[0].beff_io > 0.0);
    }

    #[test]
    fn forced_two_phase_slows_segmented_collective() {
        // the paper's Fig. 4 SP anomaly: a naive collective that always
        // exchanges makes type 4 much slower than type 3
        let run = |force: bool| -> (f64, f64) {
            let (w, io) = setup(4, false);
            let mut cfg = tiny_cfg();
            cfg.hints = Hints { force_two_phase: force, ..Hints::default() };
            let rs = w.run(move |c| run_beff_io(c, &io, &cfg));
            let m = &rs[0].methods[0]; // initial write
            (m.types[3].mbps(), m.types[4].mbps())
        };
        let (t3_opt, t4_opt) = run(false);
        let (_t3_naive, t4_naive) = run(true);
        // optimized: type 4 is in the same league as type 3
        assert!(t4_opt > 0.3 * t3_opt, "optimized t4={t4_opt} t3={t3_opt}");
        // naive forced exchange costs real bandwidth
        assert!(t4_naive < t4_opt, "naive={t4_naive} opt={t4_opt}");
    }

    #[test]
    fn geometric_termination_also_completes() {
        let (w, io) = setup(2, false);
        let mut cfg = tiny_cfg();
        cfg.termination = super::super::schedule::Termination::Geometric;
        let rs = w.run(move |c| run_beff_io(c, &io, &cfg));
        assert!(rs[0].beff_io > 0.0);
    }

    #[test]
    fn detail_table_lists_all_43_slots() {
        let (w, io) = setup(2, false);
        let cfg = tiny_cfg();
        let rs = w.run(move |c| run_beff_io(c, &io, &cfg));
        let table = rs[0].detail_table();
        for id in [0, 8, 9, 16, 17, 24, 25, 33, 34, 42] {
            assert!(table.contains(&format!("#{id:<2}")), "missing pattern {id}\n{table}");
        }
    }
}
