//! The b_eff_io pattern table (paper Table 2 and Fig. 2): 43 pattern
//! slots across five pattern types, with chunk sizes, per-call memory
//! chunks, wellformed/non-wellformed variants and time units U
//! (ΣU = 64).

use beff_json::{Json, ToJson};
use beff_netsim::{KB, MB};

/// The five pattern types of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternType {
    /// (0) strided collective access, scattering large memory chunks to
    /// small disk chunks in one MPI-IO call.
    Scatter = 0,
    /// (1) strided collective access, one call per disk chunk, shared
    /// file pointers.
    Shared = 1,
    /// (2) noncollective access, one separate file per MPI process.
    Separate = 2,
    /// (3) like (2) but the individual files are segments of one file.
    Segmented = 3,
    /// (4) like (3) with collective routines.
    SegColl = 4,
}

pub const PATTERN_TYPES: [PatternType; 5] = [
    PatternType::Scatter,
    PatternType::Shared,
    PatternType::Separate,
    PatternType::Segmented,
    PatternType::SegColl,
];

impl ToJson for PatternType {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                PatternType::Scatter => "Scatter",
                PatternType::Shared => "Shared",
                PatternType::Separate => "Separate",
                PatternType::Segmented => "Segmented",
                PatternType::SegColl => "SegColl",
            }
            .to_owned(),
        )
    }
}

impl PatternType {
    pub fn name(&self) -> &'static str {
        match self {
            PatternType::Scatter => "scatter/collective",
            PatternType::Shared => "shared/collective",
            PatternType::Separate => "separate files/non-coll.",
            PatternType::Segmented => "segmented/non-coll.",
            PatternType::SegColl => "segmented/collective",
        }
    }

    /// Do this type's accesses use collective routines (termination must
    /// then be computed globally)?
    pub fn collective(&self) -> bool {
        matches!(self, PatternType::Scatter | PatternType::Shared | PatternType::SegColl)
    }
}

/// Base chunk size of a pattern row ("l" column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkBase {
    Fixed(u64),
    /// M_PART = max(2 MB, memory of one node / 128).
    Mpart,
}

impl ToJson for ChunkBase {
    fn to_json(&self) -> Json {
        // Newtype variant → {"Fixed": n}; unit variant → "Mpart".
        match self {
            ChunkBase::Fixed(b) => Json::variant("Fixed", b.to_json()),
            ChunkBase::Mpart => Json::Str("Mpart".to_owned()),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct IoPattern {
    /// Pattern number (0..=42, Table 2 "No." column).
    pub id: usize,
    pub ptype: PatternType,
    pub base: ChunkBase,
    /// Non-wellformed: add 8 bytes to the wellformed chunk size.
    pub plus8: bool,
    /// Disk chunks per MPI-IO call (type 0 scatters several; 1 else).
    pub chunks_per_call: u64,
    /// Time unit U (share of the scheduled time; 0 = run exactly once).
    pub u: u32,
    /// "Fill up segment" slot of the segmented types (ids 33 and 42).
    pub fillup: bool,
}

impl ToJson for IoPattern {
    fn to_json(&self) -> Json {
        Json::object()
            .field("id", &self.id)
            .field("ptype", &self.ptype)
            .field("base", &self.base)
            .field("plus8", &self.plus8)
            .field("chunks_per_call", &self.chunks_per_call)
            .field("u", &self.u)
            .field("fillup", &self.fillup)
            .build()
    }
}

impl IoPattern {
    /// Actual disk chunk size in bytes given M_PART.
    pub fn l(&self, mpart: u64) -> u64 {
        let base = match self.base {
            ChunkBase::Fixed(b) => b,
            ChunkBase::Mpart => mpart,
        };
        base + if self.plus8 { 8 } else { 0 }
    }

    /// Bytes moved per MPI-IO call ("L" column): `l · chunks_per_call`.
    pub fn call_bytes(&self, mpart: u64) -> u64 {
        self.l(mpart) * self.chunks_per_call
    }

    /// Index within the pattern's own type (0-based "No." column
    /// restarted per type).
    pub fn row(&self) -> usize {
        match self.ptype {
            PatternType::Scatter => self.id,
            PatternType::Shared => self.id - 9,
            PatternType::Separate => self.id - 17,
            PatternType::Segmented => self.id - 25,
            PatternType::SegColl => self.id - 34,
        }
    }

    /// Index into the *standard* 8-row chunk-size ladder (warm-up 1 MB,
    /// M_PART, 1 MB, 32 kB, 1 kB, 32 kB+8, 1 kB+8, 1 MB+8) that types
    /// 1-4 use directly. Type 0's extra 2 MB-memory-chunk row (No. 2)
    /// shares the 1 MB disk-chunk slot. Fill-up slots return 8.
    pub fn std_row(&self) -> usize {
        if self.fillup {
            return 8;
        }
        match self.ptype {
            PatternType::Scatter => [0, 1, 2, 2, 3, 4, 5, 6, 7][self.id],
            _ => self.row(),
        }
    }

    /// Human-readable chunk size ("1 MB", "32 kB +8B", "M_PART").
    pub fn chunk_label(&self) -> String {
        let base = match self.base {
            ChunkBase::Fixed(b) if b == MB => "1 MB".to_string(),
            ChunkBase::Fixed(b) if b == 32 * KB => "32 kB".to_string(),
            ChunkBase::Fixed(b) if b == KB => "1 kB".to_string(),
            ChunkBase::Fixed(b) => format!("{b} B"),
            ChunkBase::Mpart => "M_PART".to_string(),
        };
        if self.plus8 {
            format!("{base} +8B")
        } else {
            base
        }
    }
}

/// M_PART = max(2 MB, memory of one node / 128).
pub fn mpart(mem_per_node: u64) -> u64 {
    (mem_per_node / 128).max(2 * MB)
}

/// The eight (l, U) rows shared by types 1..4 — type differences are
/// only in the U of the M_PART row (4 for type 1, 2 for types 2..4).
fn standard_rows(mpart_u: u32) -> [(ChunkBase, bool, u32); 8] {
    [
        (ChunkBase::Fixed(MB), false, 0), // warm-up
        (ChunkBase::Mpart, false, mpart_u),
        (ChunkBase::Fixed(MB), false, 2),
        (ChunkBase::Fixed(32 * KB), false, 1),
        (ChunkBase::Fixed(KB), false, 1),
        (ChunkBase::Fixed(32 * KB), true, 1),
        (ChunkBase::Fixed(KB), true, 1),
        (ChunkBase::Fixed(MB), true, 2),
    ]
}

/// The complete Table 2 pattern list (43 slots, ΣU = 64).
pub fn all_patterns() -> Vec<IoPattern> {
    let mut v = Vec::with_capacity(43);
    // --- type 0: scatter, collective; memory chunk ~1 MB per call ---
    let t0: [(ChunkBase, bool, u64, u32); 9] = [
        (ChunkBase::Fixed(MB), false, 1, 0), // No.0 warm-up
        (ChunkBase::Mpart, false, 1, 4),     // No.1
        (ChunkBase::Fixed(MB), false, 2, 4), // No.2: L = 2 MB
        (ChunkBase::Fixed(MB), false, 1, 4), // No.3
        (ChunkBase::Fixed(32 * KB), false, 32, 2), // No.4: L = 1 MB
        (ChunkBase::Fixed(KB), false, 1024, 2),    // No.5: L = 1 MB
        (ChunkBase::Fixed(32 * KB), true, 32, 2),  // No.6: L = 1 MB + 256 B
        (ChunkBase::Fixed(KB), true, 1024, 2),     // No.7: L = 1 MB + 8 kB
        (ChunkBase::Fixed(MB), true, 1, 2),        // No.8: L = 1 MB + 8 B
    ];
    for (i, &(base, plus8, cpc, u)) in t0.iter().enumerate() {
        v.push(IoPattern {
            id: i,
            ptype: PatternType::Scatter,
            base,
            plus8,
            chunks_per_call: cpc,
            u,
            fillup: false,
        });
    }
    // --- types 1 and 2 ---
    for (i, &(base, plus8, u)) in standard_rows(4).iter().enumerate() {
        v.push(IoPattern {
            id: 9 + i,
            ptype: PatternType::Shared,
            base,
            plus8,
            chunks_per_call: 1,
            u,
            fillup: false,
        });
    }
    for (i, &(base, plus8, u)) in standard_rows(2).iter().enumerate() {
        v.push(IoPattern {
            id: 17 + i,
            ptype: PatternType::Separate,
            base,
            plus8,
            chunks_per_call: 1,
            u,
            fillup: false,
        });
    }
    // --- types 3 and 4: the same rows + a fill-up slot ---
    for (offset, ptype) in [(25, PatternType::Segmented), (34, PatternType::SegColl)] {
        for (i, &(base, plus8, u)) in standard_rows(2).iter().enumerate() {
            v.push(IoPattern {
                id: offset + i,
                ptype,
                base,
                plus8,
                chunks_per_call: 1,
                u,
                fillup: false,
            });
        }
        v.push(IoPattern {
            id: offset + 8,
            ptype,
            base: ChunkBase::Fixed(MB),
            plus8: false,
            chunks_per_call: 1,
            u: 0,
            fillup: true,
        });
    }
    v
}

/// ΣU over the whole table (the paper: 64).
pub fn sum_u() -> u32 {
    all_patterns().iter().map(|p| p.u).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_43_slots_and_sum_u_64() {
        let ps = all_patterns();
        assert_eq!(ps.len(), 43);
        assert_eq!(sum_u(), 64);
        // ids are dense 0..=42
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn per_type_u_sums_match_paper() {
        let ps = all_patterns();
        let u_of = |t: PatternType| -> u32 {
            ps.iter().filter(|p| p.ptype == t).map(|p| p.u).sum()
        };
        assert_eq!(u_of(PatternType::Scatter), 22);
        assert_eq!(u_of(PatternType::Shared), 12);
        assert_eq!(u_of(PatternType::Separate), 10);
        assert_eq!(u_of(PatternType::Segmented), 10);
        assert_eq!(u_of(PatternType::SegColl), 10);
    }

    #[test]
    fn type0_memory_chunks_match_table2() {
        let ps = all_patterns();
        let mp = mpart(256 * MB); // = 2 MB floor
        assert_eq!(ps[0].call_bytes(mp), MB);
        assert_eq!(ps[1].call_bytes(mp), mp);
        assert_eq!(ps[2].call_bytes(mp), 2 * MB);
        assert_eq!(ps[4].call_bytes(mp), MB); // 32 x 32 kB
        assert_eq!(ps[5].call_bytes(mp), MB); // 1024 x 1 kB
        assert_eq!(ps[6].call_bytes(mp), MB + 256); // 32 x (32 kB + 8)
        assert_eq!(ps[7].call_bytes(mp), MB + 8 * KB); // 1024 x (1 kB + 8)
        assert_eq!(ps[8].call_bytes(mp), MB + 8);
    }

    #[test]
    fn mpart_rule() {
        assert_eq!(mpart(64 * MB), 2 * MB);
        assert_eq!(mpart(512 * MB), 4 * MB);
        assert_eq!(mpart(8 * 1024 * MB), 64 * MB);
    }

    #[test]
    fn plus8_rows_are_non_wellformed() {
        let ps = all_patterns();
        let mp = mpart(0);
        for p in &ps {
            if p.plus8 {
                assert_eq!(p.l(mp) % 8, 0, "still 8-aligned additive");
                assert_ne!(p.l(mp) & (p.l(mp) - 1), 0, "must not be a power of two");
            }
        }
    }

    #[test]
    fn std_rows_align_chunk_sizes_across_types() {
        let ps = all_patterns();
        for p in &ps {
            if p.fillup {
                assert_eq!(p.std_row(), 8);
                continue;
            }
            let row = p.std_row();
            assert!(row < 8, "{p:?}");
            let reference = &ps[9 + row]; // type 1 row with that ladder slot
            assert_eq!(p.base, reference.base, "row {row}: {p:?}");
            assert_eq!(p.plus8, reference.plus8, "row {row}");
        }
    }

    #[test]
    fn warmup_rows_have_u_zero() {
        let ps = all_patterns();
        for id in [0usize, 9, 17, 25, 34] {
            assert_eq!(ps[id].u, 0, "pattern {id} is a warm-up");
        }
        assert_eq!(ps[33].u, 0);
        assert_eq!(ps[42].u, 0);
        assert!(ps[33].fillup && ps[42].fillup);
    }

    #[test]
    fn collectivity_by_type() {
        assert!(PatternType::Scatter.collective());
        assert!(PatternType::Shared.collective());
        assert!(!PatternType::Separate.collective());
        assert!(!PatternType::Segmented.collective());
        assert!(PatternType::SegColl.collective());
    }

    #[test]
    fn chunk_labels_render() {
        let ps = all_patterns();
        assert_eq!(ps[1].chunk_label(), "M_PART");
        assert_eq!(ps[4].chunk_label(), "32 kB");
        assert_eq!(ps[6].chunk_label(), "32 kB +8B");
        assert_eq!(ps[13].chunk_label(), "1 kB");
    }
}
