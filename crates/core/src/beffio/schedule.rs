//! Time scheduling and loop-termination algorithms of b_eff_io.
//!
//! Each pattern gets `T/3 · U/ΣU` of the scheduled time `T` (a third
//! per access method). Two termination algorithms are implemented:
//!
//! * [`Termination::RootCheck`] — the paper's released algorithm: after
//!   every iteration, a barrier, the *root's* clock decides, and the
//!   decision is broadcast. §5.4 observes this costs a barrier+bcast
//!   per call — significant against a fast 1 kB access.
//! * [`Termination::Geometric`] — the paper's proposed fix: check only
//!   at geometrically growing iteration counts.
//!
//! Noncollective patterns check their local clock directly.

use beff_json::{Json, ToJson};
use beff_mpi::{Comm, ReduceOp};
use beff_netsim::Secs;

/// Collective loop-termination algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Barrier + root decision + broadcast after every iteration.
    RootCheck,
    /// Geometric series of repeating factors between global checks.
    Geometric,
}

impl ToJson for Termination {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Termination::RootCheck => "RootCheck",
                Termination::Geometric => "Geometric",
            }
            .to_owned(),
        )
    }
}

/// Time share of one pattern: `T/3 · U/ΣU`.
pub fn pattern_time(t_sched: Secs, u: u32, sum_u: u32) -> Secs {
    t_sched / 3.0 * u as f64 / sum_u as f64
}

/// Driver for a time-bounded pattern loop.
pub struct TimeLoop {
    deadline: Secs,
    collective: bool,
    termination: Termination,
    iter: u64,
    next_check: u64,
    /// Hard iteration cap (safety net; `u64::MAX` = none).
    max_iters: u64,
}

impl TimeLoop {
    /// Start a loop with `budget` seconds from now. A zero/negative
    /// budget yields exactly one iteration (the warm-up rule for
    /// U = 0 patterns).
    pub fn new(comm: &Comm, budget: Secs, collective: bool, termination: Termination) -> Self {
        Self {
            deadline: comm.now() + budget,
            collective,
            termination,
            iter: 0,
            next_check: 1,
            max_iters: if budget > 0.0 { u64::MAX } else { 1 },
        }
    }

    /// Cap the number of iterations regardless of time (used to stay
    /// within the extent written by a previous access method).
    pub fn with_max_iters(mut self, cap: u64) -> Self {
        self.max_iters = self.max_iters.min(cap.max(1));
        self
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// Decide whether to run another iteration; collective when the
    /// pattern is collective (all ranks get the same answer).
    pub fn next(&mut self, comm: &mut Comm) -> bool {
        if self.iter >= self.max_iters {
            // collective patterns already agree: max_iters and iter are
            // identical on all ranks
            return false;
        }
        if self.iter == 0 {
            self.iter = 1;
            return true; // always run at least one iteration
        }
        let goon = if !self.collective {
            comm.now() < self.deadline
        } else {
            match self.termination {
                Termination::RootCheck => {
                    // the paper's algorithm: barrier, root reads its
                    // clock, broadcast the decision
                    comm.barrier();
                    let flag = if comm.rank() == 0 {
                        u64::from(comm.now() < self.deadline)
                    } else {
                        0
                    };
                    comm.bcast_u64(0, flag) == 1
                }
                Termination::Geometric => {
                    if self.iter < self.next_check {
                        true
                    } else {
                        self.next_check = self.iter * 2;
                        let remain = self.deadline - comm.now();
                        // one cheap collective per geometric boundary
                        let worst = comm.allreduce_scalar(-remain, ReduceOp::Max);
                        worst < 0.0
                    }
                }
            }
        };
        if goon {
            self.iter += 1;
        }
        goon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_netsim::{MachineNet, NetParams, Topology};
    use std::sync::Arc;

    #[test]
    fn pattern_time_shares() {
        // T = 960 s, U = 4, ΣU = 64: (960/3) * 4/64 = 20 s
        assert!((pattern_time(960.0, 4, 64) - 20.0).abs() < 1e-12);
        assert_eq!(pattern_time(960.0, 0, 64), 0.0);
    }

    fn sim(n: usize) -> World {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
        World::sim(net)
    }

    #[test]
    fn zero_budget_runs_exactly_once() {
        let iters = sim(2).run(|c| {
            let mut lp = TimeLoop::new(c, 0.0, true, Termination::RootCheck);
            let mut k = 0;
            while lp.next(c) {
                k += 1;
                c.compute(1e-3);
            }
            k
        });
        assert_eq!(iters, vec![1, 1]);
    }

    #[test]
    fn root_check_stops_all_ranks_after_same_iteration() {
        let iters = sim(4).run(|c| {
            let mut lp = TimeLoop::new(c, 0.05, true, Termination::RootCheck);
            while lp.next(c) {
                // rank-dependent work: clocks drift apart, but the root
                // decision must keep iteration counts equal
                c.compute(1e-3 * (1.0 + c.rank() as f64));
            }
            lp.iterations()
        });
        assert!(iters.iter().all(|&k| k == iters[0]), "{iters:?}");
        assert!(iters[0] >= 2);
    }

    #[test]
    fn geometric_stops_all_ranks_after_same_iteration() {
        let iters = sim(4).run(|c| {
            let mut lp = TimeLoop::new(c, 0.05, true, Termination::Geometric);
            while lp.next(c) {
                c.compute(2e-3);
            }
            lp.iterations()
        });
        assert!(iters.iter().all(|&k| k == iters[0]), "{iters:?}");
    }

    #[test]
    fn geometric_checks_less_often_so_loops_run_faster() {
        // With a per-iteration barrier the virtual time per iteration
        // includes collective latency; geometric amortizes it.
        let run = |term: Termination| -> f64 {
            let out = sim(8).run(move |c| {
                let mut lp = TimeLoop::new(c, 0.02, true, term);
                while lp.next(c) {
                    c.compute(1e-5); // fast access, like a cached 1 kB op
                }
                lp.iterations() as f64
            });
            out[0]
        };
        let root = run(Termination::RootCheck);
        let geo = run(Termination::Geometric);
        assert!(
            geo > 1.5 * root,
            "geometric must complete more iterations: geo={geo} root={root}"
        );
    }

    #[test]
    fn noncollective_uses_local_clock() {
        let iters = sim(2).run(|c| {
            let mut lp = TimeLoop::new(c, 0.01, false, Termination::RootCheck);
            while lp.next(c) {
                c.compute(1e-3);
            }
            lp.iterations()
        });
        // ~10 iterations of 1 ms in a 10 ms budget
        for k in iters {
            assert!((8..=12).contains(&k), "k={k}");
        }
    }

    #[test]
    fn max_iters_caps_the_loop() {
        let iters = sim(2).run(|c| {
            let mut lp =
                TimeLoop::new(c, 100.0, false, Termination::RootCheck).with_max_iters(5);
            while lp.next(c) {
                c.compute(1e-6);
            }
            lp.iterations()
        });
        assert_eq!(iters, vec![5, 5]);
    }
}
