//! Averaging utilities of the b_eff definition (§4).
//!
//! The effective bandwidth is built from *logarithmic* averages
//! (geometric means): rings and random patterns are each averaged on
//! the logarithmic scale, and the final value is the logarithmic
//! average of those two, so that the two pattern families carry equal
//! weight regardless of how many patterns each contains.

/// Logarithmic average (geometric mean). Zero/negative entries make the
/// result 0 — a pattern that moved no bytes annihilates the average,
/// which is the conservative choice for a benchmark.
pub fn logavg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|&x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Logarithmic average of two values (the final b_eff combination step).
pub fn logavg2(a: f64, b: f64) -> f64 {
    logavg(&[a, b])
}

/// Arithmetic mean (used over the 21 message sizes: `sum_L(...)/21`).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Weighted arithmetic mean.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let wsum: f64 = pairs.iter().map(|p| p.1).sum();
    if wsum == 0.0 {
        return 0.0;
    }
    pairs.iter().map(|p| p.0 * p.1).sum::<f64>() / wsum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logavg_of_equal_values_is_the_value() {
        assert!((logavg(&[5.0, 5.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn logavg_is_geometric_mean() {
        assert!((logavg(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((logavg2(4.0, 16.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn logavg_bounded_by_min_max() {
        let xs = [3.0, 7.0, 19.0, 2.5];
        let v = logavg(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(v >= min && v <= max);
    }

    #[test]
    fn logavg_below_arithmetic_mean() {
        let xs = [1.0, 2.0, 30.0];
        assert!(logavg(&xs) <= mean(&xs));
    }

    #[test]
    fn zero_annihilates() {
        assert_eq!(logavg(&[0.0, 10.0]), 0.0);
        assert_eq!(logavg(&[]), 0.0);
    }

    #[test]
    fn weighted_mean_weights() {
        // the access-method weighting of b_eff_io: 25/25/50
        let v = weighted_mean(&[(100.0, 0.25), (200.0, 0.25), (400.0, 0.5)]);
        assert!((v - 275.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_zero_weights() {
        assert_eq!(weighted_mean(&[(5.0, 0.0)]), 0.0);
        assert_eq!(weighted_mean(&[]), 0.0);
    }
}
