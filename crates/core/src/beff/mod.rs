//! The effective bandwidth benchmark **b_eff** (paper §4).
//!
//! The single number:
//!
//! ```text
//! b_eff = logavg( logavg_ringpatterns( sum_L( max_mthd( max_rep( b )))/21 ),
//!                 logavg_randompatterns( … ) )
//! ```
//!
//! with 21 message sizes up to `L_max = min(128 MB, mem/128)`, six ring
//! patterns + six random patterns, three MPI methods, and time-driven
//! looplength control. Additional diagnostic patterns (ping-pong,
//! bisections, Cartesian, worst-case cycle) are measured but not
//! averaged.

pub mod extra;
pub mod measure;
pub mod methods;
pub mod resilient;
pub mod result;
pub mod rings;
pub mod run;
pub mod sizes;

pub use measure::MeasureSchedule;
pub use methods::{Method, Transfers, METHODS};
pub use resilient::{
    run_one_pattern, PatternAttempt, PatternHealth, PatternStatus, ResilientBeffResult,
    StabilityReport, WatchdogPolicy,
};
pub use result::{BeffResult, ExtraResult, PatternResult};
pub use rings::{random_patterns, ring_patterns, ring_sizes, ring_targets, Pattern};
pub use run::{run_beff, BeffConfig};
pub use sizes::{lmax, message_sizes, NUM_SIZES};
