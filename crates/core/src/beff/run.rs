//! Top-level b_eff driver: loops over patterns × sizes × methods ×
//! repetitions with looplength adaptation, then assembles the result.

use super::extra::{pingpong, run_extras};
use super::measure::{measure_point, MeasureSchedule};
use super::methods::{Transfers, METHODS};
use super::result::{BeffResult, PatternResult};
use super::rings::{messages_per_iteration, random_patterns, ring_patterns};
use super::sizes::{lmax, message_sizes};
use beff_json::{Json, ToJson};
use beff_mpi::Comm;

/// Configuration of a b_eff run.
#[derive(Debug, Clone)]
pub struct BeffConfig {
    /// Memory per processor (determines L_max = min(128 MB, mem/128)).
    pub mem_per_proc: u64,
    pub schedule: MeasureSchedule,
    /// Seed for the random patterns.
    pub seed: u64,
    /// Measure the non-averaged diagnostic patterns too.
    pub extras: bool,
    /// Iterations for extras and ping-pong.
    pub extra_iters: u32,
}

impl ToJson for BeffConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("mem_per_proc", &self.mem_per_proc)
            .field("schedule", &self.schedule)
            .field("seed", &self.seed)
            .field("extras", &self.extras)
            .field("extra_iters", &self.extra_iters)
            .build()
    }
}

impl BeffConfig {
    /// Paper-fidelity schedule.
    pub fn paper(mem_per_proc: u64) -> Self {
        Self {
            mem_per_proc,
            schedule: MeasureSchedule::paper(),
            seed: 0xB0EF,
            extras: true,
            extra_iters: 16,
        }
    }

    /// Scaled-down schedule for CI and large simulated machines.
    pub fn quick(mem_per_proc: u64) -> Self {
        Self {
            mem_per_proc,
            schedule: MeasureSchedule::quick(),
            seed: 0xB0EF,
            extras: true,
            extra_iters: 4,
        }
    }

    pub fn without_extras(mut self) -> Self {
        self.extras = false;
        self
    }
}

/// Run the effective bandwidth benchmark on `comm`. Collective: every
/// rank calls it; all ranks return the same (reduced) result.
pub fn run_beff(comm: &mut Comm, cfg: &BeffConfig) -> BeffResult {
    let n = comm.size();
    let lmax = lmax(cfg.mem_per_proc);
    let sizes = message_sizes(lmax);
    let msgs = messages_per_iteration(n);
    let mut tr = Transfers::new(comm, lmax);

    let mut patterns = ring_patterns(n);
    patterns.extend(random_patterns(n, cfg.seed));

    let mut results = Vec::with_capacity(patterns.len());
    for pattern in &patterns {
        let (left, right) = pattern.neighbors[comm.rank()];
        let mut looplength = cfg.schedule.loop_start;
        let mut curve = Vec::with_capacity(sizes.len());
        for &len in &sizes {
            let mut best = 0.0f64;
            for method in METHODS {
                for _rep in 0..cfg.schedule.reps {
                    let m = measure_point(
                        comm, &mut tr, method, left, right, len, msgs, looplength,
                    );
                    best = best.max(m.mbps);
                    looplength = cfg.schedule.adapt(looplength, m.dt);
                }
            }
            curve.push(best);
        }
        results.push(PatternResult {
            name: pattern.name.clone(),
            random: pattern.random,
            ring_sizes: pattern.ring_sizes.clone(),
            curve,
        });
    }

    let pp = pingpong(comm, &mut tr, lmax, cfg.extra_iters.max(1));
    let extras = if cfg.extras {
        run_extras(comm, &mut tr, lmax, cfg.extra_iters.max(1))
    } else {
        Vec::new()
    };

    BeffResult::assemble(n, cfg.mem_per_proc, lmax, sizes, results, pp, extras)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_netsim::{MachineNet, NetParams, Topology, MB};
    use std::sync::Arc;

    fn quick_cfg() -> BeffConfig {
        let mut c = BeffConfig::quick(64 * MB); // L_max = 512 kB
        c.extra_iters = 2;
        c
    }

    #[test]
    fn beff_runs_on_a_small_crossbar() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 4 }, NetParams::default()));
        let cfg = quick_cfg();
        let rs = World::sim(net).run(move |c| run_beff(c, &cfg));
        let r = &rs[0];
        assert_eq!(r.nprocs, 4);
        assert_eq!(r.patterns.len(), 12);
        assert!(r.beff > 0.0);
        assert!(r.beff_at_lmax >= r.beff, "averaging over sizes cannot exceed Lmax value");
        assert!(r.pingpong_mbps > 0.0);
        // all ranks agree
        for other in &rs[1..] {
            assert!((other.beff - r.beff).abs() < 1e-9);
        }
    }

    #[test]
    fn beff_curve_is_roughly_increasing_in_size() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default()));
        let cfg = quick_cfg().without_extras();
        let rs = World::sim(net).run(move |c| run_beff(c, &cfg));
        let curve = &rs[0].patterns[0].curve;
        // large-message bandwidth dwarfs 1-byte bandwidth
        assert!(curve[20] > 50.0 * curve[0], "curve: {curve:?}");
    }

    #[test]
    fn rings_beat_randoms_on_a_torus() {
        // On a direct network, random placement must cost bandwidth
        // (Table 1's "negative effect of random neighbor locations").
        let net = Arc::new(MachineNet::new(
            Topology::Torus3D { dims: [2, 2, 2] },
            NetParams::default(),
        ));
        let cfg = quick_cfg().without_extras();
        let rs = World::sim(net).run(move |c| run_beff(c, &cfg));
        let r = &rs[0];
        let ring_avg: f64 = r
            .patterns
            .iter()
            .filter(|p| !p.random)
            .map(|p| p.avg_over_sizes())
            .sum::<f64>()
            / 6.0;
        let rand_avg: f64 = r
            .patterns
            .iter()
            .filter(|p| p.random)
            .map(|p| p.avg_over_sizes())
            .sum::<f64>()
            / 6.0;
        assert!(
            ring_avg > rand_avg,
            "rings {ring_avg} must beat randoms {rand_avg}"
        );
    }

    #[test]
    fn beff_runs_in_real_mode() {
        let cfg = BeffConfig {
            mem_per_proc: 64 * MB,
            schedule: MeasureSchedule { loop_start: 2, reps: 1, ..MeasureSchedule::quick() },
            seed: 1,
            extras: false,
            extra_iters: 1,
        };
        let rs = World::real(2).run(move |c| run_beff(c, &cfg));
        assert!(rs[0].beff > 0.0);
    }

    #[test]
    fn single_process_world_is_degenerate_but_finite() {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 1 }, NetParams::default()));
        let cfg = quick_cfg().without_extras();
        let rs = World::sim(net).run(move |c| run_beff(c, &cfg));
        assert!(rs[0].beff.is_finite());
    }
}
