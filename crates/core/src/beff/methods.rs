//! The three communication *methods* of b_eff (§4): `MPI_Sendrecv`,
//! `MPI_Alltoallv`, and nonblocking `Isend/Irecv + Waitall`. The
//! benchmark takes, per pattern and message size, the **maximum**
//! bandwidth over the three, so a system is measured by whichever MPI
//! path its vendor optimized.

use beff_json::{Json, ToJson};
use beff_mpi::{Comm, Tag};

/// Tag used by all benchmark payload traffic.
pub const BENCH_TAG: Tag = 0x0BEF;

/// Modeled per-rank scan cost of an `MPI_Alltoallv` call (the count
/// arrays are O(n) even when only two entries are nonzero).
const ALLTOALLV_SCAN_PER_RANK: f64 = 5e-9;

/// The communication method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Sendrecv,
    Alltoallv,
    NonBlocking,
}

impl ToJson for Method {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Method::Sendrecv => "Sendrecv",
                Method::Alltoallv => "Alltoallv",
                Method::NonBlocking => "NonBlocking",
            }
            .to_owned(),
        )
    }
}

pub const METHODS: [Method; 3] = [Method::Sendrecv, Method::Alltoallv, Method::NonBlocking];

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::Sendrecv => "MPI_Sendrecv",
            Method::Alltoallv => "MPI_Alltoallv",
            Method::NonBlocking => "Irecv/Isend/Waitall",
        }
    }
}

/// Per-rank transfer helper hiding the copy/no-copy payload modes.
/// In copy mode, real buffers of size `max_len` are allocated once; in
/// no-copy mode, only lengths travel.
pub struct Transfers {
    real: bool,
    sbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

impl Transfers {
    pub fn new(comm: &Comm, max_len: u64) -> Self {
        let real = comm.copies_payload();
        // 2x: the Alltoallv method merges both ring messages to the
        // same peer into one transfer of 2 * max_len
        let cap = if real { 2 * max_len as usize } else { 0 };
        Self { real, sbuf: vec![0xA5; cap], rbuf: vec![0; cap] }
    }

    #[inline]
    fn isend(&mut self, comm: &mut Comm, dst: usize, len: u64) -> beff_mpi::SendReq {
        if self.real {
            comm.payload_isend(dst, BENCH_TAG, &self.sbuf[..len as usize])
        } else {
            comm.payload_isend_len(dst, BENCH_TAG, len)
        }
    }

    #[inline]
    fn recv(&mut self, comm: &mut Comm, src: usize, len: u64) {
        let buf = if self.real { &mut self.rbuf[..len as usize] } else { &mut [][..] };
        comm.recv(Some(src), Some(BENCH_TAG), buf);
    }

    /// One ring iteration with the given method: exchange `len` bytes
    /// with both neighbors.
    pub fn ring_iteration(
        &mut self,
        comm: &mut Comm,
        method: Method,
        left: usize,
        right: usize,
        len: u64,
    ) {
        match method {
            Method::Sendrecv => {
                // the two messages go one after the other, as the paper
                // specifies for MPI_Sendrecv on rings with >2 members
                let s1 = self.isend(comm, left, len);
                self.recv(comm, right, len);
                comm.wait_send(s1);
                let s2 = self.isend(comm, right, len);
                self.recv(comm, left, len);
                comm.wait_send(s2);
            }
            Method::Alltoallv => {
                // one call moves both messages; counts to the same peer
                // merge into a single transfer, and the call scans the
                // O(n) count arrays
                comm.compute(comm.size() as f64 * ALLTOALLV_SCAN_PER_RANK);
                if left == right {
                    let s = self.isend(comm, left, 2 * len);
                    self.recv(comm, right, 2 * len);
                    comm.wait_send(s);
                } else {
                    let s1 = self.isend(comm, left, len);
                    let s2 = self.isend(comm, right, len);
                    self.recv(comm, right, len);
                    self.recv(comm, left, len);
                    comm.wait_send(s1);
                    comm.wait_send(s2);
                }
            }
            Method::NonBlocking => {
                let s1 = self.isend(comm, left, len);
                let s2 = self.isend(comm, right, len);
                self.recv(comm, right, len);
                if left == right {
                    self.recv(comm, right, len);
                } else {
                    self.recv(comm, left, len);
                }
                comm.wait_send(s1);
                comm.wait_send(s2);
            }
        }
    }

    /// One iteration of a *pair* exchange (bisection / ping patterns):
    /// both sides send `len` to each other simultaneously.
    pub fn pair_iteration(&mut self, comm: &mut Comm, peer: usize, len: u64) {
        let s = self.isend(comm, peer, len);
        self.recv(comm, peer, len);
        comm.wait_send(s);
    }

    /// One ping-pong round trip; `first` serves, the peer returns.
    pub fn pingpong_iteration(&mut self, comm: &mut Comm, peer: usize, len: u64, first: bool) {
        if first {
            let s = self.isend(comm, peer, len);
            comm.wait_send(s);
            self.recv(comm, peer, len);
        } else {
            self.recv(comm, peer, len);
            let s = self.isend(comm, peer, len);
            comm.wait_send(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_mpi::World;
    use beff_netsim::{MachineNet, NetParams, Topology};
    use std::sync::Arc;

    fn sim(n: usize) -> World {
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
        World::sim(net)
    }

    #[test]
    fn all_methods_complete_a_ring() {
        for method in METHODS {
            let times = sim(4).run(move |c| {
                let n = c.size();
                let left = (c.rank() + n - 1) % n;
                let right = (c.rank() + 1) % n;
                let mut tr = Transfers::new(c, 4096);
                for _ in 0..5 {
                    tr.ring_iteration(c, method, left, right, 4096);
                }
                c.now()
            });
            assert!(times.iter().all(|&t| t > 0.0), "{method:?}: {times:?}");
        }
    }

    #[test]
    fn ring_of_two_all_methods() {
        for method in METHODS {
            let times = sim(2).run(move |c| {
                let peer = 1 - c.rank();
                let mut tr = Transfers::new(c, 1024);
                for _ in 0..3 {
                    tr.ring_iteration(c, method, peer, peer, 1024);
                }
                c.now()
            });
            assert!(times.iter().all(|&t| t > 0.0), "{method:?}");
        }
    }

    #[test]
    fn methods_work_in_real_mode_with_bytes() {
        for method in METHODS {
            let out = World::real(4).run(move |c| {
                let n = c.size();
                let left = (c.rank() + n - 1) % n;
                let right = (c.rank() + 1) % n;
                let mut tr = Transfers::new(c, 512);
                for _ in 0..3 {
                    tr.ring_iteration(c, method, left, right, 512);
                }
                true
            });
            assert!(out.iter().all(|&b| b));
        }
    }

    #[test]
    fn pingpong_measures_round_trips() {
        let times = sim(2).run(|c| {
            if c.rank() > 1 {
                return 0.0;
            }
            let peer = 1 - c.rank();
            let mut tr = Transfers::new(c, 1 << 20);
            let t0 = c.now();
            for _ in 0..4 {
                tr.pingpong_iteration(c, peer, 1 << 20, c.rank() == 0);
            }
            c.now() - t0
        });
        assert!(times[0] > 0.0 && times[1] > 0.0);
        // both sides observe (nearly) the same elapsed round-trip time
        assert!((times[0] - times[1]).abs() / times[0] < 0.5);
    }
}
