//! The 21-value message-size ladder of b_eff (§4).
//!
//! 13 fixed sizes, 1 B … 4 kB (powers of two), then 8 geometrically
//! spaced sizes from 4 kB up to `L_max`, with
//! `L_max = min(128 MB, memory per processor / 128)` on systems with
//! 32-bit `int` (we always apply the 128 MB cap — it is the safe
//! interpretation for reproduction).

use beff_netsim::{KB, MB};

/// Number of sizes in the ladder.
pub const NUM_SIZES: usize = 21;

/// `L_max` rule.
pub fn lmax(mem_per_proc: u64) -> u64 {
    (mem_per_proc / 128).clamp(4 * KB, 128 * MB)
}

/// The full ladder: 1, 2, 4 … 4096 (13 values), then 4 kB·a^i for
/// i = 1..8 with 4 kB·a^8 = L_max.
pub fn message_sizes(lmax: u64) -> Vec<u64> {
    assert!(lmax >= 4 * KB, "L_max below 4 kB is degenerate: {lmax}");
    let mut sizes: Vec<u64> = (0..13).map(|i| 1u64 << i).collect(); // 1..4096
    let a = (lmax as f64 / 4096.0).powf(1.0 / 8.0);
    for i in 1..=8 {
        let v = (4096.0 * a.powi(i)).round() as u64;
        sizes.push(v);
    }
    // pin the endpoint exactly
    *sizes.last_mut().expect("non-empty") = lmax;
    debug_assert_eq!(sizes.len(), NUM_SIZES);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_netsim::GB;

    #[test]
    fn lmax_is_mem_over_128_capped() {
        assert_eq!(lmax(128 * MB), MB);
        assert_eq!(lmax(GB), 8 * MB);
        // 64 GB per proc would exceed the cap
        assert_eq!(lmax(64 * GB), 128 * MB);
        // tiny memory clamps up to 4 kB so the ladder stays valid
        assert_eq!(lmax(1024), 4 * KB);
    }

    #[test]
    fn ladder_has_21_strictly_increasing_sizes() {
        let s = message_sizes(lmax(GB));
        assert_eq!(s.len(), 21);
        for w in s.windows(2) {
            assert!(w[0] < w[1], "not increasing: {w:?}");
        }
    }

    #[test]
    fn ladder_fixed_part_is_powers_of_two() {
        let s = message_sizes(8 * MB);
        assert_eq!(&s[..13], &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]);
    }

    #[test]
    fn ladder_ends_exactly_at_lmax() {
        for mem in [256 * MB, GB, 16 * GB] {
            let lm = lmax(mem);
            let s = message_sizes(lm);
            assert_eq!(*s.last().unwrap(), lm);
        }
    }

    #[test]
    fn variable_part_is_geometric() {
        let lm = MB;
        let s = message_sizes(lm);
        let a = (lm as f64 / 4096.0).powf(1.0 / 8.0);
        for i in 1..=8usize {
            let expect = 4096.0 * a.powi(i as i32);
            let got = s[12 + i] as f64;
            assert!((got / expect - 1.0).abs() < 0.01, "i={i} got={got} expect={expect}");
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn tiny_lmax_rejected() {
        message_sizes(1024);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use beff_check::{check, ensure, ensure_eq};

    #[test]
    fn ladder_is_strictly_increasing_and_ends_at_lmax() {
        check("ladder is strictly increasing and ends at lmax", |g| {
            let mem = g.u64(1 << 20..=(1 << 44) - 1);
            let lm = lmax(mem);
            let s = message_sizes(lm);
            ensure_eq!(s.len(), NUM_SIZES);
            for w in s.windows(2) {
                ensure!(w[0] < w[1], "{:?}", s);
            }
            ensure_eq!(s[0], 1);
            ensure_eq!(*s.last().unwrap(), lm);
        });
    }

    #[test]
    fn lmax_never_exceeds_cap_or_mem() {
        check("lmax never exceeds cap or mem", |g| {
            let mem = g.u64(0..=(1 << 50) - 1);
            let lm = lmax(mem);
            ensure!(lm <= 128 * MB);
            ensure!(lm >= 4 * KB);
            if mem >= 512 * KB && mem <= 128 * MB * 128 {
                ensure_eq!(lm, mem / 128);
            }
        });
    }
}
