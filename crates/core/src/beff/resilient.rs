//! Resilient per-pattern b_eff building blocks: watchdog deadlines,
//! straggler detection, and the stability report schema.
//!
//! The classic driver ([`super::run::run_beff`]) assumes a healthy
//! machine: one wedged pattern would stall the whole run, and one dead
//! rank aborts everything. The resilient path (driven from
//! `beff-bench`'s `ResilientRunner`) runs **one pattern per world
//! run**, so a fault is contained to the pattern it hit:
//!
//! * every measured point carries a **watchdog deadline** derived from
//!   the paper's 2.5–5 ms inner-loop window — a point that blows the
//!   budget ends the attempt (deterministically on every rank, since
//!   the decision is made on the allreduced maximum), and the driver
//!   retries with an exponentially larger budget;
//! * the per-rank timing spread (max/min of the local loop times)
//!   detects **stragglers**: a pattern that completes but with spread
//!   beyond the policy limit is flagged `degraded`, not `valid`;
//! * patterns that fail permanently are dropped from the averages and
//!   recorded in a [`StabilityReport`], so a run on a sick machine
//!   still emits b_eff — with the failure written into the output
//!   instead of a crashed process.

use super::measure::MeasureSchedule;
use super::methods::{Transfers, METHODS};
use super::result::{BeffResult, PatternResult};
use super::rings::{messages_per_iteration, Pattern};
use super::run::BeffConfig;
use super::sizes::{lmax, message_sizes};
use beff_json::{Json, ToJson};
use beff_mpi::{Comm, ReduceOp};
use beff_netsim::{Secs, MB};

/// Driver-side resilience policy: how long a point may take, how often
/// to retry, and how much per-rank spread is tolerated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogPolicy {
    /// Deadline for a single measured point (barrier → allreduce).
    pub point_budget: Secs,
    /// Retries after a watchdog trip or a retryable fault.
    pub max_retries: u32,
    /// Budget multiplier per retry (exponential backoff).
    pub backoff: f64,
    /// Max tolerated `dt_max / dt_min` across ranks before a completed
    /// pattern is flagged degraded (straggler detection).
    pub straggler_spread: f64,
}

impl WatchdogPolicy {
    /// Derive the deadline from a measurement schedule: the paper sizes
    /// the inner loop to land in the `[loop_min_time, loop_max_time]`
    /// window, and the first, unadapted point can overshoot it by the
    /// full `loop_start` factor — so the watchdog only fires two
    /// decades above the window's upper edge, where no healthy point
    /// can be.
    pub fn from_schedule(s: &MeasureSchedule) -> Self {
        Self {
            point_budget: s.loop_max_time * 100.0,
            max_retries: 2,
            backoff: 8.0,
            straggler_spread: 4.0,
        }
    }
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        Self::from_schedule(&MeasureSchedule::paper())
    }
}

/// How a pattern's measurement ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternStatus {
    /// Measured cleanly; participates in the b_eff averages.
    Valid,
    /// Measured, and the numbers participate in the averages, but
    /// something was off (watchdog retries, straggler spread).
    Degraded,
    /// No usable measurement; excluded from the averages.
    Failed,
}

impl PatternStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Valid => "valid",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }
}

impl ToJson for PatternStatus {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

/// Per-pattern health record in the stability report.
#[derive(Debug, Clone)]
pub struct PatternHealth {
    pub name: String,
    pub random: bool,
    pub status: PatternStatus,
    /// Human-readable cause for non-valid statuses ("" when valid).
    pub reason: String,
    pub retries: u32,
    pub watchdog_trips: u32,
    /// Largest observed `dt_max / dt_min` across ranks.
    pub max_spread: f64,
}

impl ToJson for PatternHealth {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("random", &self.random)
            .field("status", &self.status)
            .field("reason", &self.reason)
            .field("retries", &self.retries)
            .field("watchdog_trips", &self.watchdog_trips)
            .field("max_spread", &self.max_spread)
            .build()
    }
}

/// What one in-world pattern attempt reports back to the driver.
#[derive(Debug, Clone)]
pub struct PatternAttempt {
    pub result: PatternResult,
    /// The watchdog fired: the curve is truncated and must not enter
    /// the averages; the driver decides whether to retry.
    pub tripped: bool,
    /// Largest `dt_max / dt_min` seen over the attempt's points.
    pub max_spread: f64,
    /// Allreduced end time of the attempt (drives the fault epoch).
    pub t_end: Secs,
}

/// Measure one pattern, guarded. Collective: every rank calls it and
/// every rank returns the same decision (trip or not), because the
/// watchdog compares the *allreduced* loop time against the budget.
pub fn run_one_pattern(
    comm: &mut Comm,
    cfg: &BeffConfig,
    pattern: &Pattern,
    budget: Secs,
) -> PatternAttempt {
    let n = comm.size();
    let lmaxv = lmax(cfg.mem_per_proc);
    let sizes = message_sizes(lmaxv);
    let msgs = messages_per_iteration(n);
    let mut tr = Transfers::new(comm, lmaxv);
    let (left, right) = pattern.neighbors[comm.rank()];

    let mut looplength = cfg.schedule.loop_start;
    let mut curve = Vec::with_capacity(sizes.len());
    let mut tripped = false;
    let mut max_spread = 1.0f64;

    'sizes: for &len in &sizes {
        let mut best = 0.0f64;
        for method in METHODS {
            for _rep in 0..cfg.schedule.reps {
                comm.barrier();
                let t0 = comm.now();
                for _ in 0..looplength {
                    tr.ring_iteration(comm, method, left, right, len);
                }
                let dt_local = comm.now() - t0;
                let dt = comm.allreduce_scalar(dt_local, ReduceOp::Max);
                let dt_min = comm.allreduce_scalar(dt_local, ReduceOp::Min);
                if dt_min > 0.0 {
                    max_spread = max_spread.max(dt / dt_min);
                }
                if dt > budget {
                    tripped = true;
                    break 'sizes;
                }
                let bytes = len as f64 * msgs as f64 * looplength as f64;
                best = best.max(bytes / MB as f64 / dt.max(1e-12));
                looplength = cfg.schedule.adapt(looplength, dt);
            }
        }
        curve.push(best);
    }

    let t_end = comm.allreduce_scalar(comm.now(), ReduceOp::Max);
    PatternAttempt {
        result: PatternResult {
            name: pattern.name.clone(),
            random: pattern.random,
            ring_sizes: pattern.ring_sizes.clone(),
            curve,
        },
        tripped,
        max_spread,
        t_end,
    }
}

/// Machine stability summary attached to every resilient run.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Fault-plan seed (`None` for a fault-free resilient run).
    pub fault_seed: Option<u64>,
    pub severity: f64,
    pub valid: usize,
    pub degraded: usize,
    pub failed: usize,
    pub crashed_ranks: Vec<usize>,
    pub dead_links: Vec<usize>,
    pub drops: u64,
    pub retransmits: u64,
    pub pingpong_ok: bool,
    pub patterns: Vec<PatternHealth>,
}

impl StabilityReport {
    /// The machine measured cleanly: every pattern valid, nothing died.
    pub fn stable(&self) -> bool {
        self.degraded == 0
            && self.failed == 0
            && self.crashed_ranks.is_empty()
            && self.pingpong_ok
    }
}

impl ToJson for StabilityReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("fault_seed", &self.fault_seed)
            .field("severity", &self.severity)
            .field("valid", &self.valid)
            .field("degraded", &self.degraded)
            .field("failed", &self.failed)
            .field("crashed_ranks", &self.crashed_ranks)
            .field("dead_links", &self.dead_links)
            .field("drops", &self.drops)
            .field("retransmits", &self.retransmits)
            .field("pingpong_ok", &self.pingpong_ok)
            .field("stable", &self.stable())
            .field("patterns", &self.patterns)
            .build()
    }
}

/// A resilient run's output: the benchmark result (when enough
/// patterns survived to form the averages) plus the stability report.
#[derive(Debug, Clone)]
pub struct ResilientBeffResult {
    /// `None` when too few patterns survived (b_eff needs at least one
    /// ring and one random pattern for its two-level average).
    pub beff: Option<BeffResult>,
    pub stability: StabilityReport,
}

impl ResilientBeffResult {
    /// Did the run produce a usable b_eff number?
    pub fn usable(&self) -> bool {
        self.beff.is_some()
    }

    /// Strict-mode gate: a b_eff number exists and nothing failed.
    pub fn strict_ok(&self) -> bool {
        self.beff.is_some() && self.stability.failed == 0
    }
}

impl ToJson for ResilientBeffResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("beff", &self.beff)
            .field("stability", &self.stability)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_budget_leaves_headroom_over_the_loop_window() {
        let p = WatchdogPolicy::from_schedule(&MeasureSchedule::paper());
        assert!(p.point_budget >= 100.0 * 5e-3 - 1e-12);
        assert!(p.max_retries >= 1);
        assert!(p.backoff > 1.0);
    }

    #[test]
    fn status_strings_are_the_schema_values() {
        assert_eq!(PatternStatus::Valid.as_str(), "valid");
        assert_eq!(PatternStatus::Degraded.as_str(), "degraded");
        assert_eq!(PatternStatus::Failed.as_str(), "failed");
    }

    #[test]
    fn stability_report_serializes_with_stable_flag() {
        let rep = StabilityReport {
            fault_seed: Some(7),
            severity: 0.5,
            valid: 10,
            degraded: 1,
            failed: 1,
            crashed_ranks: vec![3],
            dead_links: vec![],
            drops: 4,
            retransmits: 4,
            pingpong_ok: true,
            patterns: vec![],
        };
        let s = beff_json::to_string(&rep);
        assert!(s.contains("\"stable\":false"));
        assert!(s.contains("\"fault_seed\":7"));
        beff_json::validate(&s).expect("well-formed");
    }
}
