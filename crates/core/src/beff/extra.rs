//! The additional diagnostic patterns of §4 that are measured but not
//! averaged into b_eff: worst-case cycle, best and worst bisection,
//! 2-D/3-D Cartesian exchanges, and the plain ping-pong.

use super::methods::{Method, Transfers};
use super::result::ExtraResult;
use beff_mpi::{CartGrid, Comm, ReduceOp};
use beff_netsim::MB;

/// Measure everything at message size `len` with `iters` iterations.
/// Returns identical results on every rank (times are reduced).
pub fn run_extras(comm: &mut Comm, tr: &mut Transfers, len: u64, iters: u32) -> Vec<ExtraResult> {
    let mut out = Vec::new();
    let n = comm.size();

    // --- worst-case cycle: one ring ordered for maximal distance ---
    {
        let order = interleaved_order(n);
        let mut pos = vec![0usize; n];
        for (i, &r) in order.iter().enumerate() {
            pos[r] = i;
        }
        let me = pos[comm.rank()];
        let left = order[(me + n - 1) % n];
        let right = order[(me + 1) % n];
        let dt = timed(comm, iters, |c, tr| {
            tr.ring_iteration(c, Method::NonBlocking, left, right, len)
        }, tr);
        let bytes = 2.0 * n as f64 * len as f64 * iters as f64;
        out.push(ExtraResult { name: "worst-case cycle".into(), mbps: bytes / MB as f64 / dt });
    }

    // --- best bisection: adjacent pairs (2i <-> 2i+1) ---
    if n >= 2 {
        let peer = best_bisection_peer(comm.rank(), n);
        let dt = timed(comm, iters, |c, tr| {
            if let Some(p) = peer {
                tr.pair_iteration(c, p, len);
            }
        }, tr);
        let pairs = (n / 2) as f64;
        let bytes = 2.0 * pairs * len as f64 * iters as f64;
        out.push(ExtraResult { name: "best bisection".into(), mbps: bytes / MB as f64 / dt });
    }

    // --- worst bisection: i <-> i + n/2 ---
    if n >= 2 {
        let peer = worst_bisection_peer(comm.rank(), n);
        let dt = timed(comm, iters, |c, tr| {
            if let Some(p) = peer {
                tr.pair_iteration(c, p, len);
            }
        }, tr);
        let pairs = (n / 2) as f64;
        let bytes = 2.0 * pairs * len as f64 * iters as f64;
        out.push(ExtraResult { name: "worst bisection".into(), mbps: bytes / MB as f64 / dt });
    }

    // --- Cartesian exchanges ---
    for ndims in [2usize, 3] {
        if n < 2 {
            break;
        }
        let grid = CartGrid::balanced(n, ndims);
        // per dimension separately
        for dim in 0..ndims {
            let (src, dst) = grid.shift(comm.rank(), dim, 1);
            let dt = timed(comm, iters, |c, tr| {
                tr.ring_iteration(c, Method::NonBlocking, src, dst, len)
            }, tr);
            let bytes = 2.0 * n as f64 * len as f64 * iters as f64;
            out.push(ExtraResult {
                name: format!("cartesian {ndims}D dim {dim} (dims {:?})", grid.dims()),
                mbps: bytes / MB as f64 / dt,
            });
        }
        // all dimensions together
        let shifts: Vec<(usize, usize)> =
            (0..ndims).map(|d| grid.shift(comm.rank(), d, 1)).collect();
        let dt = timed(comm, iters, |c, tr| {
            for &(src, dst) in &shifts {
                tr.ring_iteration(c, Method::NonBlocking, src, dst, len);
            }
        }, tr);
        let bytes = 2.0 * ndims as f64 * n as f64 * len as f64 * iters as f64;
        out.push(ExtraResult {
            name: format!("cartesian {ndims}D all dims (dims {:?})", grid.dims()),
            mbps: bytes / MB as f64 / dt,
        });
    }

    out
}

/// Ping-pong between ranks 0 and 1 at size `len`; returns the one-way
/// bandwidth in MByte/s (0.0 for single-rank worlds). Collective: every
/// rank must call it.
pub fn pingpong(comm: &mut Comm, tr: &mut Transfers, len: u64, iters: u32) -> f64 {
    if comm.size() < 2 {
        return 0.0;
    }
    comm.barrier();
    let t0 = comm.now();
    if comm.rank() < 2 {
        let peer = 1 - comm.rank();
        for _ in 0..iters {
            tr.pingpong_iteration(comm, peer, len, comm.rank() == 0);
        }
    }
    let dt_local = if comm.rank() < 2 { comm.now() - t0 } else { 0.0 };
    let dt = comm.allreduce_scalar(dt_local, ReduceOp::Max);
    // each iteration moves len twice (there and back): one-way bw
    2.0 * len as f64 * iters as f64 / MB as f64 / dt.max(1e-12)
}

fn timed(
    comm: &mut Comm,
    iters: u32,
    mut body: impl FnMut(&mut Comm, &mut Transfers),
    tr: &mut Transfers,
) -> f64 {
    comm.barrier();
    let t0 = comm.now();
    for _ in 0..iters {
        body(comm, tr);
    }
    let dt_local = comm.now() - t0;
    comm.allreduce_scalar(dt_local, ReduceOp::Max).max(1e-12)
}

/// Order visiting ranks with ~n/2 distance between neighbors:
/// 0, h, 1, h+1, … with h = ⌈n/2⌉.
pub fn interleaved_order(n: usize) -> Vec<usize> {
    let h = n.div_ceil(2);
    let mut v = Vec::with_capacity(n);
    for i in 0..h {
        v.push(i);
        if i + h < n {
            v.push(i + h);
        }
    }
    v
}

/// Pair 2i ↔ 2i+1 (odd tail idles).
pub fn best_bisection_peer(rank: usize, n: usize) -> Option<usize> {
    let peer = rank ^ 1;
    (peer < n && n >= 2 && rank / 2 < n / 2).then_some(peer)
}

/// Pair i ↔ i + n/2 (middle/odd tail idles).
pub fn worst_bisection_peer(rank: usize, n: usize) -> Option<usize> {
    let h = n / 2;
    if h == 0 {
        return None;
    }
    if rank < h {
        Some(rank + h)
    } else if rank < 2 * h {
        Some(rank - h)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_order_is_permutation_with_long_hops() {
        for n in [2usize, 5, 8, 17, 64] {
            let v = interleaved_order(n);
            let mut s = v.clone();
            s.sort_unstable();
            assert_eq!(s, (0..n).collect::<Vec<_>>(), "n={n}");
            if n >= 8 {
                // most consecutive hops are ~n/2 apart
                let far = v
                    .windows(2)
                    .filter(|w| {
                        let d = w[0].abs_diff(w[1]);
                        d.min(n - d) >= n / 2 - 1
                    })
                    .count();
                assert!(far >= n - 3, "n={n}: only {far} far hops in {v:?}");
            }
        }
    }

    #[test]
    fn bisection_pairings_are_involutions() {
        for n in [2usize, 7, 8, 15, 16] {
            for r in 0..n {
                if let Some(p) = best_bisection_peer(r, n) {
                    assert_eq!(best_bisection_peer(p, n), Some(r), "best n={n} r={r}");
                }
                if let Some(p) = worst_bisection_peer(r, n) {
                    assert_eq!(worst_bisection_peer(p, n), Some(r), "worst n={n} r={r}");
                }
            }
        }
    }

    #[test]
    fn odd_rank_counts_leave_someone_idle() {
        assert_eq!(best_bisection_peer(6, 7), None);
        assert_eq!(worst_bisection_peer(6, 7), None);
        assert_eq!(worst_bisection_peer(0, 7), Some(3));
    }

    #[test]
    fn extras_run_on_a_small_sim() {
        use beff_netsim::{MachineNet, NetParams, Topology};
        use std::sync::Arc;
        let net =
            Arc::new(MachineNet::new(Topology::Ring { procs: 8 }, NetParams::default()));
        let results = beff_mpi::World::sim(net).run(|c| {
            let mut tr = Transfers::new(c, 1 << 16);
            run_extras(c, &mut tr, 1 << 16, 3)
        });
        let r0 = &results[0];
        assert!(r0.len() >= 8, "names: {:?}", r0.iter().map(|e| &e.name).collect::<Vec<_>>());
        for e in r0 {
            assert!(e.mbps > 0.0, "{} has zero bandwidth", e.name);
        }
        // on a ring topology, the worst bisection cannot beat the best
        let best = r0.iter().find(|e| e.name == "best bisection").unwrap().mbps;
        let worst = r0.iter().find(|e| e.name == "worst bisection").unwrap().mbps;
        assert!(worst <= best * 1.05, "worst={worst} best={best}");
    }

    #[test]
    fn pingpong_positive_and_agreed() {
        use beff_netsim::{MachineNet, NetParams, Topology};
        use std::sync::Arc;
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 4 }, NetParams::default()));
        let bws = beff_mpi::World::sim(net).run(|c| {
            let mut tr = Transfers::new(c, 1 << 20);
            pingpong(c, &mut tr, 1 << 20, 4)
        });
        assert!(bws[0] > 0.0);
        for w in bws.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "all ranks agree: {bws:?}");
        }
    }
}

#[cfg(test)]
mod real_mode_tests {
    use super::*;
    use crate::beff::methods::Transfers;

    #[test]
    fn extras_and_pingpong_run_in_real_mode() {
        let results = beff_mpi::World::real(4).run(|c| {
            let mut tr = Transfers::new(c, 1 << 14);
            let pp = pingpong(c, &mut tr, 1 << 14, 2);
            let extras = run_extras(c, &mut tr, 1 << 14, 2);
            (pp, extras.len())
        });
        assert!(results[0].0 > 0.0, "real ping-pong must move bytes");
        assert!(results[0].1 >= 8);
    }

    #[test]
    fn single_rank_pingpong_is_zero() {
        let results = beff_mpi::World::real(1).run(|c| {
            let mut tr = Transfers::new(c, 64);
            pingpong(c, &mut tr, 64, 2)
        });
        assert_eq!(results[0], 0.0);
    }
}
