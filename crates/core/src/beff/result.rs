//! b_eff result assembly: the averaging rule of §4 and the detailed
//! protocol report.

use crate::logavg::{logavg, logavg2, mean};
use beff_json::{Json, ToJson};

/// Results of one communication pattern.
#[derive(Debug, Clone)]
pub struct PatternResult {
    pub name: String,
    pub random: bool,
    pub ring_sizes: Vec<usize>,
    /// Best bandwidth (max over methods and repetitions) per message
    /// size, MByte/s aggregate.
    pub curve: Vec<f64>,
}

impl PatternResult {
    /// `sum_L(max_mthd(max_rep(b)))/21` — the per-pattern average.
    pub fn avg_over_sizes(&self) -> f64 {
        mean(&self.curve)
    }

    /// Bandwidth at the maximum message size only.
    pub fn at_lmax(&self) -> f64 {
        *self.curve.last().unwrap_or(&0.0)
    }
}

impl ToJson for PatternResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("random", &self.random)
            .field("ring_sizes", &self.ring_sizes)
            .field("curve", &self.curve)
            .build()
    }
}

/// An additional (non-averaged) diagnostic pattern.
#[derive(Debug, Clone)]
pub struct ExtraResult {
    pub name: String,
    /// Aggregate bandwidth at L_max, MByte/s.
    pub mbps: f64,
}

impl ToJson for ExtraResult {
    fn to_json(&self) -> Json {
        Json::object().field("name", &self.name).field("mbps", &self.mbps).build()
    }
}

/// The complete b_eff result for one machine/partition.
#[derive(Debug, Clone)]
pub struct BeffResult {
    pub nprocs: usize,
    pub mem_per_proc: u64,
    pub lmax: u64,
    pub sizes: Vec<u64>,
    pub patterns: Vec<PatternResult>,
    /// The single number: logavg(logavg(rings), logavg(randoms)).
    pub beff: f64,
    pub beff_per_proc: f64,
    /// Same combination using only the L_max column.
    pub beff_at_lmax: f64,
    pub beff_per_proc_at_lmax: f64,
    /// Ring patterns only, at L_max, per process (Table 1 last column).
    pub ring_per_proc_at_lmax: f64,
    /// One-way ping-pong bandwidth at L_max (rank 0 ↔ 1).
    pub pingpong_mbps: f64,
    pub extras: Vec<ExtraResult>,
}

impl ToJson for BeffResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("nprocs", &self.nprocs)
            .field("mem_per_proc", &self.mem_per_proc)
            .field("lmax", &self.lmax)
            .field("sizes", &self.sizes)
            .field("patterns", &self.patterns)
            .field("beff", &self.beff)
            .field("beff_per_proc", &self.beff_per_proc)
            .field("beff_at_lmax", &self.beff_at_lmax)
            .field("beff_per_proc_at_lmax", &self.beff_per_proc_at_lmax)
            .field("ring_per_proc_at_lmax", &self.ring_per_proc_at_lmax)
            .field("pingpong_mbps", &self.pingpong_mbps)
            .field("extras", &self.extras)
            .build()
    }
}

impl BeffResult {
    /// Apply the §4 averaging definition to per-pattern curves.
    pub fn assemble(
        nprocs: usize,
        mem_per_proc: u64,
        lmax: u64,
        sizes: Vec<u64>,
        patterns: Vec<PatternResult>,
        pingpong_mbps: f64,
        extras: Vec<ExtraResult>,
    ) -> Self {
        let ring_avgs: Vec<f64> =
            patterns.iter().filter(|p| !p.random).map(|p| p.avg_over_sizes()).collect();
        let rand_avgs: Vec<f64> =
            patterns.iter().filter(|p| p.random).map(|p| p.avg_over_sizes()).collect();
        let beff = logavg2(logavg(&ring_avgs), logavg(&rand_avgs));

        let ring_lmax: Vec<f64> =
            patterns.iter().filter(|p| !p.random).map(|p| p.at_lmax()).collect();
        let rand_lmax: Vec<f64> =
            patterns.iter().filter(|p| p.random).map(|p| p.at_lmax()).collect();
        let beff_at_lmax = logavg2(logavg(&ring_lmax), logavg(&rand_lmax));
        let ring_only = logavg(&ring_lmax);

        let n = nprocs as f64;
        Self {
            nprocs,
            mem_per_proc,
            lmax,
            sizes,
            patterns,
            beff,
            beff_per_proc: beff / n,
            beff_at_lmax,
            beff_per_proc_at_lmax: beff_at_lmax / n,
            ring_per_proc_at_lmax: ring_only / n,
            pingpong_mbps,
            extras,
        }
    }

    /// Detailed measurement protocol (per-pattern curves + summary),
    /// the "benchmark protocol" the paper requires to be reported.
    pub fn protocol(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "b_eff protocol: {} processes, L_max = {} bytes", self.nprocs, self.lmax);
        let _ = writeln!(s, "message sizes: {:?}", self.sizes);
        for p in &self.patterns {
            let _ = writeln!(
                s,
                "  {:<24} rings {:?}  avg {:8.1} MB/s  at Lmax {:8.1} MB/s",
                p.name,
                p.ring_sizes,
                p.avg_over_sizes(),
                p.at_lmax()
            );
            let _ = writeln!(
                s,
                "    curve: {}",
                p.curve.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>().join(" ")
            );
        }
        for e in &self.extras {
            let _ = writeln!(s, "  extra {:<28} {:10.1} MB/s", e.name, e.mbps);
        }
        let _ = writeln!(s, "ping-pong (L_max, one-way): {:.1} MB/s", self.pingpong_mbps);
        let _ = writeln!(
            s,
            "b_eff = {:.0} MB/s ({:.1}/proc); at Lmax = {:.0} ({:.1}/proc); rings at Lmax {:.1}/proc",
            self.beff,
            self.beff_per_proc,
            self.beff_at_lmax,
            self.beff_per_proc_at_lmax,
            self.ring_per_proc_at_lmax
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(name: &str, random: bool, curve: Vec<f64>) -> PatternResult {
        PatternResult { name: name.into(), random, ring_sizes: vec![2], curve }
    }

    #[test]
    fn assemble_applies_two_level_logavg() {
        // rings average to logavg(4, 16) = 8; randoms to logavg(1, 4) = 2
        // final: logavg(8, 2) = 4
        let patterns = vec![
            pat("r1", false, vec![4.0]),
            pat("r2", false, vec![16.0]),
            pat("x1", true, vec![1.0]),
            pat("x2", true, vec![4.0]),
        ];
        let r = BeffResult::assemble(2, 1 << 30, 1, vec![1], patterns, 0.0, vec![]);
        assert!((r.beff - 4.0).abs() < 1e-9);
        assert!((r.beff_per_proc - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ring_and_random_families_weigh_equally() {
        // 1 ring pattern vs 3 random patterns: families still 50/50
        let patterns = vec![
            pat("r1", false, vec![100.0]),
            pat("x1", true, vec![1.0]),
            pat("x2", true, vec![1.0]),
            pat("x3", true, vec![1.0]),
        ];
        let r = BeffResult::assemble(1, 1 << 30, 1, vec![1], patterns, 0.0, vec![]);
        assert!((r.beff - 10.0).abs() < 1e-9); // logavg(100, 1)
    }

    #[test]
    fn avg_over_sizes_is_arithmetic_mean() {
        let p = pat("r", false, vec![10.0, 20.0, 30.0]);
        assert!((p.avg_over_sizes() - 20.0).abs() < 1e-12);
        assert_eq!(p.at_lmax(), 30.0);
    }

    #[test]
    fn lmax_column_values() {
        let patterns = vec![
            pat("r1", false, vec![1.0, 8.0]),
            pat("x1", true, vec![1.0, 2.0]),
        ];
        let r = BeffResult::assemble(4, 1 << 30, 2, vec![1, 2], patterns, 330.0, vec![]);
        assert!((r.beff_at_lmax - 4.0).abs() < 1e-9); // logavg(8, 2)
        assert!((r.ring_per_proc_at_lmax - 2.0).abs() < 1e-9); // 8/4
        assert_eq!(r.pingpong_mbps, 330.0);
    }

    #[test]
    fn protocol_renders() {
        let patterns = vec![pat("ring-1", false, vec![5.0]), pat("random-1", true, vec![5.0])];
        let r = BeffResult::assemble(2, 1 << 30, 1, vec![1], patterns, 10.0, vec![
            ExtraResult { name: "ping-pong".into(), mbps: 10.0 },
        ]);
        let text = r.protocol();
        assert!(text.contains("b_eff"));
        assert!(text.contains("ring-1"));
        assert!(text.contains("ping-pong"));
    }
}
