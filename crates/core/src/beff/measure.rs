//! Time-driven measurement core of b_eff: the looplength control
//! ("looplength = 300 for the shortest message … reduced dynamically to
//! achieve an execution time between 2.5 and 5 msec, minimum 1") and
//! the bandwidth formula
//! `b = L · messages · looplength / max-time-over-ranks`.

use super::methods::{Method, Transfers};
use beff_json::{Json, ToJson};
use beff_mpi::{Comm, ReduceOp};
use beff_netsim::{Secs, MB};

/// Loop/repetition schedule.
#[derive(Debug, Clone, Copy)]
pub struct MeasureSchedule {
    /// Starting looplength for the shortest message (paper: 300).
    pub loop_start: u32,
    /// Lower edge of the per-loop time window (paper: 2.5 ms).
    pub loop_min_time: Secs,
    /// Upper edge (paper: 5 ms).
    pub loop_max_time: Secs,
    /// Repetitions per measurement, best taken (paper: 3).
    pub reps: u32,
}

impl ToJson for MeasureSchedule {
    fn to_json(&self) -> Json {
        Json::object()
            .field("loop_start", &self.loop_start)
            .field("loop_min_time", &self.loop_min_time)
            .field("loop_max_time", &self.loop_max_time)
            .field("reps", &self.reps)
            .build()
    }
}

impl MeasureSchedule {
    /// The paper's schedule (3–5 wall minutes on period hardware).
    pub fn paper() -> Self {
        Self { loop_start: 300, loop_min_time: 2.5e-3, loop_max_time: 5e-3, reps: 3 }
    }

    /// A scaled-down schedule for CI and large simulated machines.
    pub fn quick() -> Self {
        Self { loop_start: 8, loop_min_time: 2.5e-3, loop_max_time: 5e-3, reps: 1 }
    }

    /// Adapt the looplength after observing `dt` seconds for
    /// `looplength` iterations.
    pub fn adapt(&self, looplength: u32, dt: Secs) -> u32 {
        if dt <= 0.0 {
            return looplength;
        }
        let per_iter = dt / looplength as f64;
        let target = 0.5 * (self.loop_min_time + self.loop_max_time);
        let next = (target / per_iter).floor();
        (next as u32).clamp(1, self.loop_start)
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Bandwidth in MByte/s (aggregate over all ranks).
    pub mbps: f64,
    /// Max-over-ranks elapsed time of the loop.
    pub dt: Secs,
    /// Looplength used.
    pub looplength: u32,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::object()
            .field("mbps", &self.mbps)
            .field("dt", &self.dt)
            .field("looplength", &self.looplength)
            .build()
    }
}

/// Measure one (pattern, size, method) point: synchronize, run the
/// loop, reduce the max time, apply the formula. `messages` is the
/// total message count per iteration over all ranks (2·n for rings).
#[allow(clippy::too_many_arguments)]
pub fn measure_point(
    comm: &mut Comm,
    tr: &mut Transfers,
    method: Method,
    left: usize,
    right: usize,
    len: u64,
    messages: u64,
    looplength: u32,
) -> Measurement {
    comm.barrier();
    let t0 = comm.now();
    for _ in 0..looplength {
        tr.ring_iteration(comm, method, left, right, len);
    }
    let dt_local = comm.now() - t0;
    let dt = comm.allreduce_scalar(dt_local, ReduceOp::Max);
    let bytes = len as f64 * messages as f64 * looplength as f64;
    Measurement { mbps: bytes / MB as f64 / dt.max(1e-12), dt, looplength }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_values() {
        let s = MeasureSchedule::paper();
        assert_eq!(s.loop_start, 300);
        assert_eq!(s.reps, 3);
        assert_eq!(s.loop_min_time, 2.5e-3);
    }

    #[test]
    fn adapt_shrinks_long_loops() {
        let s = MeasureSchedule::paper();
        // 300 iterations took 3 s: ~10 ms each; target 3.75 ms -> 1
        assert_eq!(s.adapt(300, 3.0), 1);
        // 300 iterations in 1 ms: plenty of headroom, clamped at start
        assert_eq!(s.adapt(300, 1e-3), 300);
    }

    #[test]
    fn adapt_stays_in_window() {
        let s = MeasureSchedule::paper();
        // 100 iters in 2.5 ms -> 25 us/iter -> target 3.75 ms -> 150
        assert_eq!(s.adapt(100, 2.5e-3), 150);
        // degenerate zero time: unchanged
        assert_eq!(s.adapt(42, 0.0), 42);
    }

    #[test]
    fn adapt_never_below_one() {
        let s = MeasureSchedule::quick();
        assert_eq!(s.adapt(1, 100.0), 1);
    }

    #[test]
    fn measure_point_computes_formula() {
        use beff_netsim::{MachineNet, NetParams, Topology};
        use std::sync::Arc;
        let net =
            Arc::new(MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default()));
        let ms = beff_mpi::World::sim(net).run(|c| {
            let peer = 1 - c.rank();
            let mut tr = Transfers::new(c, 1 << 16);
            measure_point(c, &mut tr, Method::NonBlocking, peer, peer, 1 << 16, 4, 10)
        });
        // both ranks agree on the reduced measurement
        assert!((ms[0].mbps - ms[1].mbps).abs() < 1e-9);
        assert!(ms[0].mbps > 0.0);
        assert_eq!(ms[0].looplength, 10);
        // sanity: cannot exceed 2x the port bandwidth budget (2 ports
        // x 300 MB/s on the default model)
        assert!(ms[0].mbps < 2.0 * 300.0 * 1.1, "mbps={}", ms[0].mbps);
    }
}
