//! Ring and random communication patterns (§4, "On communication
//! patterns"), including the remainder rules of the paper's six ring
//! patterns and the `ring_numbers.c` partition algorithm.
//!
//! A *pattern* assigns every rank a left and a right neighbor inside
//! its ring. Rings of size 2 have `left == right` (the two messages of
//! an iteration go to the same peer).

use beff_json::{Json, ToJson};
use beff_netsim::Rng64;

/// A communication pattern: per-rank (left, right) neighbors, plus a
/// descriptive name and whether it belongs to the random family.
#[derive(Debug, Clone)]
pub struct Pattern {
    pub name: String,
    pub random: bool,
    /// neighbor pair per rank: (left, right)
    pub neighbors: Vec<(usize, usize)>,
    /// ring sizes, for the protocol report
    pub ring_sizes: Vec<usize>,
}

impl ToJson for Pattern {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("random", &self.random)
            .field("neighbors", &self.neighbors)
            .field("ring_sizes", &self.ring_sizes)
            .build()
    }
}

/// Partition `n` ranks into rings of target size `s` following the
/// paper's remainder rules:
///
/// * remainder 0 — all rings of size `s`;
/// * `r ≤ s/2` and enough rings — `r` rings of `s+1`;
/// * else if enough rings — `s−r` rings of `s−1`;
/// * else — greedy fill with a final split of the remainder.
///
/// Reproduces the published examples: size 4 → "1*3, 1*5, or 2*5";
/// size 8 → "3*7 … 1*7, 1*9 … 4*9"; 29 = 7+7+7+8; 28 = 4*7.
pub fn ring_sizes(n: usize, s: usize) -> Vec<usize> {
    assert!(n >= 1 && s >= 2);
    // Too few ranks for two full rings: one ring holds everyone (the
    // paper's "less or equal 7 → one ring" rule for target 4).
    if n < 2 * s {
        return vec![n];
    }
    let k = n / s;
    let r = n % s;
    if r == 0 {
        return vec![s; k];
    }
    if r <= s / 2 && r <= k {
        // r rings of s+1, the rest of size s
        let mut v = vec![s + 1; r];
        v.extend(std::iter::repeat_n(s, k - r));
        return v;
    }
    if s - r <= k + 1 && s >= 3 {
        // s-r rings of s-1, the rest (k+1-(s-r)) of size s
        let a = s - r;
        let b = k + 1 - a;
        let mut v = vec![s; b];
        v.extend(std::iter::repeat_n(s - 1, a));
        return v;
    }
    // fallback: rings of s while more than 2s remain, then split the
    // rest into two roughly equal rings (each >= 2)
    let mut v = Vec::new();
    let mut left = n;
    while left > 2 * s {
        v.push(s);
        left -= s;
    }
    if left > s + 1 {
        v.push(left / 2);
        v.push(left - left / 2);
    } else {
        v.push(left);
    }
    v
}

/// The six target ring sizes of the paper for `n` ranks (clamped to
/// the world size; small worlds repeat the full ring).
pub fn ring_targets(n: usize) -> [usize; 6] {
    let clamp2n = |t: usize| t.min(n).max(2);
    [
        2,
        clamp2n(4),
        clamp2n(8),
        clamp2n(16.max(n / 4)),
        clamp2n(32.max(n / 2)),
        n.max(2),
    ]
}

/// Build the neighbor table for rings over `order` (ranks in ring
/// order, consecutive ranks share a ring per `sizes`).
fn neighbors_from_rings(order: &[usize], sizes: &[usize]) -> Vec<(usize, usize)> {
    let n = order.len();
    debug_assert_eq!(sizes.iter().sum::<usize>(), n, "ring sizes must cover all ranks");
    let mut out = vec![(usize::MAX, usize::MAX); n];
    let mut base = 0usize;
    for &sz in sizes {
        for i in 0..sz {
            let me = order[base + i];
            let left = order[base + (i + sz - 1) % sz];
            let right = order[base + (i + 1) % sz];
            out[me] = (left, right);
        }
        base += sz;
    }
    debug_assert!(out.iter().all(|&(l, r)| l != usize::MAX && r != usize::MAX));
    out
}

/// The six ring patterns on natural rank order.
pub fn ring_patterns(n: usize) -> Vec<Pattern> {
    let order: Vec<usize> = (0..n).collect();
    ring_targets(n)
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let sizes = ring_sizes(n, s);
            Pattern {
                name: format!("ring-{} (target {s})", i + 1),
                random: false,
                neighbors: neighbors_from_rings(&order, &sizes),
                ring_sizes: sizes,
            }
        })
        .collect()
}

/// The six random patterns: the same ring layouts over a seeded random
/// permutation of the ranks (a fresh permutation per pattern).
pub fn random_patterns(n: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = Rng64::new(seed);
    ring_targets(n)
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let order = rng.permutation(n);
            let sizes = ring_sizes(n, s);
            Pattern {
                name: format!("random-{} (target {s})", i + 1),
                random: true,
                neighbors: neighbors_from_rings(&order, &sizes),
                ring_sizes: sizes,
            }
        })
        .collect()
}

/// Messages sent per iteration of a pattern (2 per rank: one to each
/// neighbor) — the message count of the bandwidth formula.
pub fn messages_per_iteration(n: usize) -> u64 {
    2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(n: usize, sizes: &[usize]) {
        assert_eq!(sizes.iter().sum::<usize>(), n, "sizes {sizes:?} for n={n}");
        assert!(sizes.iter().all(|&s| s >= 2), "ring of <2: {sizes:?}");
    }

    #[test]
    fn pattern1_rings_of_two_and_three() {
        assert_eq!(ring_sizes(6, 2), vec![2, 2, 2]);
        // 7 ranks: paper's example — 0&1, 2&3, 4&5&6
        let v = ring_sizes(7, 2);
        check_cover(7, &v);
        assert!(v.contains(&3));
        assert_eq!(v.iter().filter(|&&s| s == 2).count(), 2);
    }

    #[test]
    fn pattern2_remainders_match_paper() {
        // "the last rings may have the sizes 1*3, 1*5, or 2*5"
        assert_eq!(ring_sizes(9, 4), vec![5, 4]); // 1*5
        assert_eq!(ring_sizes(10, 4), vec![5, 5]); // 2*5
        let v = ring_sizes(11, 4); // 1*3
        check_cover(11, &v);
        assert!(v.contains(&3));
        // n <= 7: one ring
        assert_eq!(ring_sizes(7, 4), vec![7]);
        assert_eq!(ring_sizes(4, 4), vec![4]);
    }

    #[test]
    fn pattern3_remainders_match_paper() {
        // "3*7, ... 1*7, 1*9, ... 4*9"
        assert_eq!(ring_sizes(33, 8), vec![9, 8, 8, 8]); // 1*9
        assert_eq!(ring_sizes(36, 8), vec![9, 9, 9, 9]); // 4*9
        assert_eq!(ring_sizes(29, 8), vec![8, 7, 7, 7]); // 29 = 7+7+7+8
        assert_eq!(ring_sizes(28, 8), vec![7, 7, 7, 7]); // 4*7
        let v = ring_sizes(39, 8); // r=7 -> 1*7
        check_cover(39, &v);
        assert_eq!(v.iter().filter(|&&s| s == 7).count(), 1);
    }

    #[test]
    fn all_sizes_cover_for_many_n() {
        for n in 2..=200 {
            for s in [2, 4, 8, 16, 32] {
                check_cover(n, &ring_sizes(n, s));
            }
        }
    }

    #[test]
    fn targets_follow_min_max_rules() {
        assert_eq!(ring_targets(128), [2, 4, 8, 32, 64, 128]);
        assert_eq!(ring_targets(512), [2, 4, 8, 128, 256, 512]);
        assert_eq!(ring_targets(24), [2, 4, 8, 16, 24, 24]);
        assert_eq!(ring_targets(2), [2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn neighbors_are_mutual_along_rings() {
        for n in [2usize, 5, 7, 16, 33] {
            for p in ring_patterns(n) {
                for (me, &(l, r)) in p.neighbors.iter().enumerate() {
                    // my right neighbor's left neighbor is me
                    assert_eq!(p.neighbors[r].0, me, "{} n={n} me={me}", p.name);
                    assert_eq!(p.neighbors[l].1, me, "{} n={n} me={me}", p.name);
                }
            }
        }
    }

    #[test]
    fn ring_of_two_has_left_equal_right() {
        let p = &ring_patterns(4)[0]; // rings of 2
        for &(l, r) in &p.neighbors {
            assert_eq!(l, r);
        }
    }

    #[test]
    fn six_plus_six_patterns() {
        assert_eq!(ring_patterns(16).len(), 6);
        assert_eq!(random_patterns(16, 1).len(), 6);
    }

    #[test]
    fn random_patterns_are_deterministic_and_distinct() {
        let a = random_patterns(32, 7);
        let b = random_patterns(32, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.neighbors, y.neighbors);
        }
        let c = random_patterns(32, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.neighbors != y.neighbors));
    }

    #[test]
    fn random_pattern_neighbors_are_permutation_consistent() {
        for p in random_patterns(24, 3) {
            for (me, &(l, r)) in p.neighbors.iter().enumerate() {
                assert_eq!(p.neighbors[r].0, me, "{}", p.name);
                assert_eq!(p.neighbors[l].1, me, "{}", p.name);
            }
        }
    }

    #[test]
    fn last_pattern_is_one_big_ring() {
        let ps = ring_patterns(10);
        assert_eq!(ps[5].ring_sizes, vec![10]);
        // in one ring of n, left/right differ for n > 2
        for &(l, r) in &ps[5].neighbors {
            assert_ne!(l, r);
        }
    }
}
