//! Generic next-free-time reservation — the single contention primitive
//! of the whole simulation.
//!
//! A [`Resource`] is anything that serializes work in time: a network
//! link, a disk, an I/O server CPU, a memory bus. Callers ask to occupy
//! it for `duration` seconds starting no earlier than `earliest`; the
//! resource answers with the actual start time (max of `earliest` and
//! its previous next-free time) and remembers the new next-free time.
//!
//! Reservation order follows the deterministic token scheduler's rank
//! interleaving, which is a pure function of the program's own
//! communication structure — so contended results are bit-identical
//! across runs (DESIGN.md §3, *Simulator execution model*).

use crate::units::Secs;
use beff_sync::Mutex;

/// A serially-reusable resource with a next-free-time.
#[derive(Debug, Default)]
pub struct Resource {
    next_free: Mutex<Secs>,
}

impl Resource {
    pub fn new() -> Self {
        Self { next_free: Mutex::new(0.0) }
    }

    /// Reserve the resource for `duration` seconds, starting no earlier
    /// than `earliest`. Returns the actual start time.
    pub fn reserve(&self, earliest: Secs, duration: Secs) -> Secs {
        debug_assert!(duration >= 0.0, "negative duration {duration}");
        let mut nf = self.next_free.lock();
        let start = earliest.max(*nf);
        *nf = start + duration;
        start
    }

    /// Like [`reserve`](Self::reserve) but returns the *finish* time,
    /// which is what most cost computations want.
    #[inline]
    pub fn reserve_finish(&self, earliest: Secs, duration: Secs) -> Secs {
        self.reserve(earliest, duration) + duration
    }

    /// Current next-free time (for drain/sync style queries).
    pub fn horizon(&self) -> Secs {
        *self.next_free.lock()
    }

    /// Reset to idle at t=0 (used between benchmark repetitions in
    /// tests; production runs never rewind time).
    pub fn reset(&self) {
        *self.next_free.lock() = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_serialize() {
        let r = Resource::new();
        assert_eq!(r.reserve(0.0, 1.0), 0.0);
        // Asked for t=0 again, but the resource is busy until t=1.
        assert_eq!(r.reserve(0.0, 1.0), 1.0);
        assert_eq!(r.horizon(), 2.0);
    }

    #[test]
    fn idle_gap_is_respected() {
        let r = Resource::new();
        r.reserve(0.0, 1.0);
        // Arriving later than the horizon starts immediately.
        assert_eq!(r.reserve(5.0, 2.0), 5.0);
        assert_eq!(r.horizon(), 7.0);
    }

    #[test]
    fn reserve_finish_is_start_plus_duration() {
        let r = Resource::new();
        assert_eq!(r.reserve_finish(3.0, 2.0), 5.0);
        assert_eq!(r.reserve_finish(0.0, 1.0), 6.0);
    }

    #[test]
    fn zero_duration_reservation_is_ok() {
        let r = Resource::new();
        assert_eq!(r.reserve(1.0, 0.0), 1.0);
        assert_eq!(r.horizon(), 1.0);
    }

    #[test]
    fn reset_rewinds() {
        let r = Resource::new();
        r.reserve(0.0, 10.0);
        r.reset();
        assert_eq!(r.horizon(), 0.0);
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        use std::sync::Arc;
        let r = Arc::new(Resource::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut spans = Vec::new();
                for _ in 0..100 {
                    let s = r.reserve(0.0, 0.5);
                    spans.push((s, s + 0.5));
                }
                spans
            }));
        }
        let mut all: Vec<(f64, f64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-9, "overlapping spans {w:?}");
        }
        assert_eq!(r.horizon(), 8.0 * 100.0 * 0.5);
    }
}
