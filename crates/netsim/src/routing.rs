//! Route caching for hot communication paths.
//!
//! The b_eff inner loops send millions of messages between a handful of
//! (src, dst) pairs; recomputing (and re-allocating) the link path per
//! message would dominate simulation cost. [`RouteCache`] memoizes the
//! paths a rank uses. One cache lives on each rank thread, so no
//! synchronization is needed.

use crate::topology::Topology;
use std::collections::HashMap;

/// A route split into sender-booked and receiver-booked halves.
#[derive(Debug, Clone)]
pub struct SplitRoute {
    pub egress: Box<[usize]>,
    pub ingress: Box<[usize]>,
}

/// Per-rank memo of (src, dst) → link path.
#[derive(Debug)]
pub struct RouteCache {
    topo: Topology,
    map: HashMap<(u32, u32), Box<[usize]>>,
    split: HashMap<(u32, u32), SplitRoute>,
}

impl RouteCache {
    pub fn new(topo: Topology) -> Self {
        Self { topo, map: HashMap::new(), split: HashMap::new() }
    }

    /// The link path from `src` to `dst` (empty for self-messages).
    pub fn path(&mut self, src: usize, dst: usize) -> &[usize] {
        self.map
            .entry((src as u32, dst as u32))
            .or_insert_with(|| self.topo.route(src, dst).into_boxed_slice())
    }

    /// The split route from `src` to `dst` (both halves empty for
    /// self-messages).
    pub fn split(&mut self, src: usize, dst: usize) -> &SplitRoute {
        self.split.entry((src as u32, dst as u32)).or_insert_with(|| {
            let mut e = Vec::new();
            let mut i = Vec::new();
            self.topo.route_split_into(src, dst, &mut e, &mut i);
            SplitRoute { egress: e.into_boxed_slice(), ingress: i.into_boxed_slice() }
        })
    }

    /// Number of memoized pairs (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_path_as_topology() {
        let topo = Topology::Torus2D { dims: [4, 4] };
        let mut cache = RouteCache::new(topo.clone());
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(cache.path(s, d), topo.route(s, d).as_slice());
            }
        }
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn cache_does_not_grow_on_repeats() {
        let mut cache = RouteCache::new(Topology::Ring { procs: 8 });
        cache.path(0, 1);
        cache.path(0, 1);
        cache.path(0, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn split_cache_matches_topology() {
        let topo = Topology::Crossbar { procs: 4 };
        let mut cache = RouteCache::new(topo.clone());
        let sr = cache.split(1, 3).clone();
        let (mut e, mut i) = (Vec::new(), Vec::new());
        topo.route_split_into(1, 3, &mut e, &mut i);
        assert_eq!(&*sr.egress, e.as_slice());
        assert_eq!(&*sr.ingress, i.as_slice());
        let sr2 = cache.split(2, 2);
        assert!(sr2.egress.is_empty() && sr2.ingress.is_empty());
    }

    #[test]
    fn self_path_is_empty() {
        let mut cache = RouteCache::new(Topology::Crossbar { procs: 4 });
        assert!(cache.path(2, 2).is_empty());
    }
}
