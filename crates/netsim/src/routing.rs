//! Route memoization for hot communication paths.
//!
//! The b_eff inner loops send millions of messages between a handful of
//! (src, dst) pairs; recomputing (and re-allocating) the link path per
//! message would dominate simulation cost. A single [`RouteTable`]
//! lives on each [`MachineNet`](crate::MachineNet) and is shared by
//! every rank of every world simulated on that machine: routes are
//! computed once per (src, dst) pair per *machine*, not once per rank
//! (the old per-rank `RouteCache` cloned the topology and re-derived
//! identical routes 512 times on the largest modeled system).
//!
//! Interior locking is sharded by pair so that 512 rank threads warming
//! the table concurrently do not serialize on one lock; steady-state
//! lookups take a shard read lock only.

use crate::topology::Topology;
use beff_sync::{Rank, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A route split into sender-booked and receiver-booked halves.
#[derive(Debug, Clone)]
pub struct SplitRoute {
    pub egress: Box<[usize]>,
    pub ingress: Box<[usize]>,
}

impl SplitRoute {
    /// The full path: egress links followed by ingress links.
    pub fn full(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.egress.len() + self.ingress.len());
        v.extend_from_slice(&self.egress);
        v.extend_from_slice(&self.ingress);
        v
    }
}

const SHARDS: usize = 16;

/// Lock-hierarchy position of every route-table shard (DESIGN.md §8).
/// One level for all 16 shards: no code path ever holds two shards at
/// once (`split` touches exactly one, `len` reads them sequentially).
static ROUTES_RANK: Rank = Rank::new(70, "netsim.routes");

/// Machine-wide, lazily-memoized all-pairs route table.
///
/// Shards hold `BTreeMap`s, not `HashMap`s: route enumeration order is
/// structural (sorted by pair), never hasher-dependent, so any future
/// diagnostic walk over the table is bitwise-reproducible for free.
#[derive(Debug)]
pub struct RouteTable {
    shards: [RwLock<BTreeMap<(u32, u32), Arc<SplitRoute>>>; SHARDS],
}

impl Default for RouteTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteTable {
    pub fn new() -> Self {
        Self { shards: std::array::from_fn(|_| RwLock::ranked(&ROUTES_RANK, BTreeMap::new())) }
    }

    #[inline]
    fn shard(src: usize, dst: usize) -> usize {
        // src and dst are proc indices (< 2^16 in practice); mix both so
        // neighboring pairs spread over the shards.
        (src.wrapping_mul(31).wrapping_add(dst)) % SHARDS
    }

    /// The split route from `src` to `dst` (both halves empty for
    /// self-messages), computing and memoizing it on first use.
    pub fn split(&self, topo: &Topology, src: usize, dst: usize) -> Arc<SplitRoute> {
        let key = (src as u32, dst as u32);
        let shard = &self.shards[Self::shard(src, dst)];
        if let Some(r) = shard.read().get(&key) {
            return Arc::clone(r);
        }
        // Compute outside the write lock; a racing thread may compute
        // the same route, in which case the first insert wins.
        let mut e = Vec::new();
        let mut i = Vec::new();
        topo.route_split_into(src, dst, &mut e, &mut i);
        let route = Arc::new(SplitRoute {
            egress: e.into_boxed_slice(),
            ingress: i.into_boxed_slice(),
        });
        Arc::clone(shard.write().entry(key).or_insert(route))
    }

    /// Number of memoized pairs (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_topology_for_all_pairs() {
        let topo = Topology::Torus2D { dims: [4, 4] };
        let table = RouteTable::new();
        for s in 0..16 {
            for d in 0..16 {
                let sr = table.split(&topo, s, d);
                let (mut e, mut i) = (Vec::new(), Vec::new());
                topo.route_split_into(s, d, &mut e, &mut i);
                assert_eq!(&*sr.egress, e.as_slice(), "{s}->{d}");
                assert_eq!(&*sr.ingress, i.as_slice(), "{s}->{d}");
                assert_eq!(sr.full(), topo.route(s, d), "{s}->{d}");
            }
        }
        assert_eq!(table.len(), 256);
    }

    #[test]
    fn table_does_not_grow_on_repeats() {
        let topo = Topology::Ring { procs: 8 };
        let table = RouteTable::new();
        table.split(&topo, 0, 1);
        table.split(&topo, 0, 1);
        table.split(&topo, 0, 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn repeated_lookups_share_one_allocation() {
        let topo = Topology::Crossbar { procs: 4 };
        let table = RouteTable::new();
        let a = table.split(&topo, 1, 3);
        let b = table.split(&topo, 1, 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn self_route_is_empty() {
        let table = RouteTable::new();
        let sr = table.split(&Topology::Crossbar { procs: 4 }, 2, 2);
        assert!(sr.egress.is_empty() && sr.ingress.is_empty());
    }

    #[test]
    fn concurrent_warmup_is_consistent() {
        let topo = Topology::Torus3D { dims: [4, 4, 4] };
        let table = Arc::new(RouteTable::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let table = Arc::clone(&table);
                let topo = &topo;
                s.spawn(move || {
                    for src in 0..64 {
                        let dst = (src + t + 1) % 64;
                        let sr = table.split(topo, src, dst);
                        assert_eq!(sr.full(), topo.route(src, dst));
                    }
                });
            }
        });
        assert!(table.len() <= 64 * 8);
    }
}
