//! Traffic statistics: per-link-kind aggregation of the bytes and
//! messages a benchmark run pushed through the machine. Useful for
//! validating where a pattern's traffic actually went (e.g. the b_eff
//! random patterns load torus hop links far more than ring patterns).

use crate::model::MachineNet;
use crate::topology::LinkKind;
use beff_json::{Json, ToJson};

/// Aggregated traffic of one link kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindStats {
    pub links: usize,
    pub bytes: u64,
    pub messages: u64,
    /// Bytes on the busiest single link of the kind.
    pub max_link_bytes: u64,
}

impl ToJson for KindStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("links", &self.links)
            .field("bytes", &self.bytes)
            .field("messages", &self.messages)
            .field("max_link_bytes", &self.max_link_bytes)
            .build()
    }
}

/// A traffic report over all link kinds.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    pub port_out: KindStats,
    pub port_in: KindStats,
    pub node_mem: KindStats,
    pub hop: KindStats,
    pub membus: KindStats,
    pub nic_out: KindStats,
    pub nic_in: KindStats,
}

impl ToJson for TrafficReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("port_out", &self.port_out)
            .field("port_in", &self.port_in)
            .field("node_mem", &self.node_mem)
            .field("hop", &self.hop)
            .field("membus", &self.membus)
            .field("nic_out", &self.nic_out)
            .field("nic_in", &self.nic_in)
            .build()
    }
}

impl TrafficReport {
    /// Total bytes over every link (each traversal counted once).
    pub fn total_bytes(&self) -> u64 {
        self.port_out.bytes
            + self.port_in.bytes
            + self.node_mem.bytes
            + self.hop.bytes
            + self.membus.bytes
            + self.nic_out.bytes
            + self.nic_in.bytes
    }

    /// Hop-to-port byte ratio: > 1 means multi-hop traffic dominates
    /// (e.g. random patterns on a torus).
    pub fn hops_per_message(&self) -> f64 {
        if self.port_out.messages == 0 {
            return 0.0;
        }
        self.hop.messages as f64 / self.port_out.messages as f64
    }
}

/// Collect a traffic report from a machine's links.
pub fn traffic_report(net: &MachineNet) -> TrafficReport {
    let topo = net.topology();
    // BTreeMap: aggregation walks in kind-index order, so the report is
    // structurally ordered rather than hasher-ordered.
    let mut kinds = std::collections::BTreeMap::new();
    for (i, link) in net.links().iter().enumerate() {
        let k = topo.link_kind(i);
        let e = kinds.entry(kind_index(k)).or_insert(KindStats::default());
        e.links += 1;
        e.bytes += link.bytes_carried();
        e.messages += link.messages_carried();
        e.max_link_bytes = e.max_link_bytes.max(link.bytes_carried());
    }
    let get = |k: LinkKind| kinds.get(&kind_index(k)).copied().unwrap_or_default();
    TrafficReport {
        port_out: get(LinkKind::PortOut),
        port_in: get(LinkKind::PortIn),
        node_mem: get(LinkKind::NodeMem),
        hop: get(LinkKind::Hop),
        membus: get(LinkKind::MemBus),
        nic_out: get(LinkKind::NicOut),
        nic_in: get(LinkKind::NicIn),
    }
}

fn kind_index(k: LinkKind) -> u8 {
    match k {
        LinkKind::PortOut => 0,
        LinkKind::PortIn => 1,
        LinkKind::NodeMem => 2,
        LinkKind::Hop => 3,
        LinkKind::MemBus => 4,
        LinkKind::NicOut => 5,
        LinkKind::NicIn => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetParams;
    use crate::topology::Topology;
    use crate::units::MB;

    #[test]
    fn report_attributes_traffic_to_kinds() {
        let net = MachineNet::new(Topology::Ring { procs: 4 }, NetParams::default());
        net.transfer(0, 1, MB, 0.0);
        net.transfer(0, 2, MB, 0.0); // two hops
        let r = traffic_report(&net);
        assert_eq!(r.port_out.messages, 2);
        assert_eq!(r.port_in.messages, 2);
        assert_eq!(r.node_mem.messages, 4); // both endpoints each transfer
        assert_eq!(r.hop.messages, 3); // 1 + 2 hops
        assert_eq!(r.port_out.bytes, 2 * MB);
        assert!(r.total_bytes() > 0);
        assert!((r.hops_per_message() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_machine_reports_zero() {
        let net = MachineNet::new(Topology::Crossbar { procs: 2 }, NetParams::default());
        let r = traffic_report(&net);
        assert_eq!(r.total_bytes(), 0);
        assert_eq!(r.hops_per_message(), 0.0);
    }

    #[test]
    fn max_link_bytes_tracks_hotspot() {
        let net = MachineNet::new(Topology::Crossbar { procs: 4 }, NetParams::default());
        net.transfer(0, 1, 10 * MB, 0.0);
        net.transfer(2, 1, MB, 0.0);
        let r = traffic_report(&net);
        // rank 1's node memory saw 11 MB (two incoming drains… via full
        // path pricing both mem links are booked by transfer())
        assert!(r.node_mem.max_link_bytes >= 10 * MB);
    }
}
