//! The machine network cost model.
//!
//! [`MachineNet`] combines a [`Topology`] with per-link-kind parameters
//! ([`NetParams`]) and prices individual message transfers. The model is
//! LogGP-flavored:
//!
//! * `o_send` / `o_recv` — per-message CPU overheads (applied to the
//!   rank's virtual clock by the MPI engine),
//! * per-link latency — head-of-message propagation,
//! * per-link byte time — serial occupancy (1/bandwidth), reserved on
//!   the link's [`Resource`](crate::resource::Resource) so that
//!   concurrent messages crossing the same wire contend,
//! * streaming/pipelining — a message occupies consecutive links in a
//!   pipelined fashion, so an uncontended transfer costs
//!   `sum(latencies) + bytes * max(byte_time)`, not the sum of
//!   per-link transfer times.
//!
//! An optional **backplane** resource models machines whose aggregate
//! memory bandwidth saturates before the per-proc ports do (classic
//! shared-memory SMPs like the HP-V).
//!
//! Shared resources (torus hops, NICs, node buses, the backplane) can
//! additionally run in **fair-share contention mode**
//! ([`NetParams::contention`]): queued traffic is billed `factor` × its
//! serial time, so K simultaneous streams share the wire at
//! `bandwidth / factor` aggregate while an uncontended stream (e.g.
//! ping-pong) still sees the full rate. This reproduces the gap real
//! machines show between single-stream and many-stream effective rates
//! that ideal FIFO packing cannot express.

use crate::link::Link;
use crate::routing::{RouteTable, SplitRoute};
use crate::topology::{LinkKind, Topology};
use crate::units::{byte_time, Secs};
use beff_json::{Json, ToJson};
use std::sync::Arc;

/// Latency/bandwidth pair for one link kind.
#[derive(Debug, Clone, Copy)]
pub struct Tier {
    /// Head latency in seconds.
    pub latency: Secs,
    /// Bandwidth in MByte/s (binary MB, matching the paper's units).
    pub mbps: f64,
}

impl Tier {
    pub const fn new(latency: Secs, mbps: f64) -> Self {
        Self { latency, mbps }
    }
    #[inline]
    pub fn byte_time(&self) -> Secs {
        byte_time(self.mbps)
    }
}

impl ToJson for Tier {
    fn to_json(&self) -> Json {
        Json::object()
            .field("latency", &self.latency)
            .field("mbps", &self.mbps)
            .build()
    }
}

/// Cost parameters of a machine's communication subsystem.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Sender CPU overhead per message (seconds).
    pub o_send: Secs,
    /// Receiver CPU overhead per message (seconds).
    pub o_recv: Secs,
    /// Bandwidth of a rank-to-self message (local memcpy), MByte/s.
    pub self_mbps: f64,
    /// Per-proc transmit/receive port (each direction separately).
    pub port: Tier,
    /// Per-proc memory system: all inbound *and* outbound bytes cross
    /// it, so bidirectional traffic halves the per-direction rate.
    pub node_mem: Tier,
    /// Ring/torus hop.
    pub hop: Tier,
    /// Reserved: SMP node bus aggregate (currently not routed — the
    /// per-rank NodeMem lanes bound node throughput; see topology docs).
    pub membus: Tier,
    /// SMP node NIC (both directions).
    pub nic: Tier,
    /// Optional machine-wide aggregate bandwidth ceiling.
    pub backplane: Option<Tier>,
    /// Fair-share contention factor for *shared* resources (torus hops,
    /// NICs, node buses, the backplane — see [`LinkKind::is_shared`]):
    /// a message that has to queue behind other traffic occupies
    /// `factor` × its serial time, so K simultaneous streams share the
    /// wire at `bandwidth / factor` aggregate while a lone stream still
    /// sees the full rate. `1.0` reproduces ideal FIFO packing
    /// bit-for-bit; real arbitration measures above it (calibrated
    /// per machine against the paper's Table 1).
    pub contention: f64,
}

impl Default for NetParams {
    /// A generic, unremarkable MPP: ~10 us latency, ~300 MB/s ports,
    /// ~1 GB/s hops. Machine crates override everything.
    fn default() -> Self {
        Self {
            o_send: 3e-6,
            o_recv: 3e-6,
            self_mbps: 2000.0,
            port: Tier::new(2e-6, 300.0),
            node_mem: Tier::new(0.0, 330.0),
            hop: Tier::new(0.5e-6, 1000.0),
            membus: Tier::new(1e-6, 800.0),
            nic: Tier::new(5e-6, 150.0),
            backplane: None,
            contention: 1.0,
        }
    }
}

impl ToJson for NetParams {
    fn to_json(&self) -> Json {
        Json::object()
            .field("o_send", &self.o_send)
            .field("o_recv", &self.o_recv)
            .field("self_mbps", &self.self_mbps)
            .field("port", &self.port)
            .field("node_mem", &self.node_mem)
            .field("hop", &self.hop)
            .field("membus", &self.membus)
            .field("nic", &self.nic)
            .field("backplane", &self.backplane)
            .field("contention", &self.contention)
            .build()
    }
}

impl NetParams {
    fn tier_for(&self, kind: LinkKind) -> Tier {
        match kind {
            LinkKind::PortOut | LinkKind::PortIn => self.port,
            LinkKind::NodeMem => self.node_mem,
            LinkKind::Hop => self.hop,
            LinkKind::MemBus => self.membus,
            LinkKind::NicOut | LinkKind::NicIn => self.nic,
        }
    }
}

/// Outcome of pricing one message (full-path form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// When the sender-side resource is free again (send completion for
    /// buffered/eager semantics).
    pub injected: Secs,
    /// When the last byte is available at the receiver.
    pub arrival: Secs,
}

/// Outcome of pricing the egress portion of a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Egress {
    /// Sender-side completion (first egress resource free again).
    pub injected: Secs,
    /// When the stream began flowing on the last egress link (the
    /// earliest the ingress side can start draining).
    pub head: Secs,
    /// When the last byte left the egress path.
    pub finish: Secs,
}

/// A topology instantiated with links and ready to price transfers.
#[derive(Debug)]
pub struct MachineNet {
    topo: Topology,
    params: NetParams,
    links: Vec<Link>,
    backplane: Option<Link>,
    routes: RouteTable,
}

impl MachineNet {
    pub fn new(topo: Topology, params: NetParams) -> Self {
        let links = (0..topo.num_links())
            .map(|l| {
                let kind = topo.link_kind(l);
                let tier = params.tier_for(kind);
                let factor = if kind.is_shared() { params.contention } else { 1.0 };
                Link::with_contention(tier.latency, tier.byte_time(), factor)
            })
            .collect();
        let backplane = params
            .backplane
            .map(|t| Link::with_contention(t.latency, t.byte_time(), params.contention));
        Self { topo, params, links, backplane, routes: RouteTable::new() }
    }

    pub fn procs(&self) -> usize {
        self.topo.procs()
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// The machine-wide shared route table: the split route from `src`
    /// to `dst`, memoized on first use and shared by every rank of every
    /// world simulated on this machine.
    pub fn split_route(&self, src: usize, dst: usize) -> Arc<SplitRoute> {
        self.routes.split(&self.topo, src, dst)
    }

    /// Number of (src, dst) pairs memoized so far (diagnostics).
    pub fn routes_memoized(&self) -> usize {
        self.routes.len()
    }

    /// The instantiated links (diagnostics; indices match the
    /// topology's link-id space).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Compute the link path for a message (delegates to the topology).
    #[inline]
    pub fn route_into(&self, src: usize, dst: usize, path: &mut Vec<usize>) {
        self.topo.route_into(src, dst, path);
    }

    /// Price a transfer along a precomputed full `path` (empty =
    /// self-message) with the last byte handed to the network at
    /// `inject`. Prefer the split
    /// [`price_egress`](Self::price_egress)/[`price_ingress`](Self::price_ingress)
    /// pair, which the MPI engine uses so each rank's endpoint
    /// resources are booked by its own thread.
    pub fn price(&self, path: &[usize], bytes: u64, inject: Secs) -> Transfer {
        let eg = self.price_egress(path, bytes, inject);
        Transfer { injected: eg.injected, arrival: eg.finish }
    }

    /// Price the sender-side portion of a transfer: the sender's port
    /// and node memory plus the network hops.
    pub fn price_egress(&self, path: &[usize], bytes: u64, inject: Secs) -> Egress {
        if path.is_empty() {
            let t = inject + bytes as f64 * byte_time(self.params.self_mbps);
            return Egress { injected: t, head: t, finish: t };
        }
        let mut head = inject;
        let mut finish: Secs = inject;
        let mut injected: Secs = inject;
        for (i, &l) in path.iter().enumerate() {
            let (start, fin) = self.links[l].traverse(head, bytes);
            head = start;
            if fin > finish {
                finish = fin;
            }
            if i == 0 {
                injected = fin;
            }
        }
        if let Some(bp) = &self.backplane {
            let (_, fin) = bp.traverse(inject, bytes);
            if fin > finish {
                finish = fin;
            }
        }
        Egress { injected, head, finish }
    }

    /// Price the receiver-side drain of a message whose stream reached
    /// the destination at `head` (start of the last egress occupancy)
    /// and whose last byte left the network at `floor`. Called on the
    /// receiving rank's thread, so the destination's memory and port-in
    /// are scheduled by a single thread and pack tightly.
    pub fn price_ingress(&self, path: &[usize], bytes: u64, head: Secs, floor: Secs) -> Secs {
        let mut h = head;
        let mut finish = floor;
        for &l in path {
            let (start, fin) = self.links[l].traverse(h, bytes);
            h = start;
            if fin > finish {
                finish = fin;
            }
        }
        finish
    }

    /// Sum of link head latencies along the `src → dst` route. A
    /// read-only cost query (no resource is reserved) for closed-form
    /// models such as the simulated collective rendezvous.
    pub fn route_latency(&self, src: usize, dst: usize) -> Secs {
        let sr = self.split_route(src, dst);
        sr.egress
            .iter()
            .chain(sr.ingress.iter())
            .map(|&l| self.links[l].latency)
            .sum()
    }

    /// Route + price in one call (allocates; hot paths should cache the
    /// route and call [`price`](Self::price)).
    pub fn transfer(&self, src: usize, dst: usize, bytes: u64, inject: Secs) -> Transfer {
        let mut path = Vec::new();
        self.topo.route_into(src, dst, &mut path);
        self.price(&path, bytes, inject)
    }

    /// Clear all link occupancy (tests / between independent runs).
    pub fn reset(&self) {
        for l in &self.links {
            l.reset();
        }
        if let Some(bp) = &self.backplane {
            bp.reset();
        }
    }

    /// The conservative-execution lookahead for this machine: the
    /// minimum head latency of any cross-rank route. Every message
    /// between distinct ranks pays at least this much virtual time on
    /// the wire, so a parallel executor may let shards drift apart by
    /// up to one lookahead without risking a causality miss
    /// (DESIGN.md §10).
    ///
    /// The minimum is sampled, not exhaustive: all topologies in the
    /// catalog are node-symmetric enough that adjacent pairs plus the
    /// wrap-around pair realize the shortest routes, and an all-pairs
    /// sweep would be O(procs²) route constructions on a 10k-rank
    /// machine. Latencies are per-tier constants, so the sample is
    /// exact for every shipped [`Topology`].
    pub fn lookahead(&self) -> Secs {
        let procs = self.procs();
        if procs < 2 {
            return 0.0;
        }
        let mut min = f64::INFINITY;
        for i in 0..(procs - 1).min(63) {
            min = min.min(self.route_latency(i, i + 1));
        }
        min = min.min(self.route_latency(0, procs - 1));
        min
    }

    /// A fresh machine with identical topology and parameters and no
    /// link occupancy — route memoization and reservations start
    /// empty. A replica is indistinguishable from `self` after
    /// [`reset`](Self::reset), which is what makes batch-parallel runs
    /// on replicas byte-identical to serial runs with a reset in
    /// between.
    pub fn replica(&self) -> Self {
        Self::new(self.topo.clone(), self.params.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MB;

    fn crossbar(procs: usize, port_mbps: f64) -> MachineNet {
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, port_mbps),
            backplane: None,
            ..NetParams::default()
        };
        MachineNet::new(Topology::Crossbar { procs }, params)
    }

    #[test]
    fn pingpong_streams_at_port_bandwidth() {
        // With zero latency, a single large transfer is port-limited and
        // pipelined: arrival ~= bytes/port_bw, not 2x.
        let net = crossbar(2, 100.0);
        let t = net.transfer(0, 1, 100 * MB, 0.0);
        assert!((t.arrival - 1.0).abs() < 1e-6, "arrival={}", t.arrival);
    }

    #[test]
    fn bidirectional_traffic_halves_per_direction_bandwidth() {
        // Ports are duplex, but every byte in or out crosses the node
        // memory: bidirectional traffic runs at half the one-way rate.
        // This is the Table-1 ping-pong vs ring-per-proc mechanism.
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, 1000.0),
            node_mem: Tier::new(0.0, 100.0),
            ..NetParams::default()
        };
        let net = MachineNet::new(Topology::Crossbar { procs: 2 }, params);
        let one_way = net.transfer(0, 1, 100 * MB, 0.0).arrival;
        assert!((0.9..1.1).contains(&one_way), "one_way={one_way}");
        net.reset();
        let a = net.transfer(0, 1, 100 * MB, 0.0);
        let b = net.transfer(1, 0, 100 * MB, 0.0);
        let finish = a.arrival.max(b.arrival);
        assert!(finish > 1.9 && finish < 2.2, "finish={finish}");
    }

    #[test]
    fn self_message_uses_memcpy_bandwidth() {
        let params = NetParams { self_mbps: 1000.0, ..NetParams::default() };
        let net = MachineNet::new(Topology::Crossbar { procs: 2 }, params);
        let t = net.transfer(0, 0, 1000 * MB, 0.0);
        assert!((t.arrival - 1.0).abs() < 1e-6);
        assert_eq!(t.injected, t.arrival);
    }

    #[test]
    fn latency_accumulates_over_hops() {
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(1e-6, 1e9), // effectively infinite bw
            node_mem: Tier::new(0.0, 1e9),
            hop: Tier::new(1e-6, 1e9),
            ..NetParams::default()
        };
        let net = MachineNet::new(Topology::Ring { procs: 8 }, params);
        let near = net.transfer(0, 1, 0, 0.0).arrival; // 2 ports + 1 hop
        assert!((near - 3e-6).abs() < 1e-12, "near={near}");
        net.reset();
        let far = net.transfer(0, 4, 0, 0.0).arrival; // 2 ports + 4 hops
        assert!((far - 6e-6).abs() < 1e-12, "far={far}");
    }

    #[test]
    fn backplane_caps_aggregate_bandwidth() {
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, 1000.0),
            backplane: Some(Tier::new(0.0, 1000.0)),
            ..NetParams::default()
        };
        let net = MachineNet::new(Topology::Crossbar { procs: 8 }, params);
        // Four disjoint pairs, each port-limited at 1000 MB/s, but the
        // backplane only carries 1000 MB/s in total.
        let mut finish: f64 = 0.0;
        for p in 0..4 {
            let t = net.transfer(2 * p, 2 * p + 1, 250 * MB, 0.0);
            finish = finish.max(t.arrival);
        }
        assert!(finish > 0.9 && finish < 1.1, "finish={finish}");
    }

    #[test]
    fn lookahead_is_the_minimum_cross_rank_latency() {
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(1e-6, 1e9),
            node_mem: Tier::new(0.0, 1e9),
            hop: Tier::new(1e-6, 1e9),
            ..NetParams::default()
        };
        // Ring nearest-neighbor route: 2 ports + 1 hop of latency.
        let net = MachineNet::new(Topology::Ring { procs: 8 }, params.clone());
        assert!((net.lookahead() - 3e-6).abs() < 1e-12, "lookahead={}", net.lookahead());
        // One proc has no cross-rank routes at all.
        let solo = MachineNet::new(Topology::Crossbar { procs: 1 }, params);
        assert_eq!(solo.lookahead(), 0.0);
    }

    #[test]
    fn replica_matches_a_reset_machine() {
        let net = MachineNet::new(Topology::Ring { procs: 8 }, NetParams::default());
        let warm = net.transfer(0, 3, MB, 0.0); // leaves occupancy behind
        assert!(warm.arrival > 0.0);
        let twin = net.replica();
        net.reset();
        let a = net.transfer(0, 3, MB, 0.0);
        let b = twin.transfer(0, 3, MB, 0.0);
        assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        assert_eq!(a.injected.to_bits(), b.injected.to_bits());
        assert_eq!(twin.routes_memoized(), 0, "replica starts with an empty route table");
        twin.split_route(0, 3);
        assert_eq!(twin.routes_memoized(), 1);
    }

    #[test]
    fn injected_before_arrival_on_multihop() {
        let net = MachineNet::new(Topology::Ring { procs: 16 }, NetParams::default());
        let t = net.transfer(0, 8, MB, 0.0);
        assert!(t.injected <= t.arrival);
        assert!(t.injected > 0.0);
    }

    #[test]
    fn contention_on_shared_hop_links() {
        // Two messages that share hop links must take longer than two
        // that do not.
        let params = NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, 1e6),
            hop: Tier::new(0.0, 100.0),
            ..NetParams::default()
        };
        let net = MachineNet::new(Topology::Ring { procs: 8 }, params);
        // 0->2 and 1->3 share the hop 1->2.
        let a = net.transfer(0, 2, 100 * MB, 0.0);
        let b = net.transfer(1, 3, 100 * MB, 0.0);
        let shared = a.arrival.max(b.arrival);
        net.reset();
        // 0->2 and 4->6 share nothing.
        let a = net.transfer(0, 2, 100 * MB, 0.0);
        let b = net.transfer(4, 6, 100 * MB, 0.0);
        let disjoint = a.arrival.max(b.arrival);
        assert!(shared > 1.5 * disjoint, "shared={shared} disjoint={disjoint}");
    }

    #[test]
    fn contention_factor_degrades_shared_links_only() {
        let params = |contention| NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, 1e6),
            node_mem: Tier::new(0.0, 1e6),
            hop: Tier::new(0.0, 100.0),
            contention,
            ..NetParams::default()
        };
        // Two messages sharing the hop 1->2: with factor 2 the queued
        // one pays double, so the pair takes ~1.5x the FIFO time.
        let fifo = MachineNet::new(Topology::Ring { procs: 8 }, params(1.0));
        let a = fifo.transfer(0, 2, 100 * MB, 0.0);
        let b = fifo.transfer(1, 3, 100 * MB, 0.0);
        let fifo_finish = a.arrival.max(b.arrival);
        let fair = MachineNet::new(Topology::Ring { procs: 8 }, params(2.0));
        let a = fair.transfer(0, 2, 100 * MB, 0.0);
        let b = fair.transfer(1, 3, 100 * MB, 0.0);
        let fair_finish = a.arrival.max(b.arrival);
        assert!(
            fair_finish > 1.4 * fifo_finish,
            "fair {fair_finish} vs fifo {fifo_finish}"
        );
        // An uncontended transfer is not penalized at all.
        fifo.reset();
        fair.reset();
        let lone_fifo = fifo.transfer(0, 2, 100 * MB, 0.0).arrival;
        let lone_fair = fair.transfer(0, 2, 100 * MB, 0.0).arrival;
        assert_eq!(lone_fifo.to_bits(), lone_fair.to_bits());
        // Per-rank endpoint resources stay FIFO even under the factor:
        // back-to-back sends from one rank on a contention-free
        // crossbar cost the same with and without it.
        let cross = |contention| {
            let p = NetParams {
                o_send: 0.0,
                o_recv: 0.0,
                port: Tier::new(0.0, 100.0),
                node_mem: Tier::new(0.0, 1e6),
                contention,
                ..NetParams::default()
            };
            let net = MachineNet::new(Topology::Crossbar { procs: 4 }, p);
            let t1 = net.transfer(0, 1, 100 * MB, 0.0).arrival;
            let t2 = net.transfer(0, 1, 100 * MB, 0.0).arrival;
            (t1, t2)
        };
        assert_eq!(cross(1.0), cross(3.0));
    }

    #[test]
    fn backplane_contention_caps_aggregate_below_fifo() {
        let params = |contention| NetParams {
            o_send: 0.0,
            o_recv: 0.0,
            port: Tier::new(0.0, 1000.0),
            backplane: Some(Tier::new(0.0, 1000.0)),
            contention,
            ..NetParams::default()
        };
        let run = |contention| {
            let net = MachineNet::new(Topology::Crossbar { procs: 8 }, params(contention));
            let mut finish: f64 = 0.0;
            for p in 0..4 {
                let t = net.transfer(2 * p, 2 * p + 1, 250 * MB, 0.0);
                finish = finish.max(t.arrival);
            }
            finish
        };
        let fifo = run(1.0);
        let fair = run(2.0);
        // 4 concurrent streams: 1 uncontended + 3 at double cost.
        assert!((fifo - 1.0).abs() < 0.1, "fifo={fifo}");
        assert!(fair > 1.6, "fair={fair}");
    }

    #[test]
    fn price_with_cached_route_matches_transfer() {
        let net = MachineNet::new(Topology::Torus2D { dims: [4, 4] }, NetParams::default());
        let mut path = Vec::new();
        net.route_into(3, 9, &mut path);
        let a = net.price(&path, MB, 0.0);
        net.reset();
        let b = net.transfer(3, 9, MB, 0.0);
        assert_eq!(a, b);
    }
}
