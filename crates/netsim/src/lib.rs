//! # beff-netsim
//!
//! Discrete-event, virtual-time network model used as the interconnect
//! substrate for the b_eff / b_eff_io benchmark reproduction.
//!
//! The model is a causal-timestamp (LogGP-style) simulation:
//!
//! * every MPI rank owns a [`clock::VClock`] (virtual seconds),
//! * a message transfer is priced by [`model::MachineNet::transfer`],
//!   which routes the message over the configured [`topology::Topology`]
//!   and reserves occupancy on every traversed [`link::Link`],
//! * contention emerges from link reservation: two messages crossing the
//!   same wire at the same virtual time serialize.
//!
//! The same crate also provides [`resource::Resource`], the generic
//! next-free-time reservation primitive reused by the parallel-filesystem
//! simulator (`beff-pfs`) for disks and I/O servers.
//!
//! Nothing here depends on the MPI layer: this crate answers only
//! "what does it cost", never "who is allowed to proceed".

pub mod clock;
pub mod link;
pub mod model;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod routing;
pub mod topology;
pub mod units;

pub use clock::{Clock, RealClock, VClock};
pub use link::{Degrade, Link};
pub use model::{Egress, MachineNet, NetParams, Tier, Transfer};
pub use resource::Resource;
pub use rng::Rng64;
pub use stats::{traffic_report, KindStats, TrafficReport};
pub use routing::{RouteTable, SplitRoute};
pub use topology::{LinkKind, Placement, Topology};
pub use units::{Secs, GB, KB, MB};
