//! # beff-netsim
//!
//! Discrete-event, virtual-time network model used as the interconnect
//! substrate for the b_eff / b_eff_io benchmark reproduction.
//!
//! The model is a causal-timestamp (LogGP-style) simulation:
//!
//! * every MPI rank owns a [`clock::VClock`] (virtual seconds),
//! * a message transfer is priced by [`model::MachineNet::transfer`],
//!   which routes the message over the configured [`topology::Topology`]
//!   and reserves occupancy on every traversed [`link::Link`],
//! * contention emerges from link reservation: two messages crossing the
//!   same wire at the same virtual time serialize.
//!
//! The mechanism layer — virtual clocks, fair-share [`Resource`]s,
//! priced [`Link`]s, the deterministic RNG — lives in `beff-sim`
//! (the workload-agnostic simulation substrate); this crate re-exports
//! those names at their historical paths and layers the *network
//! semantics* on top: topologies, routing, LogGP transfer pricing.
//!
//! Nothing here depends on the MPI layer: this crate answers only
//! "what does it cost", never "who is allowed to proceed".

// Substrate modules, re-exported at their pre-extraction paths so
// `beff_netsim::units::fmt_bytes`, `beff_netsim::rng::Rng64`, … keep
// resolving for every downstream crate.
pub use beff_sim::clock;
pub use beff_sim::link;
pub use beff_sim::resource;
pub use beff_sim::rng;
pub use beff_sim::units;

pub mod model;
pub mod stats;
pub mod routing;
pub mod topology;

pub use beff_sim::{Clock, Degrade, Link, RealClock, Resource, Rng64, Secs, VClock, GB, KB, MB};
pub use model::{Egress, MachineNet, NetParams, Tier, Transfer};
pub use stats::{traffic_report, KindStats, TrafficReport};
pub use routing::{RouteTable, SplitRoute};
pub use topology::{LinkKind, Placement, Topology};
