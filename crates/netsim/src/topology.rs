//! Interconnect topologies and rank placement.
//!
//! A topology maps a pair of ranks to the ordered list of *links* a
//! message traverses. Links are identified by dense indices so the
//! [`crate::model::MachineNet`] can keep them in a flat `Vec<Link>`.
//!
//! Every proc (or SMP node) has a **port** link that all its traffic —
//! inbound *and* outbound — crosses. This is the memory/router
//! interface of the node, and sharing it between directions is what
//! makes a parallel bidirectional ring run at roughly *half* the
//! ping-pong bandwidth per process, as the paper's Table 1 shows
//! (T3E: 330 MB/s ping-pong vs ~193 MB/s per-proc ring at `L_max`).
//!
//! Supported shapes (covering the paper's evaluation systems):
//!
//! * [`Topology::Crossbar`] — contention-free switch, per-proc ports
//!   (NEC SX, HP-V, SV1 style shared-memory machines: the "port" is the
//!   processor's memory access path),
//! * [`Topology::Ring`] / [`Topology::Torus2D`] / [`Topology::Torus3D`]
//!   — direct networks with dimension-order routing over per-hop links
//!   plus the per-node ports (Cray T3E is an 8×8×8 torus),
//! * [`Topology::SmpCluster`] — nodes with `ppn` processes each, a
//!   shared memory bus inside the node and NIC in/out ports between
//!   nodes over a contention-free switch (Hitachi SR 8000, IBM SP).

use beff_json::{Json, ToJson};

/// How consecutive MPI ranks are laid out on an SMP cluster.
///
/// The paper shows this matters enormously on the Hitachi SR 8000:
/// *round-robin* placement makes ring neighbors land on different nodes
/// (all traffic crosses NICs), *sequential* keeps most neighbors inside
/// a node (fast shared memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// rank r lives on node `r / ppn` (fills one node before the next).
    Sequential,
    /// rank r lives on node `r % nodes`.
    RoundRobin,
}

/// What role a link plays; the cost model assigns per-kind parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Per-proc transmit port (full-duplex send side).
    PortOut,
    /// Per-proc receive port (full-duplex receive side).
    PortIn,
    /// Per-proc memory system: every byte in or out crosses it. This is
    /// what makes a bidirectional ring run at roughly half the
    /// ping-pong rate per process (Table 1: T3E 330 vs ~193 MB/s).
    NodeMem,
    /// One directed hop of a ring/torus.
    Hop,
    /// Shared memory bus of one SMP node (aggregate over its ranks).
    MemBus,
    /// NIC transmit port of one node.
    NicOut,
    /// NIC receive port of one node.
    NicIn,
}

impl LinkKind {
    /// Whether the link is shared by *independent* agents (distinct
    /// ranks or nodes) rather than owned by a single rank. Fair-share
    /// contention billing ([`crate::model::NetParams::contention`])
    /// applies only to shared kinds: a lone rank streaming back-to-back
    /// through its own port pays no arbitration overhead, but torus
    /// hops, SMP node buses and NICs carry traffic from many agents and
    /// do.
    pub fn is_shared(self) -> bool {
        match self {
            LinkKind::Hop | LinkKind::MemBus | LinkKind::NicOut | LinkKind::NicIn => true,
            LinkKind::PortOut | LinkKind::PortIn | LinkKind::NodeMem => false,
        }
    }
}

/// Network shape. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    Crossbar { procs: usize },
    Ring { procs: usize },
    Torus2D { dims: [usize; 2] },
    Torus3D { dims: [usize; 3] },
    SmpCluster { nodes: usize, ppn: usize, placement: Placement },
}

impl ToJson for Placement {
    fn to_json(&self) -> Json {
        // Externally-tagged unit variants serialize as bare strings.
        Json::Str(
            match self {
                Placement::Sequential => "Sequential",
                Placement::RoundRobin => "RoundRobin",
            }
            .to_owned(),
        )
    }
}

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        // Externally-tagged struct variants: {"Name": {fields…}}.
        match self {
            Topology::Crossbar { procs } => Json::variant(
                "Crossbar",
                Json::object().field("procs", procs).build(),
            ),
            Topology::Ring { procs } => {
                Json::variant("Ring", Json::object().field("procs", procs).build())
            }
            Topology::Torus2D { dims } => Json::variant(
                "Torus2D",
                Json::object().field("dims", dims).build(),
            ),
            Topology::Torus3D { dims } => Json::variant(
                "Torus3D",
                Json::object().field("dims", dims).build(),
            ),
            Topology::SmpCluster { nodes, ppn, placement } => Json::variant(
                "SmpCluster",
                Json::object()
                    .field("nodes", nodes)
                    .field("ppn", ppn)
                    .field("placement", placement)
                    .build(),
            ),
        }
    }
}

impl Topology {
    /// Number of MPI processes the topology hosts.
    pub fn procs(&self) -> usize {
        match *self {
            Topology::Crossbar { procs } | Topology::Ring { procs } => procs,
            Topology::Torus2D { dims } => dims[0] * dims[1],
            Topology::Torus3D { dims } => dims[0] * dims[1] * dims[2],
            Topology::SmpCluster { nodes, ppn, .. } => nodes * ppn,
        }
    }

    /// Number of distinct links (dense link-id space `0..num_links()`).
    pub fn num_links(&self) -> usize {
        match *self {
            Topology::Crossbar { procs } => 3 * procs,
            Topology::Ring { procs } => 5 * procs,
            Topology::Torus2D { dims } => 7 * dims[0] * dims[1],
            Topology::Torus3D { dims } => 9 * dims[0] * dims[1] * dims[2],
            Topology::SmpCluster { nodes, ppn, .. } => 3 * nodes * ppn + 2 * nodes,
        }
    }

    /// Role of a link id (for per-kind cost parameters).
    pub fn link_kind(&self, link: usize) -> LinkKind {
        fn endpoint(link: usize, n: usize) -> Option<LinkKind> {
            if link < n {
                Some(LinkKind::PortOut)
            } else if link < 2 * n {
                Some(LinkKind::PortIn)
            } else if link < 3 * n {
                Some(LinkKind::NodeMem)
            } else {
                None
            }
        }
        match *self {
            Topology::Crossbar { procs } => endpoint(link, procs).expect("crossbar link id"),
            Topology::Ring { procs } => endpoint(link, procs).unwrap_or(LinkKind::Hop),
            Topology::Torus2D { dims } => {
                endpoint(link, dims[0] * dims[1]).unwrap_or(LinkKind::Hop)
            }
            Topology::Torus3D { dims } => {
                endpoint(link, dims[0] * dims[1] * dims[2]).unwrap_or(LinkKind::Hop)
            }
            Topology::SmpCluster { nodes, ppn, .. } => {
                let p = nodes * ppn;
                if link < p {
                    LinkKind::PortOut
                } else if link < 2 * p {
                    LinkKind::PortIn
                } else if link < 3 * p {
                    LinkKind::NodeMem
                } else if link < 3 * p + nodes {
                    LinkKind::NicOut
                } else {
                    LinkKind::NicIn
                }
            }
        }
    }

    /// SMP node hosting `rank` (identity for non-clustered shapes).
    pub fn node_of(&self, rank: usize) -> usize {
        match *self {
            Topology::SmpCluster { nodes, ppn, placement } => match placement {
                Placement::Sequential => rank / ppn,
                Placement::RoundRobin => {
                    debug_assert!(ppn > 0);
                    rank % nodes
                }
            },
            _ => rank,
        }
    }

    /// Append the links a message from `src` to `dst` traverses, in
    /// order, to `path`. `src == dst` yields an empty path (local copy,
    /// priced separately by the model).
    pub fn route_into(&self, src: usize, dst: usize, path: &mut Vec<usize>) {
        path.clear();
        if src == dst {
            return;
        }
        match *self {
            Topology::Crossbar { procs } => {
                path.push(src); // port out
                path.push(2 * procs + src); // node memory (send side)
                path.push(2 * procs + dst); // node memory (recv side)
                path.push(procs + dst); // port in
            }
            Topology::Ring { procs } => {
                path.push(src);
                path.push(2 * procs + src);
                route_dim(src, dst, procs, 3 * procs, 4 * procs, path);
                path.push(2 * procs + dst);
                path.push(procs + dst);
            }
            Topology::Torus2D { dims } => {
                let n = dims[0] * dims[1];
                path.push(src);
                path.push(2 * n + src);
                let (sx, sy) = (src % dims[0], src / dims[0]);
                let (dx, dy) = (dst % dims[0], dst / dims[0]);
                // dimension-order: X first, then Y
                let mut cur = (sx, sy);
                while cur.0 != dx {
                    let (nx, dir) = step(cur.0, dx, dims[0]);
                    let node = cur.1 * dims[0] + cur.0;
                    path.push(3 * n + dir * n + node);
                    cur.0 = nx;
                }
                while cur.1 != dy {
                    let (ny, dir) = step(cur.1, dy, dims[1]);
                    let node = cur.1 * dims[0] + cur.0;
                    path.push(3 * n + (2 + dir) * n + node);
                    cur.1 = ny;
                }
                path.push(2 * n + dst);
                path.push(n + dst);
            }
            Topology::Torus3D { dims } => {
                let n = dims[0] * dims[1] * dims[2];
                path.push(src);
                path.push(2 * n + src);
                let coord =
                    |r: usize| (r % dims[0], (r / dims[0]) % dims[1], r / (dims[0] * dims[1]));
                let (mut cx, mut cy, mut cz) = coord(src);
                let (dx, dy, dz) = coord(dst);
                let node = |x: usize, y: usize, z: usize| z * dims[0] * dims[1] + y * dims[0] + x;
                while cx != dx {
                    let (nx, dir) = step(cx, dx, dims[0]);
                    path.push(3 * n + dir * n + node(cx, cy, cz));
                    cx = nx;
                }
                while cy != dy {
                    let (ny, dir) = step(cy, dy, dims[1]);
                    path.push(3 * n + (2 + dir) * n + node(cx, cy, cz));
                    cy = ny;
                }
                while cz != dz {
                    let (nz, dir) = step(cz, dz, dims[2]);
                    path.push(3 * n + (4 + dir) * n + node(cx, cy, cz));
                    cz = nz;
                }
                path.push(2 * n + dst);
                path.push(n + dst);
            }
            Topology::SmpCluster { nodes, ppn, .. } => {
                let p = nodes * ppn;
                let sn = self.node_of(src);
                let dn = self.node_of(dst);
                path.push(src); // port out
                path.push(2 * p + src); // sender memory lane (banked)
                if sn != dn {
                    path.push(3 * p + sn); // NIC out
                    path.push(3 * p + nodes + dn); // NIC in
                }
                path.push(2 * p + dst); // receiver memory lane
                path.push(p + dst); // port in
            }
        }
    }

    /// Split a route into the **egress** part (booked by the sender:
    /// its port-out, its node memory, the network hops) and the
    /// **ingress** part (booked by the *receiver* when it drains the
    /// message: destination node memory and port-in). Booking ingress
    /// on the receiver's thread keeps each rank's endpoint resources
    /// scheduled by a single thread, which packs them tightly — the
    /// behaviour of real DMA/memory systems.
    ///
    /// Note the intra-node SMP case books the node bus twice (send-side
    /// copy in egress, receive-side copy in ingress): message passing
    /// over shared memory costs two memory transits, which is why the
    /// paper observes "half of the memory-to-memory copy bandwidth" on
    /// SMPs.
    pub fn route_split_into(
        &self,
        src: usize,
        dst: usize,
        egress: &mut Vec<usize>,
        ingress: &mut Vec<usize>,
    ) {
        egress.clear();
        ingress.clear();
        if src == dst {
            return;
        }
        match *self {
            Topology::Crossbar { procs } => {
                egress.push(src);
                egress.push(2 * procs + src);
                ingress.push(2 * procs + dst);
                ingress.push(procs + dst);
            }
            Topology::Ring { .. } | Topology::Torus2D { .. } | Topology::Torus3D { .. } => {
                // reuse the full route and split off the fixed-size tail
                self.route_into(src, dst, egress);
                let tail = egress.split_off(egress.len() - 2);
                ingress.extend_from_slice(&tail);
            }
            Topology::SmpCluster { nodes, ppn, .. } => {
                let p = nodes * ppn;
                let sn = self.node_of(src);
                let dn = self.node_of(dst);
                egress.push(src); // port out
                egress.push(2 * p + src); // sender memory lane
                if sn != dn {
                    egress.push(3 * p + sn); // NIC out
                    ingress.push(3 * p + nodes + dn); // NIC in
                }
                ingress.push(2 * p + dst); // receiver memory lane
                ingress.push(p + dst); // port in
            }
        }
    }

    /// Convenience allocation form of [`route_into`](Self::route_into).
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut p = Vec::new();
        self.route_into(src, dst, &mut p);
        p
    }

    /// Number of network hops (Hop-kind links) between two ranks.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.route(src, dst)
            .into_iter()
            .filter(|&l| self.link_kind(l) == LinkKind::Hop)
            .count()
    }
}

/// One dimension-order step from `cur` towards `dst` on a cycle of
/// length `len`; returns (next coordinate, direction 0=+ / 1=-).
fn step(cur: usize, dst: usize, len: usize) -> (usize, usize) {
    let fwd = (dst + len - cur) % len;
    let bwd = (cur + len - dst) % len;
    if fwd <= bwd {
        ((cur + 1) % len, 0)
    } else {
        ((cur + len - 1) % len, 1)
    }
}

/// Route along a 1-D ring: shortest direction, one link per hop.
/// Link ids: `plus_base + node` for the +1 direction, `minus_base +
/// node` for the -1 direction.
fn route_dim(
    src: usize,
    dst: usize,
    len: usize,
    plus_base: usize,
    minus_base: usize,
    path: &mut Vec<usize>,
) {
    let mut cur = src;
    while cur != dst {
        let (next, dir) = step(cur, dst, len);
        path.push(if dir == 0 { plus_base + cur } else { minus_base + cur });
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_route_is_ports_and_memories() {
        let t = Topology::Crossbar { procs: 8 };
        // port_out(2), mem(2), mem(5), port_in(5)
        assert_eq!(t.route(2, 5), vec![2, 18, 21, 13]);
        assert_eq!(t.route(3, 3), Vec::<usize>::new());
        assert_eq!(t.num_links(), 24);
        assert_eq!(t.link_kind(0), LinkKind::PortOut);
        assert_eq!(t.link_kind(8), LinkKind::PortIn);
        assert_eq!(t.link_kind(16), LinkKind::NodeMem);
    }

    #[test]
    fn ring_route_takes_shortest_direction() {
        let t = Topology::Ring { procs: 8 };
        // out(0), mem(0), one +dir hop from node 0, mem(1), in(1)
        assert_eq!(t.route(0, 1), vec![0, 16, 24, 17, 9]);
        // -dir hop block starts at 4*8 = 32
        assert_eq!(t.route(0, 7), vec![0, 16, 32, 23, 15]);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(0, 5), 3); // wraps backwards
    }

    #[test]
    fn ring_path_is_connected() {
        let t = Topology::Ring { procs: 16 };
        let p = t.route(14, 3);
        assert_eq!(p.len(), 4 + 5); // endpoints + 14->15->0->1->2->3
        assert_eq!(p[0], 14);
        assert_eq!(*p.last().unwrap(), 16 + 3);
        for (i, l) in p[2..p.len() - 2].iter().enumerate() {
            assert_eq!(*l, 48 + (14 + i) % 16); // consecutive +dir hop links
        }
    }

    #[test]
    fn torus2d_dimension_order() {
        let t = Topology::Torus2D { dims: [4, 4] };
        assert_eq!(t.procs(), 16);
        assert_eq!(t.num_links(), 112);
        // (0,0) -> (2,1): endpoints + two X hops + one Y hop
        let p = t.route(0, 4 + 2);
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 16 + 6);
        // X+ hop links live in block [48,64), Y+ in [80,96)
        assert!((48..64).contains(&p[2]) && (48..64).contains(&p[3]));
        assert!((80..96).contains(&p[4]));
    }

    #[test]
    fn torus3d_distance_is_manhattan_with_wrap() {
        let t = Topology::Torus3D { dims: [8, 8, 8] };
        assert_eq!(t.procs(), 512);
        assert_eq!(t.hops(0, 7), 1); // x: 0->7 wraps backwards
        assert_eq!(t.hops(0, 4), 4); // x: halfway, 4 hops
        let far = 4 + 4 * 8 + 4 * 64; // coords (4,4,4)
        assert_eq!(t.hops(0, far), 12);
    }

    #[test]
    fn torus3d_paths_never_exceed_half_per_dim() {
        let t = Topology::Torus3D { dims: [4, 4, 4] };
        for src in 0..64 {
            for dst in 0..64 {
                assert!(t.hops(src, dst) <= 6, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn consecutive_torus3d_ranks_are_mostly_adjacent() {
        // Ring pattern on MPI_COMM_WORLD maps well onto a row-major torus:
        // this is why ring patterns beat random patterns on the T3E.
        let t = Topology::Torus3D { dims: [8, 8, 8] };
        let close = (0..511).filter(|&r| t.hops(r, r + 1) == 1).count();
        assert!(close >= 448, "only {close} adjacent consecutive pairs");
    }

    #[test]
    fn smp_placement_round_robin_vs_sequential() {
        let seq = Topology::SmpCluster { nodes: 4, ppn: 8, placement: Placement::Sequential };
        let rr = Topology::SmpCluster { nodes: 4, ppn: 8, placement: Placement::RoundRobin };
        assert_eq!(seq.node_of(0), 0);
        assert_eq!(seq.node_of(7), 0);
        assert_eq!(seq.node_of(8), 1);
        assert_eq!(rr.node_of(0), 0);
        assert_eq!(rr.node_of(1), 1);
        assert_eq!(rr.node_of(4), 0);
        // sequential: ring neighbors mostly share a node:
        // out(0), lane(0)=64, lane(1)=65, in(1)=33
        assert_eq!(seq.route(0, 1), vec![0, 64, 65, 33]);
        // round-robin: ring neighbors always cross the network
        assert_eq!(rr.route(0, 1), vec![0, 64, 96, 100 + 1, 64 + 1, 33]);
    }

    #[test]
    fn smp_link_kinds() {
        let t = Topology::SmpCluster { nodes: 3, ppn: 2, placement: Placement::Sequential };
        assert_eq!(t.num_links(), 18 + 6);
        assert_eq!(t.link_kind(0), LinkKind::PortOut);
        assert_eq!(t.link_kind(6), LinkKind::PortIn);
        assert_eq!(t.link_kind(12), LinkKind::NodeMem);
        assert_eq!(t.link_kind(18), LinkKind::NicOut);
        assert_eq!(t.link_kind(21), LinkKind::NicIn);
    }

    #[test]
    fn route_into_reuses_buffer() {
        let t = Topology::Ring { procs: 8 };
        let mut buf = vec![99; 9];
        t.route_into(0, 1, &mut buf);
        assert_eq!(buf, vec![0, 16, 24, 17, 9]);
    }

    #[test]
    fn all_topologies_route_within_link_space() {
        let topos = [
            Topology::Crossbar { procs: 5 },
            Topology::Ring { procs: 7 },
            Topology::Torus2D { dims: [3, 5] },
            Topology::Torus3D { dims: [2, 3, 4] },
            Topology::SmpCluster { nodes: 3, ppn: 4, placement: Placement::RoundRobin },
        ];
        for t in &topos {
            let n = t.procs();
            for s in 0..n {
                for d in 0..n {
                    for l in t.route(s, d) {
                        assert!(l < t.num_links(), "{t:?} {s}->{d} link {l}");
                    }
                }
            }
        }
    }

    #[test]
    fn route_split_partitions_resources() {
        let topos = [
            Topology::Crossbar { procs: 6 },
            Topology::Ring { procs: 6 },
            Topology::Torus2D { dims: [3, 2] },
            Topology::Torus3D { dims: [2, 2, 2] },
        ];
        for t in &topos {
            let n = t.procs();
            for s in 0..n {
                for d in 0..n {
                    let (mut e, mut i) = (Vec::new(), Vec::new());
                    t.route_split_into(s, d, &mut e, &mut i);
                    if s == d {
                        assert!(e.is_empty() && i.is_empty());
                        continue;
                    }
                    // egress + ingress == full route for non-SMP shapes
                    let mut full = e.clone();
                    full.extend_from_slice(&i);
                    assert_eq!(full, t.route(s, d), "{t:?} {s}->{d}");
                    assert_eq!(t.link_kind(i[0]), LinkKind::NodeMem);
                    assert_eq!(t.link_kind(*i.last().unwrap()), LinkKind::PortIn);
                }
            }
        }
    }

    #[test]
    fn smp_split_books_both_memory_lanes() {
        let t = Topology::SmpCluster { nodes: 2, ppn: 4, placement: Placement::Sequential };
        let (mut e, mut i) = (Vec::new(), Vec::new());
        t.route_split_into(0, 1, &mut e, &mut i);
        // egress: out(0), lane(0)=16; ingress: lane(1)=17, in(1)=9
        assert_eq!(e, vec![0, 16]);
        assert_eq!(i, vec![17, 8 + 1]);
        // inter-node: NICs split across the halves
        t.route_split_into(0, 4, &mut e, &mut i);
        assert_eq!(e, vec![0, 16, 24]);
        assert_eq!(i, vec![26 + 1, 16 + 4, 8 + 4]);
    }

    #[test]
    fn every_route_starts_and_ends_at_endpoint_resources() {
        // Each message must consume capacity at both endpoints: that is
        // the mechanism behind the ping-pong vs parallel-ring gap.
        let topos = [
            Topology::Crossbar { procs: 6 },
            Topology::Ring { procs: 6 },
            Topology::Torus2D { dims: [3, 2] },
            Topology::SmpCluster { nodes: 3, ppn: 2, placement: Placement::Sequential },
        ];
        for t in &topos {
            let n = t.procs();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let p = t.route(s, d);
                    let first = t.link_kind(p[0]);
                    let last = t.link_kind(*p.last().unwrap());
                    assert_eq!(first, LinkKind::PortOut, "{t:?} {s}->{d} first {first:?}");
                    assert_eq!(last, LinkKind::PortIn, "{t:?} {s}->{d} last {last:?}");
                }
            }
        }
    }
}
