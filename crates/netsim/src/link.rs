//! A network link: latency + per-byte occupancy over a [`Resource`].

use crate::resource::Resource;
use crate::units::Secs;
use std::sync::atomic::{AtomicU64, Ordering};

/// One serially-shared wire/port/bus of the interconnect.
#[derive(Debug)]
pub struct Link {
    /// Time for the message head to appear at the far side.
    pub latency: Secs,
    /// Seconds per byte of occupancy (1 / bandwidth).
    pub byte_time: Secs,
    res: Resource,
    /// Traffic counters (diagnostics): total bytes and messages.
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl Link {
    pub fn new(latency: Secs, byte_time: Secs) -> Self {
        Self::with_contention(latency, byte_time, 1.0)
    }

    /// A link in fair-share contention mode: a message that has to
    /// queue behind pending traffic occupies `factor` times its serial
    /// byte time (see [`Resource::with_contention`]). `1.0` is plain
    /// FIFO packing.
    pub fn with_contention(latency: Secs, byte_time: Secs, factor: f64) -> Self {
        Self {
            latency,
            byte_time,
            res: Resource::with_contention(factor),
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// Push `bytes` through the link, with the head arriving at the link
    /// entrance at `head`. Returns `(start, finish)` of the occupancy —
    /// `start` is when the stream begins flowing on this link (so a
    /// downstream link may begin then), `finish` is when the last byte
    /// has crossed (queued messages on a contended link finish at the
    /// fair-share-degraded rate).
    #[inline]
    pub fn traverse(&self, head: Secs, bytes: u64) -> (Secs, Secs) {
        let occ = bytes as f64 * self.byte_time;
        let span = self.res.reserve_span(head + self.latency, occ);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        span
    }

    /// Next-free time (diagnostics / tests).
    pub fn horizon(&self) -> Secs {
        self.res.horizon()
    }

    /// Total bytes that have crossed this link (diagnostics).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages that have crossed this link (diagnostics).
    pub fn messages_carried(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Reset occupancy and counters to idle (tests only).
    pub fn reset(&self) {
        self.res.reset();
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_traverse_costs_latency_plus_bytes() {
        let l = Link::new(1e-6, 1e-9); // 1 us, 1 GB/s
        let (start, finish) = l.traverse(0.0, 1000);
        assert!((start - 1e-6).abs() < 1e-15);
        assert!((finish - (1e-6 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn contended_messages_serialize() {
        let l = Link::new(0.0, 1e-6); // 1 MB/s, zero latency
        let (_, f1) = l.traverse(0.0, 100);
        let (s2, f2) = l.traverse(0.0, 100);
        assert!((f1 - 1e-4).abs() < 1e-12);
        assert!((s2 - 1e-4).abs() < 1e-12);
        assert!((f2 - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let l = Link::new(5e-6, 1e-9);
        let (s, f) = l.traverse(1.0, 0);
        assert_eq!(s, 1.0 + 5e-6);
        assert_eq!(s, f);
    }

    #[test]
    fn contended_link_messages_pay_the_fair_share_factor() {
        let l = Link::with_contention(0.0, 1e-6, 2.0); // 1 MB/s, factor 2
        let (_, f1) = l.traverse(0.0, 100);
        let (s2, f2) = l.traverse(0.0, 100);
        assert!((f1 - 1e-4).abs() < 1e-12);
        assert!((s2 - 1e-4).abs() < 1e-12);
        // queued message pays 2x its serial occupancy
        assert!((f2 - 3e-4).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_accumulate_and_reset() {
        let l = Link::new(0.0, 1e-9);
        l.traverse(0.0, 100);
        l.traverse(0.0, 200);
        assert_eq!(l.bytes_carried(), 300);
        assert_eq!(l.messages_carried(), 2);
        l.reset();
        assert_eq!(l.bytes_carried(), 0);
        assert_eq!(l.messages_carried(), 0);
    }
}
