//! Property tests for the network simulator substrate.

use beff_netsim::{
    Clock, MachineNet, NetParams, Placement, Resource, Rng64, Topology, VClock,
};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..32).prop_map(|procs| Topology::Crossbar { procs }),
        (2usize..32).prop_map(|procs| Topology::Ring { procs }),
        ((1usize..6), (1usize..6)).prop_map(|(x, y)| Topology::Torus2D { dims: [x, y] }),
        ((1usize..4), (1usize..4), (1usize..4))
            .prop_map(|(x, y, z)| Topology::Torus3D { dims: [x, y, z] }),
        ((1usize..5), (1usize..5), prop_oneof![
            Just(Placement::Sequential),
            Just(Placement::RoundRobin)
        ])
            .prop_map(|(nodes, ppn, placement)| Topology::SmpCluster { nodes, ppn, placement }),
    ]
}

proptest! {
    #[test]
    fn routes_stay_in_link_space_and_split_consistently(
        topo in arb_topology(),
        a in 0usize..1000,
        b in 0usize..1000,
    ) {
        let n = topo.procs();
        let (src, dst) = (a % n, b % n);
        for l in topo.route(src, dst) {
            prop_assert!(l < topo.num_links());
        }
        let (mut e, mut i) = (Vec::new(), Vec::new());
        topo.route_split_into(src, dst, &mut e, &mut i);
        for l in e.iter().chain(i.iter()) {
            prop_assert!(*l < topo.num_links());
        }
        if src == dst {
            prop_assert!(e.is_empty() && i.is_empty());
        } else {
            prop_assert!(!e.is_empty() && !i.is_empty());
        }
    }

    #[test]
    fn resource_reservations_never_overlap(
        requests in prop::collection::vec((0.0f64..100.0, 0.001f64..5.0), 1..50)
    ) {
        let r = Resource::new();
        let mut spans: Vec<(f64, f64)> = requests
            .iter()
            .map(|&(earliest, dur)| {
                let s = r.reserve(earliest, dur);
                (s, s + dur)
            })
            .collect();
        spans.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-9);
        }
    }

    #[test]
    fn vclock_is_monotone(ops in prop::collection::vec((0u8..2, 0.0f64..10.0), 1..100)) {
        let mut c = VClock::new();
        let mut last = 0.0;
        for (kind, v) in ops {
            if kind == 0 { c.advance(v) } else { c.advance_to(v) }
            prop_assert!(c.now() >= last);
            last = c.now();
        }
    }

    #[test]
    fn pricing_is_causally_sane(
        topo in arb_topology(),
        bytes in 0u64..10_000_000,
        inject in 0.0f64..1000.0,
        a in 0usize..1000,
        b in 0usize..1000,
    ) {
        let n = topo.procs();
        let net = MachineNet::new(topo, NetParams::default());
        let tr = net.transfer(a % n, b % n, bytes, inject);
        prop_assert!(tr.injected >= inject);
        prop_assert!(tr.arrival >= tr.injected - 1e-12);
        prop_assert!(tr.arrival.is_finite());
    }

    #[test]
    fn rng_permutations_are_valid(n in 1usize..500, seed in 0u64..10_000) {
        let mut rng = Rng64::new(seed);
        let p = rng.permutation(n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
