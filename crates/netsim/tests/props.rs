//! Property tests for the network simulator substrate.

use beff_check::{check, ensure, ensure_eq, Gen};
use beff_netsim::{
    Clock, MachineNet, NetParams, Placement, Resource, Rng64, Topology, VClock,
};

fn gen_topology(g: &mut Gen) -> Topology {
    match g.usize(0..=4) {
        0 => Topology::Crossbar { procs: g.usize(1..=31) },
        1 => Topology::Ring { procs: g.usize(2..=31) },
        2 => Topology::Torus2D { dims: [g.usize(1..=5), g.usize(1..=5)] },
        3 => Topology::Torus3D {
            dims: [g.usize(1..=3), g.usize(1..=3), g.usize(1..=3)],
        },
        _ => Topology::SmpCluster {
            nodes: g.usize(1..=4),
            ppn: g.usize(1..=4),
            placement: *g.choose(&[Placement::Sequential, Placement::RoundRobin]),
        },
    }
}

#[test]
fn routes_stay_in_link_space_and_split_consistently() {
    check("routes stay in link space", |g| {
        let topo = gen_topology(g);
        let n = topo.procs();
        let (src, dst) = (g.usize(0..=999) % n, g.usize(0..=999) % n);
        for l in topo.route(src, dst) {
            ensure!(l < topo.num_links());
        }
        let (mut e, mut i) = (Vec::new(), Vec::new());
        topo.route_split_into(src, dst, &mut e, &mut i);
        for l in e.iter().chain(i.iter()) {
            ensure!(*l < topo.num_links());
        }
        if src == dst {
            ensure!(e.is_empty() && i.is_empty());
        } else {
            ensure!(!e.is_empty() && !i.is_empty());
        }
    });
}

#[test]
fn resource_reservations_never_overlap() {
    check("resource reservations never overlap", |g| {
        let requests = g.vec(1..=49, |g| (g.f64(0.0, 100.0), g.f64(0.001, 5.0)));
        let r = Resource::new();
        let mut spans: Vec<(f64, f64)> = requests
            .iter()
            .map(|&(earliest, dur)| {
                let s = r.reserve(earliest, dur);
                (s, s + dur)
            })
            .collect();
        spans.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in spans.windows(2) {
            ensure!(w[0].1 <= w[1].0 + 1e-9);
        }
    });
}

#[test]
fn vclock_is_monotone() {
    check("vclock is monotone", |g| {
        let ops = g.vec(1..=99, |g| (g.bool(), g.f64(0.0, 10.0)));
        let mut c = VClock::new();
        let mut last = 0.0;
        for (advance_by, v) in ops {
            if advance_by {
                c.advance(v)
            } else {
                c.advance_to(v)
            }
            ensure!(c.now() >= last);
            last = c.now();
        }
    });
}

#[test]
fn pricing_is_causally_sane() {
    check("pricing is causally sane", |g| {
        let topo = gen_topology(g);
        let n = topo.procs();
        let bytes = g.u64(0..=9_999_999);
        let inject = g.f64(0.0, 1000.0);
        let (a, b) = (g.usize(0..=999) % n, g.usize(0..=999) % n);
        let net = MachineNet::new(topo, NetParams::default());
        let tr = net.transfer(a, b, bytes, inject);
        ensure!(tr.injected >= inject);
        ensure!(tr.arrival >= tr.injected - 1e-12);
        ensure!(tr.arrival.is_finite());
    });
}

#[test]
fn rng_permutations_are_valid() {
    check("rng permutations are valid", |g| {
        let n = g.usize(1..=499);
        let mut rng = Rng64::new(g.u64(0..=9999));
        let p = rng.permutation(n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        ensure_eq!(sorted, (0..n).collect::<Vec<_>>());
    });
}
