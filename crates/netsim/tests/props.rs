//! Property tests for the network simulator substrate.

use beff_check::{check, ensure, ensure_eq, Gen};
use beff_netsim::{
    Clock, MachineNet, NetParams, Placement, Resource, Rng64, Topology, VClock,
};

fn gen_topology(g: &mut Gen) -> Topology {
    match g.usize(0..=4) {
        0 => Topology::Crossbar { procs: g.usize(1..=31) },
        1 => Topology::Ring { procs: g.usize(2..=31) },
        2 => Topology::Torus2D { dims: [g.usize(1..=5), g.usize(1..=5)] },
        3 => Topology::Torus3D {
            dims: [g.usize(1..=3), g.usize(1..=3), g.usize(1..=3)],
        },
        _ => Topology::SmpCluster {
            nodes: g.usize(1..=4),
            ppn: g.usize(1..=4),
            placement: *g.choose(&[Placement::Sequential, Placement::RoundRobin]),
        },
    }
}

#[test]
fn routes_stay_in_link_space_and_split_consistently() {
    check("routes stay in link space", |g| {
        let topo = gen_topology(g);
        let n = topo.procs();
        let (src, dst) = (g.usize(0..=999) % n, g.usize(0..=999) % n);
        for l in topo.route(src, dst) {
            ensure!(l < topo.num_links());
        }
        let (mut e, mut i) = (Vec::new(), Vec::new());
        topo.route_split_into(src, dst, &mut e, &mut i);
        for l in e.iter().chain(i.iter()) {
            ensure!(*l < topo.num_links());
        }
        if src == dst {
            ensure!(e.is_empty() && i.is_empty());
        } else {
            ensure!(!e.is_empty() && !i.is_empty());
        }
    });
}

#[test]
fn resource_reservations_never_overlap() {
    check("resource reservations never overlap", |g| {
        let requests = g.vec(1..=49, |g| (g.f64(0.0, 100.0), g.f64(0.001, 5.0)));
        let r = Resource::new();
        let mut spans: Vec<(f64, f64)> = requests
            .iter()
            .map(|&(earliest, dur)| {
                let s = r.reserve(earliest, dur);
                (s, s + dur)
            })
            .collect();
        spans.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in spans.windows(2) {
            ensure!(w[0].1 <= w[1].0 + 1e-9);
        }
    });
}

#[test]
fn fair_share_is_work_conserving_and_order_independent() {
    check("fair share is work conserving and order independent", |g| {
        // K reservations contending for the same window: booked in an
        // arbitrary order, they must (a) keep the resource busy with no
        // idle gap (work conservation) and (b) produce the same booked
        // finish times regardless of booking order.
        let k = g.usize(2..=12);
        let factor = g.f64(1.0, 4.0);
        let earliest = g.f64(0.0, 50.0);
        let dur = g.f64(0.001, 5.0);
        let finishes = |order: &[usize]| -> Vec<f64> {
            let r = Resource::with_contention(factor);
            let mut f = vec![0.0; order.len()];
            for &i in order {
                f[i] = r.reserve_finish(earliest, dur);
            }
            f.sort_by(|a, b| a.partial_cmp(b).unwrap());
            f
        };
        let forward: Vec<usize> = (0..k).collect();
        let mut shuffled = forward.clone();
        // deterministic Fisher-Yates from generated indices
        for i in (1..k).rev() {
            shuffled.swap(i, g.usize(0..=i));
        }
        let a = finishes(&forward);
        let b = finishes(&shuffled);
        for (x, y) in a.iter().zip(b.iter()) {
            ensure_eq!(x.to_bits(), y.to_bits(), "finish times differ across orders");
        }
        // Work conservation: the first finishes after one serial
        // duration, every later one exactly one fair-share slot after
        // its predecessor — no idle gap anywhere in the busy span.
        ensure!((a[0] - (earliest + dur)).abs() <= 1e-9 * a[0].max(1.0));
        for w in a.windows(2) {
            ensure!((w[1] - w[0] - dur * factor).abs() <= 1e-9 * w[1].max(1.0));
        }
        // Total booked time equals total billed work: serial first
        // stream + (k-1) fair-share streams.
        let span = a[k - 1] - earliest;
        let billed = dur + (k - 1) as f64 * dur * factor;
        ensure!((span - billed).abs() <= 1e-9 * billed.max(1.0));
    });
}

#[test]
fn fair_share_factor_one_matches_plain_fifo_bitwise() {
    check("fair share factor one matches plain fifo bitwise", |g| {
        // contention factor 1.0 must be indistinguishable from the
        // pre-fair-share resource on ANY reservation sequence — this is
        // the invariant that keeps the golden results byte-identical.
        let requests = g.vec(1..=49, |g| (g.f64(0.0, 100.0), g.f64(0.0, 5.0)));
        let plain = Resource::new();
        let faired = Resource::with_contention(1.0);
        let mut reference_nf: f64 = 0.0;
        for &(earliest, dur) in &requests {
            let ref_start = earliest.max(reference_nf);
            reference_nf = ref_start + dur;
            let (ps, pf) = plain.reserve_span(earliest, dur);
            let (fs, ff) = faired.reserve_span(earliest, dur);
            ensure_eq!(ps.to_bits(), ref_start.to_bits());
            ensure_eq!(fs.to_bits(), ref_start.to_bits());
            ensure_eq!(pf.to_bits(), reference_nf.to_bits());
            ensure_eq!(ff.to_bits(), reference_nf.to_bits());
        }
    });
}

#[test]
fn vclock_is_monotone() {
    check("vclock is monotone", |g| {
        let ops = g.vec(1..=99, |g| (g.bool(), g.f64(0.0, 10.0)));
        let mut c = VClock::new();
        let mut last = 0.0;
        for (advance_by, v) in ops {
            if advance_by {
                c.advance(v)
            } else {
                c.advance_to(v)
            }
            ensure!(c.now() >= last);
            last = c.now();
        }
    });
}

#[test]
fn pricing_is_causally_sane() {
    check("pricing is causally sane", |g| {
        let topo = gen_topology(g);
        let n = topo.procs();
        let bytes = g.u64(0..=9_999_999);
        let inject = g.f64(0.0, 1000.0);
        let (a, b) = (g.usize(0..=999) % n, g.usize(0..=999) % n);
        let net = MachineNet::new(topo, NetParams::default());
        let tr = net.transfer(a, b, bytes, inject);
        ensure!(tr.injected >= inject);
        ensure!(tr.arrival >= tr.injected - 1e-12);
        ensure!(tr.arrival.is_finite());
    });
}

#[test]
fn rng_permutations_are_valid() {
    check("rng permutations are valid", |g| {
        let n = g.usize(1..=499);
        let mut rng = Rng64::new(g.u64(0..=9999));
        let p = rng.permutation(n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        ensure_eq!(sorted, (0..n).collect::<Vec<_>>());
    });
}
