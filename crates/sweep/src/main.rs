//! `storage_sweep` — a PFS-only workload on the bare simulation
//! substrate, with fault injection.
//!
//! This binary exists to prove a layering claim: `beff-sim` is
//! workload-agnostic. It runs `n` *client actors* under the token
//! scheduler ([`beff_sim::try_run_actors`]) driving the parallel
//! filesystem simulator (`beff-pfs`) through a chunk-size ladder —
//! open, strided writes, read-back, close, all priced in virtual time
//! — with a seeded fault plan (`beff-faults`) injecting server
//! slowdowns, stragglers and client crashes. There is no MPI anywhere
//! in this picture: no `World`, no mailboxes, no network model. The
//! absence of a `beff-mpi` edge is machine-enforced by
//! `beff-analyze`'s layering rule.
//!
//! Usage:
//!   `storage_sweep [--clients N] [--out target/storage_sweep.json] [--check]`
//!
//! * the fault seed defaults to `0x57_04A6E` ("STORAGE") and honors the
//!   `BEFF_FAULT_SEED` environment override like every fault plan;
//! * `--check` additionally verifies the harness invariants — the
//!   whole report replays byte-identically, degraded scenarios are not
//!   faster than the clean one, and the crash scenario reports exactly
//!   the planned dead clients — exiting non-zero on any violation.
//!   This is what the `storage-sweep` gate in `scripts/verify.sh` runs.

use beff_faults::{resolve_seed, FaultPlan, FaultSession, FaultSpec};
use beff_json::{Json, ToJson};
use beff_pfs::{DataRef, Pfs, PfsConfig};
use beff_sim::{try_run_actors, BeffError, Clock, Secs, VClock, KB, MB};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default fault seed ("STORAGE"), pre-`BEFF_FAULT_SEED`.
const DEFAULT_SEED: u64 = 0x57_04A6E;

/// Bytes each surviving client writes (and reads back) per ladder rung.
const PER_CLIENT: u64 = 4 * MB;

/// The chunk-size ladder: small chunks expose per-request software
/// overhead (the paper's Fig. 4 effect), large chunks stream.
const CHUNKS: [u64; 4] = [16 * KB, 64 * KB, 256 * KB, MB];

/// Fixed per-op client think time; stragglers multiply it.
const THINK: Secs = 50e-6;

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// One rung of the ladder for one scenario.
struct Point {
    chunk: u64,
    /// Bytes successfully written + read across all clients.
    bytes: u64,
    /// Virtual time at which the last surviving client closed.
    end: Secs,
    /// Aggregate goodput over the run, MB/s.
    mbps: f64,
    crashed: Vec<usize>,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::object()
            .field("chunk", &self.chunk)
            .field("bytes", &self.bytes)
            .field("end_s", &self.end)
            .field("mbps", &self.mbps)
            .field("crashed_clients", &self.crashed)
            .build()
    }
}

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    points: Vec<Point>,
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("severity", &self.plan.severity)
            .field("io_slowdown", &self.plan.io_slowdown)
            .field("planned_crashes", &self.plan.crashes.iter().map(|c| c.rank).collect::<Vec<_>>())
            .field("stragglers", &self.plan.stragglers.iter().map(|s| s.rank).collect::<Vec<_>>())
            .field("points", &self.points)
            .build()
    }
}

struct Report {
    seed: u64,
    clients: usize,
    scenarios: Vec<Scenario>,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::object()
            .field("schema", &"beff/storage-sweep/1")
            .field("seed", &self.seed)
            .field("clients", &self.clients)
            .field("scenarios", &self.scenarios)
            .build()
    }
}

/// Run one ladder rung: every client writes `PER_CLIENT` bytes in
/// `chunk`-sized strided ops, syncs, reads them back, closes. Returns
/// the aggregate goodput point. Crashed clients stop where the plan
/// says and are reported, not fatal — the substrate's typed-fault
/// isolation keeps the survivors deterministic.
fn run_point(clients: usize, chunk: u64, plan: &FaultPlan) -> Point {
    let session = FaultSession::new(plan.clone(), clients);
    let pfs = Pfs::new(PfsConfig { clients, ..PfsConfig::default() });
    if plan.io_slowdown > 1.0 {
        pfs.degrade_servers(plan.io_slowdown);
    }
    let (file, t0) = pfs.open("sweep", 0.0);
    let bytes = AtomicU64::new(0);
    let reps = PER_CLIENT / chunk;

    let results = try_run_actors(clients, |ctx| {
        let id = ctx.id();
        let mut clock = VClock::starting_at(t0);
        let think = THINK * session.plan().compute_mult(id);
        // Write phase: client `id` owns every `clients`-th chunk slot.
        for rep in 0..reps {
            if let Some(e) = session.crash_check(id, clock.now()) {
                e.raise();
            }
            clock.advance(think);
            let offset = (rep * clients as u64 + id as u64) * chunk;
            let t = pfs.write(id, &file, offset, DataRef::Len(chunk), clock.now());
            clock.advance_to(t);
            bytes.fetch_add(chunk, Ordering::Relaxed);
            ctx.yield_turn();
        }
        let t = pfs.sync(clock.now());
        clock.advance_to(t);
        // Read-back phase over the same stride.
        for rep in 0..reps {
            if let Some(e) = session.crash_check(id, clock.now()) {
                e.raise();
            }
            clock.advance(think);
            let offset = (rep * clients as u64 + id as u64) * chunk;
            let (got, t) = pfs.read(id, &file, offset, chunk, None, clock.now());
            clock.advance_to(t);
            bytes.fetch_add(got, Ordering::Relaxed);
            ctx.yield_turn();
        }
        let t = pfs.close(clock.now());
        clock.advance_to(t);
        clock.now()
    });

    let mut end: Secs = 0.0;
    let mut crashed = Vec::new();
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok(t) => end = end.max(*t),
            Err(BeffError::RankCrashed { rank, .. }) => crashed.push(*rank),
            Err(e) => panic!("client {id}: unexpected fault {e}"),
        }
    }
    let bytes = bytes.into_inner();
    let mbps = if end > 0.0 { bytes as f64 / end / (1024.0 * 1024.0) } else { 0.0 };
    Point { chunk, bytes, end, mbps, crashed }
}

fn run_scenario(name: &'static str, clients: usize, spec: &FaultSpec) -> Scenario {
    // No wire in this workload: the plan's link dimension is zero.
    let plan = spec.materialize_dims(clients, 0);
    let points = CHUNKS.iter().map(|&c| run_point(clients, c, &plan)).collect();
    Scenario { name, plan, points }
}

fn run_report(clients: usize, seed: u64) -> Report {
    let scenarios = vec![
        run_scenario("clean", clients, &FaultSpec::none(seed)),
        run_scenario("io_slow", clients, &FaultSpec::none(seed).with_severity(0.6).io_slow()),
        run_scenario(
            "stragglers",
            clients,
            &FaultSpec::none(seed).with_severity(0.5).stragglers(2),
        ),
        run_scenario("crashes", clients, &FaultSpec::none(seed).with_severity(0.8).crashes(2)),
    ];
    Report { seed, clients, scenarios }
}

/// Harness invariants for `--check`; returns violation messages.
fn check_invariants(report: &Report, replay: &Report) -> Vec<String> {
    let mut bad = Vec::new();
    if beff_json::to_string_pretty(report) != beff_json::to_string_pretty(replay) {
        bad.push("replay is not byte-identical".to_string());
    }
    let clean = &report.scenarios[0];
    for s in &report.scenarios[1..] {
        // Crashed clients write less, so compare goodput only where the
        // full byte count was moved; pure slowdown scenarios must not
        // beat the clean run on any rung.
        for (p, c) in s.points.iter().zip(&clean.points) {
            if p.bytes == c.bytes && p.mbps > c.mbps * (1.0 + 1e-9) {
                bad.push(format!(
                    "{} chunk {}: faulted goodput {:.2} MB/s beats clean {:.2} MB/s",
                    s.name, p.chunk, p.mbps, c.mbps
                ));
            }
        }
        let planned: Vec<usize> = s.plan.crashes.iter().map(|c| c.rank).collect();
        for p in &s.points {
            if p.crashed != planned {
                bad.push(format!(
                    "{} chunk {}: crashed clients {:?} != planned {:?}",
                    s.name, p.chunk, p.crashed, planned
                ));
            }
        }
    }
    if clean.points.iter().any(|p| !p.crashed.is_empty() || p.bytes == 0) {
        bad.push("clean scenario lost data or crashed".to_string());
    }
    bad
}

fn main() {
    let clients: usize = arg_after("--clients")
        .map(|s| s.parse().expect("--clients N"))
        .unwrap_or(8);
    let out = arg_after("--out").unwrap_or_else(|| "target/storage_sweep.json".to_string());
    let seed = resolve_seed(DEFAULT_SEED);

    let report = run_report(clients, seed);
    for s in &report.scenarios {
        for p in &s.points {
            println!(
                "{:<12} chunk {:>8} B  {:>9} B moved  end {:.4}s  {:>8.2} MB/s  crashed {:?}",
                s.name, p.chunk, p.bytes, p.end, p.mbps, p.crashed
            );
        }
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let text = beff_json::to_string_pretty(&report);
    beff_json::validate(&text).expect("storage-sweep JSON must be well-formed");
    std::fs::write(&out, format!("{text}\n")).expect("write storage-sweep report");
    println!("storage sweep ({} clients, seed {seed:#x}) -> {out}", report.clients);

    if has_flag("--check") {
        let replay = run_report(clients, seed);
        let bad = check_invariants(&report, &replay);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("storage-sweep: INVARIANT VIOLATED: {b}");
            }
            std::process::exit(1);
        }
        println!("storage-sweep: checks pass");
    }
}
