//! Property tests for the runtime lock-order checker (`lock-order`
//! feature): ranked acquisitions that respect the hierarchy are silent,
//! inversions panic deterministically, and condvar waits hand the rank
//! back correctly.
#![cfg(feature = "lock-order")]

use beff_sync::{Condvar, Mutex, Rank, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

static L20: Rank = Rank::new(20, "test.l20");
static L40: Rank = Rank::new(40, "test.l40");
static L40B: Rank = Rank::new(40, "test.l40b");
static L60: Rank = Rank::new(60, "test.l60");

/// Run `f`, reporting whether it panicked — with the default panic hook
/// muted so expected violations don't spam the test output.
fn panics<F: FnOnce()>(f: F) -> bool {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = catch_unwind(AssertUnwindSafe(f)).is_err();
    std::panic::set_hook(hook);
    r
}

#[test]
fn increasing_acquisition_is_always_clean() {
    beff_check::check("any increasing subset of ranked locks nests cleanly", |g| {
        let m20 = Mutex::ranked(&L20, 0u32);
        let m40 = Mutex::ranked(&L40, 0u32);
        let r60 = RwLock::ranked(&L60, 0u32);
        // Each level independently present or absent; acquisition in
        // level order must never trip the checker.
        let _g20 = g.bool().then(|| m20.lock());
        let _g40 = g.bool().then(|| m40.lock());
        let _g60 = if g.bool() {
            Some(r60.read())
        } else {
            g.bool().then(|| r60.read())
        };
        // Guards drop in reverse declaration order; next case starts
        // from an empty lockset.
    });
}

#[test]
fn inverted_acquisition_panics() {
    beff_check::check("acquiring a lower or equal level while one is held panics", |g| {
        let m20 = Mutex::ranked(&L20, ());
        let m40 = Mutex::ranked(&L40, ());
        let m40b = Mutex::ranked(&L40B, ());
        let r60 = RwLock::ranked(&L60, ());
        match g.usize(0..=3) {
            0 => {
                let _held = m40.lock();
                beff_check::ensure!(panics(|| drop(m20.lock())), "40 then 20 must panic");
            }
            1 => {
                let _held = r60.write();
                beff_check::ensure!(panics(|| drop(m40.lock())), "60 then 40 must panic");
            }
            2 => {
                // Equal levels are also rejected: "strictly increasing".
                let _held = m40.lock();
                beff_check::ensure!(panics(|| drop(m40b.lock())), "40 then 40 must panic");
            }
            _ => {
                // Read-read on one level is rejected too — a queued
                // writer between the two reads deadlocks both.
                let _held = r60.read();
                beff_check::ensure!(panics(|| drop(r60.read())), "60 then 60 must panic");
            }
        }
    });
}

#[test]
fn violation_message_names_both_locks() {
    let m20 = Mutex::ranked(&L20, ());
    let m40 = Mutex::ranked(&L40, ());
    let _held = m40.lock();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = catch_unwind(AssertUnwindSafe(|| drop(m20.lock())))
        .expect_err("inversion must panic");
    std::panic::set_hook(hook);
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic payload".into());
    assert!(msg.contains("test.l20") && msg.contains("test.l40"), "got: {msg}");
}

#[test]
fn release_resets_the_ceiling() {
    beff_check::check("dropping a guard frees its level for later cases", |g| {
        let m20 = Mutex::ranked(&L20, ());
        let m40 = Mutex::ranked(&L40, ());
        for _ in 0..g.usize(1..=4) {
            drop(m40.lock());
            // 40 released: acquiring 20 afterwards is clean.
            drop(m20.lock());
        }
    });
}

#[test]
fn try_lock_failure_does_not_poison_the_lockset() {
    let m40 = std::sync::Arc::new(Mutex::ranked(&L40, ()));
    let m40_2 = std::sync::Arc::clone(&m40);
    let held = m40.lock();
    std::thread::spawn(move || {
        // Fails (other thread holds it) — must record nothing.
        assert!(m40_2.try_lock().is_none());
        // This thread's lockset is still empty, so 20 locks fine.
        drop(Mutex::ranked(&L20, ()).lock());
    })
    .join()
    .expect("worker clean");
    drop(held);
}

#[test]
fn condvar_wait_returns_rank_to_lockset() {
    let m = Mutex::ranked(&L40, ());
    let c = Condvar::new();
    let mut g = m.lock();
    let r = c.wait_for(&mut g, Duration::from_millis(5));
    assert!(r.timed_out());
    // The rank was re-acquired on wakeup: a lower level still panics…
    assert!(panics(|| drop(Mutex::ranked(&L20, ()).lock())));
    drop(g);
    // …and is clean once the guard drops.
    drop(Mutex::ranked(&L20, ()).lock());
}

#[test]
fn unranked_locks_stay_invisible() {
    beff_check::check("plain Mutex::new never participates in ordering", |g| {
        let ranked = Mutex::ranked(&L40, ());
        let plain = Mutex::new(0u32);
        let _held = ranked.lock();
        for _ in 0..g.usize(0..=3) {
            *plain.lock() += 1; // no level, no check, no panic
        }
    });
}
