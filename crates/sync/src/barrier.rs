//! A reusable generation-counted barrier over [`Mutex`] + [`Condvar`].
//!
//! The in-tree replacement for `std::sync::Barrier`, built here so it
//! participates in the ranked lock hierarchy (DESIGN.md §8): the
//! conservative parallel simulation mode (`beff-sim`'s shard engine)
//! synchronizes its epoch boundaries through this barrier, and the
//! lock-order checker must be able to see that no shard-side lock is
//! held across the rendezvous.
//!
//! Semantics match `std::sync::Barrier`: `wait()` blocks until
//! `parties` threads have arrived, then releases them all; exactly one
//! of them observes [`BarrierWaitResult::is_leader`]. The barrier is
//! *reusable* — a generation counter distinguishes consecutive epochs,
//! so a fast thread re-entering `wait()` cannot slip through the
//! previous generation's release.

use crate::condvar::Condvar;
use crate::mutex::Mutex;
use crate::order::Rank;

/// Lock-hierarchy position (DESIGN.md §8): above every simulation-side
/// lock — a thread must have released all shard/scheduler state before
/// parking at an epoch boundary, and acquires it afresh afterwards.
static BARRIER_RANK: Rank = Rank::new(75, "sync.barrier");

struct BarrierState {
    /// Threads that have arrived in the current generation.
    arrived: usize,
    /// Bumped on every release; waiters key their sleep on it.
    generation: u64,
}

/// One arrival's verdict: the last thread to arrive in each generation
/// is the *leader* (it bumped the generation), mirroring
/// `std::sync::BarrierWaitResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    leader: bool,
}

impl BarrierWaitResult {
    #[inline]
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

/// A reusable rendezvous point for a fixed party count.
pub struct Barrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").field("parties", &self.parties).finish_non_exhaustive()
    }
}

impl Barrier {
    /// A barrier releasing once `parties` threads call [`wait`](Self::wait).
    /// A zero-party barrier is treated as one party (it can never block).
    pub fn new(parties: usize) -> Self {
        Self {
            state: Mutex::ranked(&BARRIER_RANK, BarrierState { arrived: 0, generation: 0 }),
            cv: Condvar::new(),
            parties: parties.max(1),
        }
    }

    /// Number of threads the barrier waits for.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until every party has arrived. The last arrival releases
    /// the generation and is its leader.
    pub fn wait(&self) -> BarrierWaitResult {
        let mut state = self.state.lock();
        state.arrived += 1;
        if state.arrived == self.parties {
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            drop(state);
            self.cv.notify_all();
            return BarrierWaitResult { leader: true };
        }
        let generation = state.generation;
        while state.generation == generation {
            self.cv.wait(&mut state);
        }
        BarrierWaitResult { leader: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.wait().is_leader());
        assert!(b.wait().is_leader());
    }

    #[test]
    fn zero_parties_clamps_to_one() {
        let b = Barrier::new(0);
        assert_eq!(b.parties(), 1);
        assert!(b.wait().is_leader());
    }

    #[test]
    fn releases_all_with_one_leader_per_generation() {
        const N: usize = 4;
        const EPOCHS: usize = 50;
        let b = Barrier::new(N);
        let leaders = AtomicUsize::new(0);
        let arrivals = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..EPOCHS {
                        arrivals.fetch_add(1, Ordering::SeqCst);
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), EPOCHS);
        assert_eq!(arrivals.load(Ordering::SeqCst), N * EPOCHS);
    }

    /// Reuse safety: a thread racing ahead into the next generation
    /// must not be released by the previous generation's broadcast.
    /// Every epoch increments a shared counter exactly once (leader
    /// only); laggards verify the count matches their epoch.
    #[test]
    fn generations_do_not_bleed() {
        const N: usize = 3;
        const EPOCHS: u64 = 200;
        let b = Barrier::new(N);
        let epoch = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for e in 0..EPOCHS as usize {
                        if b.wait().is_leader() {
                            epoch.fetch_add(1, Ordering::SeqCst);
                        }
                        // Second barrier closes the epoch: everyone must
                        // observe the leader's increment for round e.
                        b.wait();
                        assert_eq!(epoch.load(Ordering::SeqCst), e + 1);
                    }
                });
            }
        });
    }
}
