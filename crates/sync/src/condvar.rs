//! A `parking_lot`-shaped condition variable over `std::sync::Condvar`.
//!
//! `wait` borrows the [`MutexGuard`] mutably instead of consuming it,
//! which keeps wait loops (`loop { if ready { .. } cond.wait(&mut g) }`)
//! free of rebinding noise. Internally the `std` guard is taken out of
//! the wrapper for the duration of the wait and put back before
//! returning.

use crate::mutex::{unpoison, MutexGuard};
use std::time::{Duration, Instant};

/// Result of a timed wait: did the deadline pass?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable; pairs with [`crate::Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condition variable: callers re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // beff-analyze: allow(unwrap, panicflow): guard.inner is Some outside an active wait by construction
        let g = guard.inner.take().expect("guard present");
        // The mutex is released for the duration of the wait, so its
        // rank leaves the thread's lockset and re-enters on wakeup.
        #[cfg(feature = "lock-order")]
        if let Some(r) = guard.rank {
            crate::order::release(r);
        }
        let g = unpoison(self.inner.wait(g));
        #[cfg(feature = "lock-order")]
        if let Some(r) = guard.rank {
            crate::order::acquire(r);
        }
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // beff-analyze: allow(unwrap): guard.inner is Some outside an active wait by construction
        let g = guard.inner.take().expect("guard present");
        #[cfg(feature = "lock-order")]
        if let Some(rk) = guard.rank {
            crate::order::release(rk);
        }
        let (g, r) = unpoison(self.inner.wait_timeout(g, timeout));
        #[cfg(feature = "lock-order")]
        if let Some(rk) = guard.rank {
            crate::order::acquire(rk);
        }
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: r.timed_out() }
    }

    /// Block until notified or the absolute `deadline` passed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutex;
    use std::sync::Arc;

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn wait_until_past_deadline_returns_immediately() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now());
        assert!(r.timed_out());
        // the guard is still usable after the timeout path
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_until_wakes_before_deadline() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut g = m.lock();
            while *g == 0 {
                if c.wait_until(&mut g, deadline).timed_out() {
                    return 0;
                }
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, c) = &*pair;
        *m.lock() = 7;
        c.notify_one();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn notify_one_wakes_exactly_enough() {
        // 4 waiters, 4 notifies with the flag set once each: all drain.
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&pair);
                s.spawn(move || {
                    let (m, c) = &*p;
                    let mut g = m.lock();
                    while *g == 0 {
                        c.wait(&mut g);
                    }
                    *g -= 1;
                });
            }
            std::thread::sleep(Duration::from_millis(20));
            let (m, c) = &*pair;
            *m.lock() = 4;
            c.notify_all();
        });
        assert_eq!(*pair.0.lock(), 0);
    }
}
