//! # beff-sync
//!
//! The in-tree synchronization substrate of the benchmark stack. Every
//! crate in the workspace locks through this facade instead of a
//! registry crate, so the whole b_eff / b_eff_io reproduction builds
//! with zero network access (the portability lesson of the paper: a
//! characterization benchmark is only useful where it *builds*).
//!
//! Two layers:
//!
//! * [`Mutex`] / [`Condvar`] / [`RwLock`] — thin wrappers over
//!   `std::sync` with the `parking_lot` API shape: `lock()` returns the
//!   guard directly (a poisoned lock is unwrapped — a rank that
//!   panicked already poisons its world through the mailbox protocol,
//!   so lock poisoning carries no extra information here), and
//!   `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//! * [`channel::bounded`] — a multi-producer/multi-consumer bounded
//!   channel built on [`Mutex`] + [`Condvar`], the in-tree replacement
//!   for `crossbeam-channel` in server/worker fan-out paths.

mod barrier;
pub mod channel;
mod condvar;
mod mutex;
pub mod order;
mod rwlock;

pub use barrier::{Barrier, BarrierWaitResult};
pub use channel::{bounded, unbounded, Receiver, RecvError, SendError, Sender, TryRecvError};
pub use condvar::{Condvar, WaitTimeoutResult};
pub use mutex::{Mutex, MutexGuard};
pub use order::Rank;
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
