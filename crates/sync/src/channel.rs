//! Multi-producer/multi-consumer channels on [`Mutex`] + [`Condvar`].
//!
//! The in-tree replacement for `crossbeam-channel`: both ends are
//! cloneable, [`bounded`] applies backpressure at `cap` queued
//! messages (`bounded(0)` degrades to capacity 1 rather than
//! implementing rendezvous), and a side disconnects when its last
//! handle drops. Throughput is a lock per operation — plenty for the
//! fan-out patterns in the simulated file-server paths, and measured
//! honestly in the `micro` timing binary.

use crate::order::Rank;
use crate::{Condvar, Mutex};
use std::collections::VecDeque;

/// Lock-hierarchy position of a channel's queue (DESIGN.md §8): the
/// leaf level — nothing else is acquired while a channel operation
/// holds its state.
static CHANNEL_RANK: Rank = Rank::new(80, "sync.channel");
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The message could not be delivered: every receiver is gone.
/// The unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The channel is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now; senders still exist.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a channel with no senders")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// `usize::MAX` for [`unbounded`]; otherwise the backpressure limit.
    cap: usize,
    /// Signalled when the queue gains a message or the last sender drops.
    not_empty: Condvar,
    /// Signalled when the queue loses a message or the last receiver drops.
    not_full: Condvar,
}

/// Sending half; clone for more producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clone for more consumers.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Channel with backpressure: `send` blocks once `cap` messages queue.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(cap.max(1))
}

/// Channel without backpressure: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::ranked(&CHANNEL_RANK, State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < sh.cap {
                st.queue.push_back(value);
                sh.not_empty.notify_one();
                return Ok(());
            }
            sh.not_full.wait(&mut st);
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                sh.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            sh.not_empty.wait(&mut st);
        }
    }

    /// Take the next message only if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        match st.queue.pop_front() {
            Some(v) => {
                sh.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Take the next message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = Instant::now() + timeout;
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                sh.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            if sh.not_empty.wait_until(&mut st, deadline).timed_out() {
                // One last poll: a send may have raced the deadline.
                return match st.queue.pop_front() {
                    Some(v) => {
                        sh.not_full.notify_one();
                        Ok(v)
                    }
                    None if st.senders == 0 => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                };
            }
        }
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&self) -> Vec<T> {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        let out: Vec<T> = st.queue.drain(..).collect();
        if !out.is_empty() {
            sh.not_full.notify_all();
        }
        out
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake receivers so they observe the disconnect.
            sh.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let sh = &*self.shared;
        let mut st = sh.state.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            sh.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            assert_eq!(tx.send(i), Ok(()));
        }
        for i in 0..8 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.send(1), Ok(()));
        assert_eq!(tx.send(2), Ok(()));
        let h = std::thread::spawn(move || {
            assert_eq!(tx.send(3), Ok(())); // blocks until a slot frees
            3
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        // beff-analyze: allow(unwrap): join error is panic propagation, not a typed error
        assert_eq!(h.join().unwrap(), 3);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_every_message_delivered_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER: u64 = 500;
        let (tx, rx) = bounded(16);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    assert_eq!(tx.send(p * PER + i), Ok(()));
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            // beff-analyze: allow(unwrap): join error is panic propagation, not a typed error
            h.join().unwrap();
        }
        // beff-analyze: allow(unwrap): join error is panic propagation, not a typed error
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..PRODUCERS as u64 * PER).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn recv_errors_after_senders_gone() {
        let (tx, rx) = unbounded();
        assert_eq!(tx.send(9), Ok(()));
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.send(0), Ok(()));
        let h = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        // beff-analyze: allow(unwrap): join error is panic propagation, not a typed error
        assert_eq!(h.join().unwrap(), Err(SendError(1)));
    }

    #[test]
    fn try_recv_and_timeout_report_state() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(TryRecvError::Empty)
        );
        assert_eq!(tx.send(1), Ok(()));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(TryRecvError::Disconnected)
        );
    }

    #[test]
    fn zero_capacity_degrades_to_one() {
        let (tx, rx) = bounded(0);
        assert_eq!(tx.send(1), Ok(())); // does not deadlock
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn drain_empties_queue() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            assert_eq!(tx.send(i), Ok(()));
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}
