//! A `parking_lot`-shaped reader-writer lock over `std::sync::RwLock`.

use crate::mutex::unpoison;
use crate::order::Rank;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Reader-writer lock with guard-returning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    /// Position in the lock hierarchy, if declared (see [`Rank`]).
    /// Tracked only under the `lock-order` feature. Readers and writers
    /// are checked alike: even read-read nesting at one level deadlocks
    /// once a writer queues between them.
    #[cfg(feature = "lock-order")]
    rank: Option<&'static Rank>,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    rank: Option<&'static Rank>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    rank: Option<&'static Rank>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lock-order")]
            rank: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// A lock participating in the lock hierarchy at `rank`. Identical
    /// to [`RwLock::new`] unless the `lock-order` feature is on, in
    /// which case every acquisition is order-checked (see
    /// [`crate::order`]).
    pub const fn ranked(rank: &'static Rank, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = rank;
        Self {
            #[cfg(feature = "lock-order")]
            rank: Some(rank),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        RwLockReadGuard {
            inner: unpoison(self.inner.read()),
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        }
    }

    /// Acquire exclusive access, blocking until all guards are dropped.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        RwLockWriteGuard {
            inner: unpoison(self.inner.write()),
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        Some(RwLockReadGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        })
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        Some(RwLockWriteGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            crate::order::release(r);
        }
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            crate::order::release(r);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwLock::new(3);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 6);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn try_read_blocked_by_writer() {
        let l = RwLock::new(0);
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn contended_writes_all_land() {
        let l = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..500 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 2000);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut l = RwLock::new(1);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 2);
    }
}
