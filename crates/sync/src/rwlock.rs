//! A `parking_lot`-shaped reader-writer lock over `std::sync::RwLock`.

use crate::mutex::unpoison;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Reader-writer lock with guard-returning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: unpoison(self.inner.read()) }
    }

    /// Acquire exclusive access, blocking until all guards are dropped.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: unpoison(self.inner.write()) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwLock::new(3);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 6);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn try_read_blocked_by_writer() {
        let l = RwLock::new(0);
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn contended_writes_all_land() {
        let l = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..500 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 2000);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut l = RwLock::new(1);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 2);
    }
}
