//! A `parking_lot`-shaped mutex over `std::sync::Mutex`.
//!
//! `lock()` returns the guard directly; a poisoned lock is unwrapped
//! rather than surfaced as a `Result`. The simulation already has a
//! first-class abort protocol (mailbox poisoning re-raises the first
//! rank panic), so the standard library's poisoning adds only noise:
//! any state a panicking rank left behind is either torn down with the
//! world or repriced on the next run.

use crate::order::Rank;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion with guard-returning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    /// Position in the lock hierarchy, if declared (see [`Rank`]).
    /// Tracked only under the `lock-order` feature.
    #[cfg(feature = "lock-order")]
    rank: Option<&'static Rank>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
///
/// The guard holds the `std` guard in an `Option` so [`Condvar`]
/// (crate::Condvar) can temporarily take ownership during a wait and
/// put it back afterwards — that is what lets `wait` borrow the guard
/// mutably (`parking_lot` shape) instead of consuming it (`std` shape).
pub struct MutexGuard<'a, T: ?Sized> {
    pub(crate) inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Rank to release when the guard drops (or a condvar wait hands
    /// the lock back). Mirrors the owning mutex's rank.
    #[cfg(feature = "lock-order")]
    pub(crate) rank: Option<&'static Rank>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lock-order")]
            rank: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A mutex participating in the lock hierarchy at `rank`. Identical
    /// to [`Mutex::new`] unless the `lock-order` feature is on, in
    /// which case every acquisition is order-checked (see
    /// [`crate::order`]).
    pub const fn ranked(rank: &'static Rank, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = rank;
        Self {
            #[cfg(feature = "lock-order")]
            rank: Some(rank),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Order-check *before* blocking: an inverted acquisition panics
        // deterministically instead of deadlocking intermittently.
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        // A failed try can't deadlock, so the order check applies only
        // to successful acquisitions.
        #[cfg(feature = "lock-order")]
        if let Some(r) = self.rank {
            crate::order::acquire(r);
        }
        Some(MutexGuard {
            inner: Some(g),
            #[cfg(feature = "lock-order")]
            rank: self.rank,
        })
    }

    /// Mutable access without locking (requires `&mut self`, so the
    /// borrow checker already guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// Strip the poison wrapper: the panic that poisoned the lock is
/// already propagating through the world-abort protocol.
pub(crate) fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T: ?Sized> MutexGuard<'_, T> {
    #[inline]
    pub(crate) fn std_guard(&self) -> &std::sync::MutexGuard<'_, T> {
        // `inner` is only `None` transiently inside `Condvar::wait*`,
        // which holds the only `&mut` borrow.
        // beff-analyze: allow(unwrap): inner is Some outside an active condvar wait by construction
        self.inner.as_ref().expect("guard present outside a condvar wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.std_guard()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // beff-analyze: allow(unwrap): inner is Some outside an active condvar wait by construction
        self.inner.as_mut().expect("guard present outside a condvar wait")
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            crate::order::release(r);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn poisoned_lock_still_opens() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "poison is unwrapped, data intact");
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(5);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
