//! Runtime lock-ordering: the dynamic half of the workspace lock
//! hierarchy (DESIGN.md §8, `beff-analyze` rule `lock-order`).
//!
//! Each lock that participates in the hierarchy is constructed with
//! [`Mutex::ranked`](crate::Mutex::ranked) /
//! [`RwLock::ranked`](crate::RwLock::ranked), naming a static [`Rank`].
//! With the `lock-order` cargo feature enabled, every acquisition is
//! checked against a thread-local set of currently held ranks: taking a
//! lock whose level is not strictly greater than every held level
//! panics with both lock names, turning a would-be deadlock into a
//! deterministic test failure. Without the feature the rank collapses
//! to an ignored `&'static` and the checks compile out entirely.
//!
//! The static pass in `beff-analyze` sees nesting that is textually
//! visible inside one function; this checker sees the nesting that
//! actually happens across calls at test time. Together they cover the
//! hierarchy from both ends.

/// A position in the workspace lock hierarchy. Declared `static` at the
/// crate that owns the lock; levels are acquired in strictly increasing
/// order.
#[derive(Debug)]
pub struct Rank {
    pub level: u16,
    pub name: &'static str,
}

impl Rank {
    pub const fn new(level: u16, name: &'static str) -> Self {
        Self { level, name }
    }
}

#[cfg(feature = "lock-order")]
pub(crate) use tracking::{acquire, release};

#[cfg(feature = "lock-order")]
mod tracking {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Check `rank` against the held set, then record it. Panics if any
    /// held level is ≥ `rank.level` — the hierarchy requires strictly
    /// increasing acquisition.
    pub(crate) fn acquire(rank: &Rank) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(lvl, name)) = h.iter().find(|&&(lvl, _)| lvl >= rank.level) {
                // beff-analyze: allow(panicflow): this panic IS the lock-order gate — a detected inversion must abort the test run, never be converted to a value
                panic!(
                    "lock-order violation: acquiring '{}' (level {}) while '{}' (level {}) \
                     is held; the hierarchy requires strictly increasing levels",
                    rank.name, rank.level, name, lvl
                );
            }
            h.push((rank.level, rank.name));
        });
    }

    /// Forget the innermost record of `rank` (guard drop, or a condvar
    /// wait handing the lock back).
    pub(crate) fn release(rank: &Rank) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) =
                h.iter().rposition(|&(lvl, name)| lvl == rank.level && name == rank.name)
            {
                h.remove(pos);
            }
        });
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        static LOW: Rank = Rank::new(10, "test.low");
        static HIGH: Rank = Rank::new(20, "test.high");

        #[test]
        fn increasing_order_is_clean() {
            acquire(&LOW);
            acquire(&HIGH);
            release(&HIGH);
            release(&LOW);
        }

        #[test]
        fn inverted_order_panics() {
            // Separate thread: panics must not corrupt this thread's set.
            let r = std::thread::spawn(|| {
                acquire(&HIGH);
                acquire(&LOW); // level 10 while 20 held
            })
            .join();
            assert!(r.is_err());
        }

        #[test]
        fn same_level_reacquisition_panics() {
            let r = std::thread::spawn(|| {
                acquire(&LOW);
                acquire(&LOW);
            })
            .join();
            assert!(r.is_err());
        }

        #[test]
        fn release_unblocks_the_level() {
            acquire(&HIGH);
            release(&HIGH);
            acquire(&LOW); // fine: nothing held any more
            release(&LOW);
        }
    }
}
