//! Seeded, deterministic fault injection for the simulated world.
//!
//! Real machines jitter, straggle and occasionally lose messages; the
//! paper's b_eff is time-driven precisely so it survives them. This
//! crate gives the perfect simulated machine those imperfections back
//! — on purpose, reproducibly:
//!
//! - a [`FaultSpec`] names which fault classes are active and how hard
//!   they bite (`severity` in 0..=1);
//! - [`FaultSpec::materialize`] draws a concrete [`FaultPlan`] from the
//!   `beff-check` RNG (override the seed with `BEFF_FAULT_SEED`, same
//!   decimal-or-0x parsing as `BEFF_CHECK_SEED`);
//! - a [`FaultSession`] carries the plan across the per-pattern runs of
//!   one benchmark execution, accumulating virtual time (each world run
//!   restarts its clocks at zero) and remembering which ranks died.
//!
//! Determinism contract: the plan is a pure function of (seed, spec,
//! topology); every injected decision — drop or deliver, crash time,
//! degradation window — is drawn from the plan by counters that follow
//! the token scheduler's deterministic rank interleaving. Same (seed,
//! plan) ⇒ bit-identical results, including the fault outcomes. With no
//! plan active the instrumented code paths perform the exact float
//! arithmetic they did before the fault layer existed (guarded by
//! `Option`/flag checks only), so fault-free runs stay byte-identical
//! to the pre-fault golden outputs.

pub mod error;
pub mod plan;
pub mod session;

pub use error::{silence_fault_panics, BeffError};
pub use plan::{
    resolve_seed, Crash, DropPlan, FaultPlan, FaultSpec, LinkWindow, Straggler, ENV_SEED,
};
pub use session::{FaultSession, FaultStats};
