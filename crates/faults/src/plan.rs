//! Fault specifications and their materialized, replayable plans.
//!
//! A [`FaultSpec`] is the knob panel (which classes, how severe); a
//! [`FaultPlan`] is the concrete schedule drawn from it with the
//! `beff-check` RNG against one topology. The plan is plain data —
//! serializable, comparable, and the only thing the injection hooks
//! ever consult — so replaying a (seed, spec, topology) triple
//! reproduces the exact same fault schedule byte for byte.

use beff_check::Gen;
use beff_json::{Json, ToJson};
use beff_netsim::{MachineNet, Secs};

/// Environment override for the fault seed, parsed like
/// `BEFF_CHECK_SEED`: decimal or `0x`-prefixed hex.
pub const ENV_SEED: &str = "BEFF_FAULT_SEED";

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// The seed a fault plan will actually use: `BEFF_FAULT_SEED` when set,
/// otherwise `default`.
pub fn resolve_seed(default: u64) -> u64 {
    env_u64(ENV_SEED).unwrap_or(default)
}

/// splitmix64 — the standard 64-bit finalizer-style mixer. Used to turn
/// (seed, src, dst, seq, attempt) into an independent uniform draw so
/// per-message drop decisions need no shared RNG state (and hence no
/// cross-rank ordering sensitivity).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which fault classes are active and how hard they bite.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for plan materialization (after `BEFF_FAULT_SEED` override).
    pub seed: u64,
    /// Overall severity in `0.0..=1.0`; scales slowdowns, multipliers
    /// and drop rates. Severity 0 produces an empty schedule for the
    /// scaled classes.
    pub severity: f64,
    /// Degrade every link's bandwidth for the whole run.
    pub degrade: bool,
    /// Degrade links in on/off windows (flapping) instead of uniformly.
    pub flapping: bool,
    /// Number of straggler ranks (compute + overhead multipliers).
    pub stragglers: usize,
    /// Drop messages at the wire with probability `0.35 * severity`,
    /// retransmitting with exponential backoff.
    pub drops: bool,
    /// Number of ranks that crash at a drawn virtual time.
    pub crashes: usize,
    /// Number of permanently dead links.
    pub dead_links: usize,
    /// Slow the parallel filesystem servers by `1 + 4 * severity`.
    pub io_slow: bool,
}

impl FaultSpec {
    /// No faults at all (still seeded, so `materialize` is total).
    pub fn none(seed: u64) -> Self {
        Self {
            seed: resolve_seed(seed),
            severity: 0.0,
            degrade: false,
            flapping: false,
            stragglers: 0,
            drops: false,
            crashes: 0,
            dead_links: 0,
            io_slow: false,
        }
    }

    pub fn with_severity(mut self, severity: f64) -> Self {
        assert!((0.0..=1.0).contains(&severity), "severity must be in 0..=1");
        self.severity = severity;
        self
    }

    pub fn degrade(mut self) -> Self {
        self.degrade = true;
        self
    }

    pub fn flapping(mut self) -> Self {
        self.flapping = true;
        self
    }

    pub fn stragglers(mut self, n: usize) -> Self {
        self.stragglers = n;
        self
    }

    pub fn drops(mut self) -> Self {
        self.drops = true;
        self
    }

    pub fn crashes(mut self, n: usize) -> Self {
        self.crashes = n;
        self
    }

    pub fn dead_links(mut self, n: usize) -> Self {
        self.dead_links = n;
        self
    }

    pub fn io_slow(mut self) -> Self {
        self.io_slow = true;
        self
    }

    /// Draw the concrete fault schedule for `net`. Pure function of
    /// (self, net topology): the RNG is seeded from `self.seed` alone
    /// and consumed in a fixed class order, so the same spec on the
    /// same topology always yields the same plan.
    pub fn materialize(&self, net: &MachineNet) -> FaultPlan {
        self.materialize_dims(net.procs(), net.links().len())
    }

    /// [`materialize`](Self::materialize) against bare dimensions.
    /// The plan only ever depends on the topology through its actor
    /// and link counts, so non-network workloads (e.g. the PFS storage
    /// sweep, which has clients but no wire) can draw the identical
    /// schedule without a `MachineNet` in hand.
    pub fn materialize_dims(&self, procs: usize, num_links: usize) -> FaultPlan {
        let mut g = Gen::new(self.seed);
        let sev = self.severity;

        // Link degradation: the multiplier is monotone in severity so
        // the chaos suite's "b_eff non-increasing with severity" claim
        // has a mechanical basis.
        let mut link_windows = Vec::new();
        if self.degrade && sev > 0.0 {
            let slowdown = 1.0 + 9.0 * sev;
            for link in 0..num_links {
                link_windows.push(LinkWindow { link, t0: 0.0, t1: f64::INFINITY, slowdown });
            }
        }
        if self.flapping && sev > 0.0 {
            let slowdown = 1.0 + 9.0 * sev;
            for link in 0..num_links {
                // Three bursts per link somewhere in the first half
                // second of virtual time; beyond that the link is clean.
                for _ in 0..3 {
                    let t0 = g.f64(0.0, 0.5);
                    let width = g.f64(0.005, 0.05);
                    link_windows.push(LinkWindow { link, t0, t1: t0 + width, slowdown });
                }
            }
        }

        let mut dead = Vec::new();
        if self.dead_links > 0 && num_links > 0 {
            let mut perm = g.permutation(num_links);
            perm.truncate(self.dead_links.min(num_links));
            perm.sort_unstable();
            dead = perm;
        }

        let mut stragglers = Vec::new();
        if self.stragglers > 0 && sev > 0.0 {
            let mult = 1.0 + 7.0 * sev;
            let mut perm = g.permutation(procs);
            perm.truncate(self.stragglers.min(procs));
            perm.sort_unstable();
            for rank in perm {
                stragglers.push(Straggler { rank, compute_mult: mult, overhead_mult: mult });
            }
        }

        let drops = if self.drops && sev > 0.0 {
            // Threshold comparison (`hash < threshold`) makes the set of
            // dropped messages a superset of every lower severity's set:
            // raising severity only ever adds delay.
            let rate = 0.35 * sev;
            Some(DropPlan {
                threshold: (rate * 4_294_967_296.0) as u64,
                max_retransmits: 12,
                rto: 2.0e-4,
            })
        } else {
            None
        };

        let mut crashes = Vec::new();
        if self.crashes > 0 && procs > 0 {
            let mut perm = g.permutation(procs);
            perm.truncate(self.crashes.min(procs));
            perm.sort_unstable();
            for rank in perm {
                let at = g.f64(0.01, 0.2);
                crashes.push(Crash { rank, at });
            }
        }

        let io_slowdown = if self.io_slow && sev > 0.0 { 1.0 + 4.0 * sev } else { 1.0 };

        FaultPlan {
            seed: self.seed,
            severity: sev,
            link_windows,
            dead_links: dead,
            stragglers,
            drops,
            crashes,
            io_slowdown,
        }
    }
}

/// Degrade one link's bandwidth by `slowdown` over `[t0, t1)` of
/// accumulated virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkWindow {
    pub link: usize,
    pub t0: Secs,
    pub t1: Secs,
    pub slowdown: f64,
}

/// Per-rank slowdown multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    pub rank: usize,
    pub compute_mult: f64,
    pub overhead_mult: f64,
}

/// A rank death at an absolute (accumulated) virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crash {
    pub rank: usize,
    pub at: Secs,
}

/// Transient wire-level message loss with bounded retransmit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropPlan {
    /// Drop when `hash >> 32 < threshold` (so `threshold / 2^32` is the
    /// drop probability, monotone in severity).
    pub threshold: u64,
    pub max_retransmits: u32,
    /// Base retransmission timeout; attempt `k` waits `rto * 2^k`.
    pub rto: Secs,
}

/// The materialized, replayable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub severity: f64,
    pub link_windows: Vec<LinkWindow>,
    pub dead_links: Vec<usize>,
    pub stragglers: Vec<Straggler>,
    pub drops: Option<DropPlan>,
    pub crashes: Vec<Crash>,
    pub io_slowdown: f64,
}

impl FaultPlan {
    pub fn empty() -> Self {
        Self {
            seed: 0,
            severity: 0.0,
            link_windows: Vec::new(),
            dead_links: Vec::new(),
            stragglers: Vec::new(),
            drops: None,
            crashes: Vec::new(),
            io_slowdown: 1.0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.link_windows.is_empty()
            && self.dead_links.is_empty()
            && self.stragglers.is_empty()
            && self.drops.is_none()
            && self.crashes.is_empty()
            && self.io_slowdown == 1.0
    }

    pub fn overhead_mult(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.rank == rank)
            .map_or(1.0, |s| s.overhead_mult)
    }

    pub fn compute_mult(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.rank == rank)
            .map_or(1.0, |s| s.compute_mult)
    }

    pub fn crash_at(&self, rank: usize) -> Option<Secs> {
        self.crashes.iter().find(|c| c.rank == rank).map(|c| c.at)
    }

    /// A plan whose only content is `rank` dying at virtual t=0: the
    /// canonical *world poison*. Any run under this plan raises a typed
    /// [`BeffError::RankCrashed`](beff_sim::BeffError) before the first
    /// message moves — the serve layer's quarantine harness uses it to
    /// damage a pooled world deterministically and prove the pool
    /// rebuilds fresh state (DESIGN.md §12).
    pub fn instant_crash(rank: usize) -> Self {
        Self { crashes: vec![Crash { rank, at: 0.0 }], ..Self::empty() }
    }

    /// Whether the wire-fault prologue (drops/dead routes) must run at
    /// all for sends.
    pub fn has_wire_faults(&self) -> bool {
        self.drops.is_some() || !self.dead_links.is_empty()
    }

    pub fn max_retransmits(&self) -> u32 {
        self.drops.map_or(3, |d| d.max_retransmits)
    }

    pub fn rto(&self) -> Secs {
        self.drops.map_or(1.0e-3, |d| d.rto)
    }

    /// Deterministic per-copy drop decision: a pure hash of (seed, src,
    /// dst, seq, attempt), independent of rank interleaving.
    pub fn should_drop(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        let Some(d) = &self.drops else { return false };
        let key = splitmix64(self.seed)
            ^ splitmix64(((src as u64) << 32) | dst as u64)
            ^ splitmix64(seq.wrapping_mul(0x100).wrapping_add(attempt as u64));
        (splitmix64(key) >> 32) < d.threshold
    }
}

impl ToJson for LinkWindow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("link", &self.link)
            .field("t0", &self.t0)
            .field("t1", &self.t1)
            .field("slowdown", &self.slowdown)
            .build()
    }
}

impl ToJson for Straggler {
    fn to_json(&self) -> Json {
        Json::object()
            .field("rank", &self.rank)
            .field("compute_mult", &self.compute_mult)
            .field("overhead_mult", &self.overhead_mult)
            .build()
    }
}

impl ToJson for Crash {
    fn to_json(&self) -> Json {
        Json::object().field("rank", &self.rank).field("at", &self.at).build()
    }
}

impl ToJson for DropPlan {
    fn to_json(&self) -> Json {
        Json::object()
            .field("threshold", &self.threshold)
            .field("max_retransmits", &self.max_retransmits)
            .field("rto", &self.rto)
            .build()
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::object()
            .field("seed", &self.seed)
            .field("severity", &self.severity)
            .field("link_windows", &self.link_windows)
            .field("dead_links", &self.dead_links)
            .field("stragglers", &self.stragglers)
            .field("drops", &self.drops)
            .field("crashes", &self.crashes)
            .field("io_slowdown", &self.io_slowdown)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_netsim::{MachineNet, NetParams, Topology};

    fn net() -> MachineNet {
        MachineNet::new(Topology::Ring { procs: 8 }, NetParams::default())
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec = FaultSpec::none(42)
            .with_severity(0.7)
            .degrade()
            .stragglers(2)
            .drops()
            .crashes(1)
            .dead_links(1);
        let n = net();
        let a = spec.materialize(&n);
        let b = spec.materialize(&n);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn severity_zero_scaled_classes_vanish() {
        let spec = FaultSpec::none(7).degrade().stragglers(3).drops().io_slow();
        let plan = spec.materialize(&net());
        assert!(plan.is_empty(), "severity 0 must not schedule scaled faults");
    }

    #[test]
    fn drop_sets_nest_with_severity() {
        // hash < threshold is monotone: everything dropped at low
        // severity is also dropped at high severity.
        let n = net();
        let lo = FaultSpec::none(9).with_severity(0.3).drops().materialize(&n);
        let hi = FaultSpec::none(9).with_severity(0.9).drops().materialize(&n);
        for seq in 0..2000u64 {
            if lo.should_drop(0, 1, seq, 0) {
                assert!(hi.should_drop(0, 1, seq, 0), "drop sets must nest (seq {seq})");
            }
        }
    }

    #[test]
    fn drop_rate_tracks_threshold() {
        let plan = FaultSpec::none(11).with_severity(1.0).drops().materialize(&net());
        let hits = (0..10_000u64).filter(|&s| plan.should_drop(2, 3, s, 0)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.35).abs() < 0.03, "empirical drop rate {rate} far from 0.35");
    }
}
