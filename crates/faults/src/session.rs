//! The live side of a fault plan: one [`FaultSession`] spans every
//! world run of a benchmark execution.
//!
//! Each simulated run restarts its virtual clocks at zero, but crash
//! times and flapping windows are scheduled in *accumulated* virtual
//! time so a crash can land in the middle of pattern 7. The session
//! keeps that epoch: the driver calls [`FaultSession::advance_epoch`]
//! with each run's end time, and [`FaultSession::install`] shifts the
//! plan's windows into the next run's local time frame. Crashed ranks
//! stay crashed across runs — exactly like a real dead node.

use crate::error::BeffError;
use crate::plan::{FaultPlan, LinkWindow};
use beff_netsim::{Degrade, MachineNet, Secs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Injection counters, updated from inside the world. Relaxed atomics:
/// the token scheduler serializes rank execution, these only need to
/// survive the thread handoffs.
#[derive(Debug, Default)]
pub struct FaultStats {
    drops: AtomicU64,
    retransmits: AtomicU64,
}

impl FaultStats {
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }
}

/// Shared state carrying a [`FaultPlan`] across world runs.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    /// Crash flags are sticky: bit `rank` set means the rank died in
    /// some earlier (or the current) run.
    crashed: Vec<AtomicU64>,
    /// Accumulated virtual time of all completed runs, stored as f64
    /// bits.
    epoch_bits: AtomicU64,
    /// Per-rank message sequence counters feeding the drop hash.
    seqs: Vec<AtomicU64>,
    pub stats: FaultStats,
}

impl FaultSession {
    pub fn new(plan: FaultPlan, ranks: usize) -> Arc<Self> {
        Arc::new(Self {
            plan,
            crashed: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            epoch_bits: AtomicU64::new(0f64.to_bits()),
            seqs: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            stats: FaultStats::default(),
        })
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Accumulated virtual time of all runs completed so far.
    pub fn epoch(&self) -> Secs {
        f64::from_bits(self.epoch_bits.load(Ordering::Relaxed))
    }

    /// Credit a completed run's duration to the epoch. Call once per
    /// world run, from the driver, with a deterministic duration.
    pub fn advance_epoch(&self, dt: Secs) {
        let now = self.epoch() + dt.max(0.0);
        self.epoch_bits.store(now.to_bits(), Ordering::Relaxed);
    }

    /// Next message sequence number for `rank` (feeds the drop hash).
    pub fn next_seq(&self, rank: usize) -> u64 {
        self.seqs[rank].fetch_add(1, Ordering::Relaxed)
    }

    pub fn is_crashed(&self, rank: usize) -> bool {
        self.crashed[rank].load(Ordering::Relaxed) != 0
    }

    pub fn crashed_ranks(&self) -> Vec<usize> {
        (0..self.crashed.len()).filter(|&r| self.is_crashed(r)).collect()
    }

    /// Check `rank` against its crash schedule at local run time `now`.
    /// Returns the typed error if the rank is already dead or just
    /// reached its crash time (marking it dead for good).
    pub fn crash_check(&self, rank: usize, now: Secs) -> Option<BeffError> {
        if self.is_crashed(rank) {
            let at = self.plan.crash_at(rank).unwrap_or(0.0);
            return Some(BeffError::RankCrashed { rank, at });
        }
        let at = self.plan.crash_at(rank)?;
        if self.epoch() + now >= at {
            self.crashed[rank].store(1, Ordering::Relaxed);
            return Some(BeffError::RankCrashed { rank, at });
        }
        None
    }

    /// Program the plan's link faults into `net` for the run that is
    /// about to start, shifting epoch-time windows into the run's local
    /// time frame. Clears any previously installed link faults first,
    /// so calling this after every `net.reset()` leaves the net exactly
    /// as the plan dictates.
    pub fn install(&self, net: &MachineNet) {
        for link in net.links() {
            link.clear_faults();
        }
        let epoch = self.epoch();
        let links = net.links();
        let mut windows: Vec<Vec<Degrade>> = vec![Vec::new(); links.len()];
        for &LinkWindow { link, t0, t1, slowdown } in &self.plan.link_windows {
            if link >= links.len() || t1 <= epoch {
                continue;
            }
            windows[link].push(Degrade {
                from: (t0 - epoch).max(0.0),
                until: t1 - epoch,
                slowdown,
            });
        }
        for (link, ws) in links.iter().zip(windows) {
            if !ws.is_empty() {
                link.set_fault_windows(ws);
            }
        }
        for &l in &self.plan.dead_links {
            if l < links.len() {
                links[l].set_dead(true);
            }
        }
    }

    /// Remove every installed link fault from `net`.
    pub fn clear(net: &MachineNet) {
        for link in net.links() {
            link.clear_faults();
        }
    }

    pub fn note_drop(&self) {
        self.stats.drops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_retransmit(&self) {
        self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
    }
}
