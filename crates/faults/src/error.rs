//! Typed fault errors — re-exported from the simulation substrate.
//!
//! [`BeffError`] moved into `beff-sim` when the scheduler and port
//! machinery (which raise `Deadlock` / `PeerFailed`) were extracted;
//! this shim keeps the historical `beff_faults::BeffError` and
//! `beff_faults::error::*` paths working for every consumer.

pub use beff_sim::error::*;
