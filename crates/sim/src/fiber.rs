//! Stackful user-space fibers for the simulated world (x86_64 only).
//!
//! Sim mode runs exactly one rank at a time (see [`crate::sched`]), so
//! OS threads buy nothing and cost plenty: every token handoff is a
//! futex wake, a kernel context switch and a cold-cache landing —
//! measured at ~4–5 µs per handoff with 512 rank threads on one core,
//! which is the dominant cost of a large simulated run. A fiber switch
//! is ~20 instructions in user space, so the same handoff costs tens of
//! nanoseconds and the scheduler state stays cache-hot.
//!
//! The contract is deliberately narrow:
//!
//! * every fiber of a world is created, resumed and destroyed by one
//!   host thread (the caller of `World::run`);
//! * a fiber suspends only at explicit scheduler points (blocked recv,
//!   collective rendezvous, exit) by switching back to the host;
//! * panics never unwind across a switch: the rank body runs under
//!   `catch_unwind` *inside* the fiber, and the stored result is
//!   re-thrown on the host side;
//! * a fiber closure never returns — its last action is the final
//!   switch to the host (`SimScheduler::fiber_exit`).
//!
//! Stacks are heap allocations without guard pages, so each carries a
//! canary at the deep end that the runtime checks after the run. Other
//! architectures fall back to the thread-parking scheduler, which has
//! identical semantics (and identical, bit-deterministic results —
//! both schedulers replay the same FIFO token order).

use std::alloc::{alloc, dealloc, Layout};
use std::arch::naked_asm;

/// Default fiber stack size. Generous for the benchmark closures (heap
/// buffers, shallow call depth) while staying lazily committed: the
/// allocator mmaps at this size, so untouched pages cost no RSS.
pub const STACK_SIZE: usize = 1 << 20;

const STACK_ALIGN: usize = 64;
const CANARY: u64 = 0xBEEF_F1BE_57AC_CA4D;

/// One heap-allocated fiber stack with a deep-end canary.
pub struct FiberStack {
    base: *mut u8,
    size: usize,
}

// SAFETY: a stack is plain memory; the runtime moves sets of them
// between session runs, but all *use* stays on the driving thread.
unsafe impl Send for FiberStack {}
// SAFETY: shared references only expose the canary word, which is
// written once before any fiber runs.
unsafe impl Sync for FiberStack {}

impl FiberStack {
    pub fn new(size: usize) -> Self {
        let layout = Layout::from_size_align(size, STACK_ALIGN).expect("stack layout");
        // SAFETY: `layout` has non-zero size (STACK_SIZE) and valid
        // alignment; the null result is checked on the next line.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "fiber stack allocation failed");
        // SAFETY: `base` is a live allocation of at least 8 aligned
        // bytes (STACK_ALIGN = 64), so the u64 canary write is in
        // bounds and aligned.
        unsafe { (base as *mut u64).write(CANARY) };
        Self { base, size }
    }

    /// Exclusive top of the stack (stacks grow down).
    fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the owned allocation, which is
        // explicitly allowed for pointer arithmetic.
        unsafe { self.base.add(self.size) }
    }

    /// Did the fiber ever scribble over the deep end? (No guard pages
    /// on heap stacks, so this is the overflow tripwire.)
    pub fn canary_intact(&self) -> bool {
        // SAFETY: reads the canary word written by `new` inside the
        // live allocation; fibers never legally reach this deep.
        unsafe { (self.base as *const u64).read() == CANARY }
    }
}

impl Drop for FiberStack {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.size, STACK_ALIGN).expect("stack layout");
        // SAFETY: `base` came from `alloc` with this exact layout and
        // is freed exactly once (Drop).
        unsafe { dealloc(self.base, layout) };
    }
}

/// Saved stack pointers for one world: the host context plus one per
/// rank. Only the driving host thread ever reads or writes these (the
/// narrow contract above); the raw cells exist because `WorldShared`
/// must stay `Sync` for the thread-mode scheduler.
pub struct FiberSet {
    host_sp: std::cell::UnsafeCell<*mut u8>,
    sps: Vec<std::cell::UnsafeCell<*mut u8>>,
}

// SAFETY: see struct docs — single-thread use by construction; the
// raw cells are only touched by the driving host thread.
unsafe impl Send for FiberSet {}
// SAFETY: as above — `Sync` exists for `WorldShared`'s sake, not for
// actual cross-thread access.
unsafe impl Sync for FiberSet {}

impl FiberSet {
    pub fn new(n: usize) -> Self {
        Self {
            host_sp: std::cell::UnsafeCell::new(std::ptr::null_mut()),
            sps: (0..n).map(|_| std::cell::UnsafeCell::new(std::ptr::null_mut())).collect(),
        }
    }

    /// Install a freshly initialized fiber (see [`init_fiber`]).
    pub fn install(&self, rank: usize, sp: *mut u8) {
        // SAFETY: install happens on the driving thread before any
        // resume; no other reference to the cell exists yet.
        unsafe { *self.sps[rank].get() = sp };
    }

    /// Host → fiber. Returns when the fiber switches back.
    ///
    /// # Safety
    /// `rank` must hold an initialized, non-finished fiber, and the
    /// caller must be the driving host thread.
    pub unsafe fn resume(&self, rank: usize) {
        // SAFETY: caller contract (driving host thread, initialized
        // fiber); the cells are written only by this thread.
        unsafe { fiber_switch(self.host_sp.get(), self.sps[rank].get()) };
    }

    /// Fiber → host. Returns when the host resumes this fiber.
    ///
    /// # Safety
    /// Must be called from the fiber registered at `rank`.
    pub unsafe fn to_host(&self, rank: usize) {
        // SAFETY: caller contract (called from the fiber registered at
        // `rank`); the host slot was saved by the matching resume.
        unsafe { fiber_switch(self.sps[rank].get(), self.host_sp.get()) };
    }
}

/// Prepare `stack` so the first [`FiberSet::resume`] enters `body`.
/// The closure is boxed twice so a single (thin) pointer smuggles it
/// through the register file.
///
/// # Safety
/// The caller must keep `stack` alive and drive the fiber to
/// completion (its final switch) before dropping it; `body`'s borrows
/// must outlive the run (the runtime guarantees both).
pub unsafe fn init_fiber(stack: &FiberStack, body: Box<dyn FnOnce() + '_>) -> *mut u8 {
    // SAFETY: lifetime erasure only — the fiber completes before the
    // borrowed data dies (runtime contract, see # Safety above), and
    // the box layout is lifetime-free.
    let body: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(body) };
    let closure = Box::into_raw(Box::new(body)) as u64;

    let top = stack.top();
    // SAFETY: all writes land inside `stack`'s allocation (72 bytes
    // below its top, far above the canary), and the save-area layout
    // matches fiber_switch's asm exactly.
    unsafe {
        // Layout mirrors fiber_switch's save area (see its asm):
        //   sp + 0   mxcsr | x87 cw
        //   sp + 8   r15
        //   sp + 16  r14
        //   sp + 24  r13
        //   sp + 32  r12  ← closure pointer for fiber_entry
        //   sp + 40  rbx
        //   sp + 48  rbp  (0 terminates frame-pointer walks)
        //   sp + 56  return address → fiber_entry
        //   sp + 64  (top - 8) scratch word, keeps entry rsp ≡ 8 mod 16
        let sp = top.sub(72);
        (sp as *mut u32).write(0x1F80); // MXCSR power-on default
        (sp.add(4) as *mut u32).write(0x037F); // x87 CW default
        (sp.add(8) as *mut u64).write(0); // r15
        (sp.add(16) as *mut u64).write(0); // r14
        (sp.add(24) as *mut u64).write(0); // r13
        (sp.add(32) as *mut u64).write(closure); // r12
        (sp.add(40) as *mut u64).write(0); // rbx
        (sp.add(48) as *mut u64).write(0); // rbp
        (sp.add(56) as *mut u64).write(fiber_entry as *const () as usize as u64);
        (sp.add(64) as *mut u64).write(0);
        sp
    }
}

/// Save the callee-saved state on the current stack, store rsp through
/// `save`, load rsp from `load`, restore and return — i.e. continue
/// whatever context last saved itself into `load`.
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_switch(save: *mut *mut u8, load: *const *mut u8) {
    naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: forwards the closure pointer parked in
/// r12 by [`init_fiber`] to [`fiber_main`] with a call-aligned stack.
#[unsafe(naked)]
unsafe extern "sysv64" fn fiber_entry() {
    naked_asm!(
        "sub rsp, 8",
        "mov rdi, r12",
        "call {main}",
        "ud2",
        main = sym fiber_main,
    )
}

unsafe extern "sysv64" fn fiber_main(closure: *mut u8) {
    // SAFETY: `closure` is the Box::into_raw pointer parked in r12 by
    // init_fiber; ownership transfers here exactly once.
    let body = unsafe { Box::from_raw(closure as *mut Box<dyn FnOnce()>) };
    body();
    // A fiber body must leave through its final switch to the host
    // (SimScheduler::fiber_exit); returning here means the scheduler
    // resumed a finished fiber and the stack below is gone.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// Minimal two-way handoff: host → fiber → host → fiber → done.
    #[test]
    fn fiber_switches_roundtrip() {
        let stack = FiberStack::new(STACK_SIZE);
        let set = FiberSet::new(1);
        let hits = Cell::new(0u32);
        let sp = unsafe {
            init_fiber(
                &stack,
                Box::new(|| {
                    hits.set(hits.get() + 1);
                    unsafe { set.to_host(0) };
                    hits.set(hits.get() + 10);
                    unsafe { set.to_host(0) };
                    unreachable!("finished fiber must not be resumed");
                }),
            )
        };
        set.install(0, sp);
        unsafe { set.resume(0) };
        assert_eq!(hits.get(), 1);
        unsafe { set.resume(0) };
        assert_eq!(hits.get(), 11);
        assert!(stack.canary_intact());
    }

    /// Float state survives a switch (the benchmarks are f64-heavy).
    #[test]
    fn float_state_survives_switches() {
        let stack = FiberStack::new(STACK_SIZE);
        let set = FiberSet::new(1);
        let out = Cell::new(0.0f64);
        let sp = unsafe {
            init_fiber(
                &stack,
                Box::new(|| {
                    let mut acc = 1.0f64;
                    for i in 1..=10 {
                        acc = acc * 1.5 + i as f64;
                        unsafe { set.to_host(0) };
                    }
                    out.set(acc);
                    unsafe { set.to_host(0) };
                    unreachable!();
                }),
            )
        };
        set.install(0, sp);
        let mut host_acc = 1.0f64;
        for i in 1..=10 {
            unsafe { set.resume(0) };
            host_acc = host_acc * 1.5 + i as f64;
        }
        unsafe { set.resume(0) };
        assert_eq!(out.get().to_bits(), host_acc.to_bits());
        assert!(stack.canary_intact());
    }

    /// Two fibers interleaved through the host in a fixed order.
    #[test]
    fn two_fibers_interleave_deterministically() {
        let stacks = [FiberStack::new(STACK_SIZE), FiberStack::new(STACK_SIZE)];
        let set = FiberSet::new(2);
        let log = std::cell::RefCell::new(Vec::new());
        for (r, stack) in stacks.iter().enumerate() {
            let set = &set;
            let log = &log;
            let sp = unsafe {
                init_fiber(
                    stack,
                    Box::new(move || {
                        for step in 0..3 {
                            log.borrow_mut().push((r, step));
                            unsafe { set.to_host(r) };
                        }
                        unsafe { set.to_host(r) };
                        unreachable!();
                    }),
                )
            };
            set.install(r, sp);
        }
        for _ in 0..4 {
            unsafe { set.resume(0) };
            unsafe { set.resume(1) };
        }
        assert_eq!(
            log.borrow().as_slice(),
            &[(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
    }
}
