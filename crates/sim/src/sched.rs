//! Deterministic round-robin token scheduler for simulated worlds.
//!
//! Sim mode prices time with virtual clocks, so nothing is gained by
//! letting rank threads run concurrently — and plenty is lost: link
//! [`Resource`](crate::resource::Resource) reservations would follow host
//! thread scheduling, making runs causally consistent but not
//! bit-identical, and every mailbox push would pay a condvar broadcast.
//!
//! Instead, exactly one rank runs at a time. The token moves only at
//! explicit points:
//!
//! * a rank blocks in `recv` or a collective rendezvous with nothing
//!   to do ([`SimScheduler::yield_blocked`]),
//! * a rank's closure finishes ([`SimScheduler::finish`]),
//! * a sender's push completes a blocked receiver's posted match, which
//!   re-queues (not immediately runs) the receiver
//!   ([`SimScheduler::unblock`]).
//!
//! Execution order is therefore a pure function of the program, so two
//! runs with the same seeds produce bit-identical results, and the
//! only wakeups ever issued are targeted grants to the single next
//! runner — no thundering herd.
//!
//! Two interchangeable switch mechanisms drive that token order:
//!
//! * **fibers** (x86_64): every rank is a user-space fiber and the
//!   world runs on the caller's thread; a handoff is a ~20-instruction
//!   stack switch (see [`crate::fiber`]). This is the fast path — OS
//!   thread handoffs measure ~4–5 µs each on one core at 512 ranks,
//!   and a large run makes millions of them.
//! * **parked threads** (any platform): one OS thread per rank, each
//!   parked on a private condvar until granted. Real-mode worlds and
//!   non-x86_64 builds use this.
//!
//! Both replay the same FIFO ready-queue order, so they produce
//! bit-identical results; tests assert that equivalence.
//!
//! Deadlock (every live rank blocked) is detected at token-handoff
//! time and turns into a panic on every live rank rather than a hang.

#[cfg(target_arch = "x86_64")]
use crate::fiber::FiberSet;
use crate::error::BeffError;
use beff_sync::{Condvar, Mutex, Rank};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-hierarchy positions (DESIGN.md §8): the scheduler state is
/// taken before any per-rank parker flag (`grant_next` holds `inner`
/// while granting), never the other way around.
static SCHED_STATE_RANK: Rank = Rank::new(40, "sched.state");
static SCHED_PARKER_RANK: Rank = Rank::new(50, "sched.parker");

struct Parker {
    granted: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Self { granted: Mutex::ranked(&SCHED_PARKER_RANK, false), cv: Condvar::new() }
    }

    /// Returns `true` when this call actually set the flag (a newly
    /// issued token grant) — `false` when a grant was already pending,
    /// so the accounting counts each outstanding token exactly once.
    fn grant(&self) -> bool {
        let mut g = self.granted.lock();
        let newly = !*g;
        *g = true;
        self.cv.notify_one();
        newly
    }

    fn park(&self) {
        let mut g = self.granted.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }

    /// Consume a pending, never-to-be-parked-for grant (a rank that is
    /// unwinding will not park again). Returns `true` if a grant was
    /// pending.
    fn drain(&self) -> bool {
        let mut g = self.granted.lock();
        std::mem::take(&mut *g)
    }
}

struct SchedState {
    /// Ranks runnable but not holding the token, in handoff order.
    ready: VecDeque<usize>,
    blocked: Vec<bool>,
    finished: Vec<bool>,
    /// Ranks whose closure has not finished.
    live: usize,
    /// Every live rank is blocked: wake them all into a panic.
    deadlocked: bool,
    /// A rank panicked: determinism is moot, wake everyone so they
    /// observe mailbox poison.
    aborted: bool,
    /// Coordinated mode (the sharded engine): an empty ready queue with
    /// live ranks is *quiescence*, reported to an external coordinator
    /// via [`SimScheduler::wait_idle`], not a deadlock — only the
    /// coordinator sees every shard and can tell the two apart.
    coordinated: bool,
    /// Coordinated mode: set when the token ran out of ready ranks;
    /// cleared by [`SimScheduler::kick`] after a cross-shard flush.
    idle: bool,
}

/// How suspended ranks are represented and resumed.
enum Mech {
    /// One parked OS thread per rank.
    Park(Vec<Parker>),
    /// One fiber per rank, driven by [`SimScheduler::drive_fibers`] on
    /// the host thread.
    #[cfg(target_arch = "x86_64")]
    Fiber(FiberSet),
}

/// One token scheduler per simulated world run.
pub struct SimScheduler {
    inner: Mutex<SchedState>,
    mech: Mech,
    /// Coordinated mode: signaled when the shard quiesces (idle set,
    /// last rank finished, abort or deadlock) so the coordinator's
    /// [`wait_idle`](Self::wait_idle) can wake.
    idle_cv: Condvar,
    /// Token accounting: every grant issued must eventually be consumed
    /// (by a park that wakes, or drained from a rank that will never
    /// park again). `granted == consumed` after the world joins is the
    /// no-token-leak invariant the property tests pin on every exit
    /// path — normal completion, injected crash, abort.
    granted: AtomicU64,
    consumed: AtomicU64,
}

/// Snapshot of the scheduler's terminal accounting state (tests,
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedAudit {
    pub granted: u64,
    pub consumed: u64,
    pub live: usize,
    pub ready: usize,
    pub blocked: usize,
    pub finished: usize,
    pub deadlocked: bool,
    pub aborted: bool,
}

impl SchedAudit {
    /// No outstanding token and no runnable leftovers.
    pub fn balanced(&self) -> bool {
        self.granted == self.consumed
    }
}

fn new_state(n: usize) -> SchedState {
    SchedState {
        ready: (1..n).collect(),
        blocked: vec![false; n],
        finished: vec![false; n],
        live: n,
        deadlocked: false,
        aborted: false,
        coordinated: false,
        idle: false,
    }
}

impl SimScheduler {
    /// Thread-parking scheduler: `n` ranks, rank 0 holds the token
    /// first, then strict FIFO order among runnable ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let sched = Self {
            inner: Mutex::ranked(&SCHED_STATE_RANK, new_state(n)),
            mech: Mech::Park((0..n).map(|_| Parker::new()).collect()),
            idle_cv: Condvar::new(),
            granted: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
        };
        let Mech::Park(parkers) = &sched.mech else { unreachable!() };
        sched.count_grant(parkers[0].grant());
        sched
    }

    /// Thread-parking scheduler in *coordinated* mode: quiescence (all
    /// live ranks blocked) parks the shard and signals
    /// [`wait_idle`](Self::wait_idle) instead of declaring deadlock —
    /// the sharded engine's coordinator flushes cross-shard messages
    /// and either [`kick`](Self::kick)s the shard or, when every shard
    /// is quiet with nothing in flight, calls
    /// [`declare_deadlock`](Self::declare_deadlock).
    pub fn new_coordinated(n: usize) -> Self {
        let sched = Self::new(n);
        sched.inner.lock().coordinated = true;
        sched
    }

    /// Fiber scheduler: same token order, driven by
    /// [`drive_fibers`](Self::drive_fibers) after the runtime installs
    /// one initialized fiber per rank.
    #[cfg(target_arch = "x86_64")]
    pub fn new_fibers(n: usize) -> Self {
        assert!(n > 0);
        let mut st = new_state(n);
        // No out-of-band grant here: rank 0 starts from the ready
        // queue like everyone else, resumed by the drive loop.
        st.ready.push_front(0);
        Self {
            inner: Mutex::ranked(&SCHED_STATE_RANK, st),
            mech: Mech::Fiber(FiberSet::new(n)),
            idle_cv: Condvar::new(),
            granted: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
        }
    }

    /// Fiber scheduler in coordinated mode: the shard's worker drives
    /// it with [`drive_idle`](Self::drive_idle), which returns at
    /// quiescence instead of flipping to the deadlock protocol.
    #[cfg(target_arch = "x86_64")]
    pub fn new_coordinated_fibers(n: usize) -> Self {
        let sched = Self::new_fibers(n);
        sched.inner.lock().coordinated = true;
        sched
    }

    /// The fiber set to install stacks into (fiber mode only).
    #[cfg(target_arch = "x86_64")]
    pub fn fibers(&self) -> &FiberSet {
        let Mech::Fiber(fs) = &self.mech else {
            panic!("fibers() on a thread-parking scheduler")
        };
        fs
    }

    /// Hand the token to the next ready rank; if none exists but live
    /// ranks remain, the world is deadlocked — wake everyone into the
    /// panic path. (Thread mode only; the fiber drive loop plays this
    /// role in fiber mode.)
    fn grant_next(&self, st: &mut SchedState, parkers: &[Parker]) {
        if st.aborted || st.deadlocked {
            return; // everyone has already been woken
        }
        if let Some(next) = st.ready.pop_front() {
            self.count_grant(parkers[next].grant());
        } else if st.live > 0 {
            if st.coordinated {
                // Quiescence, not deadlock: every live rank is blocked
                // on something only another shard can deliver. Park the
                // shard and hand the verdict to the coordinator.
                st.idle = true;
                self.idle_cv.notify_all();
                return;
            }
            st.deadlocked = true;
            for (r, p) in parkers.iter().enumerate() {
                if !st.finished[r] {
                    self.count_grant(p.grant());
                }
            }
        }
    }

    #[inline]
    fn count_grant(&self, newly: bool) {
        if newly {
            self.granted.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn count_consume(&self) {
        self.consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Block until this rank holds the token (no-op in fiber mode: a
    /// fiber only runs while it holds the token). Panics if the world
    /// deadlocked while this rank was parked.
    pub fn wait_turn(&self, rank: usize) {
        match &self.mech {
            Mech::Park(parkers) => {
                parkers[rank].park();
                self.count_consume();
            }
            #[cfg(target_arch = "x86_64")]
            Mech::Fiber(_) => {}
        }
        if self.inner.lock().deadlocked {
            BeffError::Deadlock.raise();
        }
    }

    /// The token holder blocks (recv miss or collective wait): release
    /// the token and suspend until a peer re-queues us (or the world
    /// dies).
    pub fn yield_blocked(&self, rank: usize) {
        match &self.mech {
            Mech::Park(parkers) => {
                {
                    let mut st = self.inner.lock();
                    st.blocked[rank] = true;
                    self.grant_next(&mut st, parkers);
                }
                self.wait_turn(rank);
            }
            #[cfg(target_arch = "x86_64")]
            Mech::Fiber(fs) => {
                self.inner.lock().blocked[rank] = true;
                // SAFETY: called from rank's own fiber (scheduler
                // contract); the drive loop resumes us later.
                unsafe { fs.to_host(rank) };
                if self.inner.lock().deadlocked {
                    BeffError::Deadlock.raise();
                }
            }
        }
    }

    /// A push just completed `rank`'s posted receive: make it runnable
    /// again. Called by the token holder; the receiver runs when the
    /// token reaches it, preserving deterministic order.
    pub fn unblock(&self, rank: usize) {
        let mut st = self.inner.lock();
        if st.blocked[rank] {
            st.blocked[rank] = false;
            st.ready.push_back(rank);
        }
    }

    /// Cooperative rotation for actor workloads: the token holder
    /// re-queues itself behind every currently ready rank and hands
    /// the token on. No-op when nobody else is ready — the holder
    /// keeps the token rather than parking for a grant no peer will
    /// ever issue. Unlike [`yield_blocked`](Self::yield_blocked) the
    /// rank stays runnable, so this can never deadlock the world.
    pub fn yield_turn(&self, rank: usize) {
        match &self.mech {
            Mech::Park(parkers) => {
                {
                    let mut st = self.inner.lock();
                    if st.ready.is_empty() || st.aborted || st.deadlocked {
                        return;
                    }
                    st.ready.push_back(rank);
                    self.grant_next(&mut st, parkers);
                }
                self.wait_turn(rank);
            }
            #[cfg(target_arch = "x86_64")]
            Mech::Fiber(fs) => {
                {
                    let mut st = self.inner.lock();
                    if st.ready.is_empty() || st.aborted || st.deadlocked {
                        return;
                    }
                    st.ready.push_back(rank);
                }
                // SAFETY: called from rank's own fiber (scheduler
                // contract); the drive loop resumes us from the ready
                // queue we just joined.
                unsafe { fs.to_host(rank) };
                if self.inner.lock().deadlocked {
                    BeffError::Deadlock.raise();
                }
            }
        }
    }

    /// The token holder's closure returned: record it and (thread mode)
    /// hand the token on. Fiber mode suspends later, via
    /// [`fiber_exit`](Self::fiber_exit), after the rank's result is
    /// stored.
    pub fn finish(&self, rank: usize) {
        let mut st = self.inner.lock();
        debug_assert!(!st.finished[rank]);
        st.finished[rank] = true;
        st.live -= 1;
        match &self.mech {
            Mech::Park(parkers) => {
                if st.live > 0 {
                    self.grant_next(&mut st, parkers);
                } else if st.coordinated {
                    // The shard is done; a coordinator parked in
                    // wait_idle must observe live == 0.
                    self.idle_cv.notify_all();
                }
            }
            #[cfg(target_arch = "x86_64")]
            Mech::Fiber(_) => {}
        }
    }

    /// A rank panicked: wake every unfinished rank so it can observe
    /// mailbox poison and unwind (determinism no longer matters). In
    /// fiber mode the drive loop performs the waking.
    pub fn abort(&self) {
        let mut st = self.inner.lock();
        if st.aborted {
            return;
        }
        st.aborted = true;
        // A coordinator parked in wait_idle must wake and shut the
        // world down (coordinated mode; harmless otherwise).
        self.idle_cv.notify_all();
        if st.deadlocked {
            // The deadlock detector already granted every unfinished
            // rank exactly once; granting again would hand unwinding
            // ranks tokens nobody will ever consume.
            return;
        }
        if let Mech::Park(parkers) = &self.mech {
            for (r, p) in parkers.iter().enumerate() {
                if !st.finished[r] {
                    self.count_grant(p.grant());
                }
            }
        }
    }

    /// Consume any grant still pending for a rank that is unwinding and
    /// will never park again (the `run_rank` panic path calls this
    /// after [`abort`](Self::abort), which granted the panicking rank
    /// its own wakeup token).
    pub fn drain_grant(&self, rank: usize) {
        if let Mech::Park(parkers) = &self.mech {
            if parkers[rank].drain() {
                self.count_consume();
            }
        }
    }

    // ----- coordinated mode (the sharded engine's shard-side API) -------

    /// Block the coordinator until this shard has quiesced: the token
    /// ran out of ready ranks (`idle`), every rank finished, or the
    /// world aborted/deadlocked. Thread-parking coordinated mode only —
    /// fiber shards quiesce by returning from
    /// [`drive_idle`](Self::drive_idle).
    pub fn wait_idle(&self) {
        let mut st = self.inner.lock();
        debug_assert!(st.coordinated, "wait_idle needs a coordinated scheduler");
        while !(st.idle || st.live == 0 || st.aborted || st.deadlocked) {
            self.idle_cv.wait(&mut st);
        }
    }

    /// Restart an idle shard after a cross-shard flush re-queued some
    /// of its ranks. If the flush delivered nothing here, the shard
    /// goes straight back to idle (the grant path re-parks it).
    pub fn kick(&self) {
        let mut st = self.inner.lock();
        if !st.idle || st.aborted || st.deadlocked {
            return;
        }
        st.idle = false;
        match &self.mech {
            Mech::Park(parkers) => self.grant_next(&mut st, parkers),
            // Fiber shards are restarted by the worker re-entering
            // drive_idle; clearing the flag is all there is to do.
            #[cfg(target_arch = "x86_64")]
            Mech::Fiber(_) => {}
        }
    }

    /// The coordinator observed *global* quiescence with live ranks and
    /// nothing left to flush: the world is deadlocked. Wake every
    /// unfinished rank into the panic path (thread mode; fiber shards
    /// resume them on the next [`drive_idle`](Self::drive_idle) pass).
    pub fn declare_deadlock(&self) {
        let mut st = self.inner.lock();
        if st.aborted || st.deadlocked || st.live == 0 {
            return;
        }
        st.deadlocked = true;
        if let Mech::Park(parkers) = &self.mech {
            for (r, p) in parkers.iter().enumerate() {
                if !st.finished[r] {
                    self.count_grant(p.grant());
                }
            }
        }
    }

    /// Did a flush make any of this shard's ranks runnable again?
    pub fn has_ready(&self) -> bool {
        !self.inner.lock().ready.is_empty()
    }

    /// Ranks whose closure has not finished.
    pub fn live_count(&self) -> usize {
        self.inner.lock().live
    }

    /// Coordinated fiber drive loop: run ready fibers until the shard
    /// quiesces (ready empty with live ranks — return and let the
    /// coordinator flush), every rank finishes, or abort/deadlock
    /// unwinds every unfinished fiber. The caller loops
    /// `drive_idle → barrier → flush → barrier` until the world ends.
    #[cfg(target_arch = "x86_64")]
    pub fn drive_idle(&self) {
        let Mech::Fiber(fs) = &self.mech else {
            panic!("drive_idle on a thread-parking scheduler")
        };
        loop {
            let next = {
                let mut st = self.inner.lock();
                debug_assert!(st.coordinated, "drive_idle needs a coordinated scheduler");
                if st.live == 0 {
                    return;
                }
                if st.aborted || st.deadlocked {
                    st.finished.iter().position(|&f| !f)
                } else if let Some(r) = st.ready.pop_front() {
                    Some(r)
                } else {
                    // Quiescent: every live rank blocked on another
                    // shard. The coordinator decides what happens next.
                    st.idle = true;
                    return;
                }
            };
            let Some(r) = next else { return };
            // A fiber resume is a grant consumed synchronously (same
            // accounting as drive_fibers).
            self.count_grant(true);
            self.count_consume();
            // SAFETY: r is unfinished and was initialized by the
            // runtime before driving started.
            unsafe { fs.resume(r) };
        }
    }

    /// Terminal accounting snapshot. Meaningful after the world has
    /// joined; mid-run it is merely a consistent-at-some-instant view.
    pub fn audit(&self) -> SchedAudit {
        let st = self.inner.lock();
        SchedAudit {
            granted: self.granted.load(Ordering::Relaxed),
            consumed: self.consumed.load(Ordering::Relaxed),
            live: st.live,
            ready: st.ready.len(),
            blocked: st.blocked.iter().filter(|&&b| b).count(),
            finished: st.finished.iter().filter(|&&f| f).count(),
            deadlocked: st.deadlocked,
            aborted: st.aborted,
        }
    }

    /// Final switch out of a rank's fiber, after its result (Ok or
    /// panic payload) is stored. Marks the rank finished if the panic
    /// path skipped [`finish`](Self::finish). Never returns control to
    /// the fiber: the drive loop drops finished ranks.
    #[cfg(target_arch = "x86_64")]
    pub fn fiber_exit(&self, rank: usize) {
        let Mech::Fiber(fs) = &self.mech else {
            panic!("fiber_exit on a thread-parking scheduler")
        };
        {
            let mut st = self.inner.lock();
            if !st.finished[rank] {
                st.finished[rank] = true;
                st.live -= 1;
            }
        }
        // SAFETY: called from rank's own fiber as its last action.
        unsafe { fs.to_host(rank) };
        // The drive loop never resumes a finished fiber; if it did, the
        // fiber's dead stack must not be re-entered.
        std::process::abort();
    }

    /// Run every fiber to completion on the calling thread, replaying
    /// the same FIFO token order as the thread-parking mechanism:
    /// rank 0 first, then the ready queue; on deadlock or abort, every
    /// unfinished fiber is resumed (in rank order) so it can unwind.
    #[cfg(target_arch = "x86_64")]
    pub fn drive_fibers(&self) {
        let Mech::Fiber(fs) = &self.mech else {
            panic!("drive_fibers on a thread-parking scheduler")
        };
        loop {
            let next = {
                let mut st = self.inner.lock();
                if st.live == 0 {
                    return;
                }
                if st.aborted || st.deadlocked {
                    st.finished.iter().position(|&f| !f)
                } else if let Some(r) = st.ready.pop_front() {
                    Some(r)
                } else {
                    // Every live rank is blocked: flip to the deadlock
                    // protocol and resume them into the panic path.
                    st.deadlocked = true;
                    st.finished.iter().position(|&f| !f)
                }
            };
            let Some(r) = next else { return };
            // A fiber resume is a grant consumed synchronously: the
            // fiber runs now, on this thread, or never.
            self.count_grant(true);
            self.count_consume();
            // SAFETY: r is unfinished and was initialized by the
            // runtime before driving started.
            unsafe { fs.resume(r) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_rank_runs_immediately() {
        let s = SimScheduler::new(1);
        s.wait_turn(0);
        s.finish(0);
    }

    #[test]
    fn token_order_is_round_robin() {
        // Each rank appends its id on its turn, yields nothing (no
        // blocking), so finish() order must be 0, 1, 2, 3.
        let s = Arc::new(SimScheduler::new(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let s = Arc::clone(&s);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    s.wait_turn(rank);
                    order.lock().push(rank);
                    s.finish(rank);
                });
            }
        });
        assert_eq!(&*order.lock(), &[0, 1, 2, 3]);
    }

    #[test]
    fn unblock_requeues_in_fifo_order() {
        // Rank 0 blocks; rank 1 unblocks it then finishes; rank 0 must
        // run again afterwards.
        let s = Arc::new(SimScheduler::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            {
                let s = Arc::clone(&s);
                let hits = Arc::clone(&hits);
                scope.spawn(move || {
                    s.wait_turn(0);
                    s.yield_blocked(0); // parks until rank 1 unblocks us
                    hits.fetch_add(1, Ordering::Relaxed);
                    s.finish(0);
                });
            }
            {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    s.wait_turn(1);
                    s.unblock(0);
                    s.finish(1);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_blocked_is_detected_as_deadlock() {
        let s = Arc::new(SimScheduler::new(2));
        let panics = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for rank in 0..2 {
                let s = Arc::clone(&s);
                let panics = Arc::clone(&panics);
                scope.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        s.wait_turn(rank);
                        s.yield_blocked(rank); // nobody will ever unblock us
                    }));
                    if r.is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                    s.finish(rank);
                });
            }
        });
        assert_eq!(panics.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn abort_wakes_parked_ranks() {
        let s = Arc::new(SimScheduler::new(2));
        std::thread::scope(|scope| {
            {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    s.wait_turn(0);
                    s.yield_blocked(0); // returns (not via deadlock panic) on abort
                    s.finish(0);
                });
            }
            {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    s.wait_turn(1);
                    s.abort();
                    s.finish(1);
                });
            }
        });
    }

    /// The fiber mechanism replays the identical token order: ranks
    /// 0..n-1 block, the last rank unblocks them all, and they resume
    /// in FIFO order.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fiber_drive_replays_fifo_token_order() {
        use crate::fiber::{init_fiber, FiberStack, STACK_SIZE};
        let n = 3;
        let s = SimScheduler::new_fibers(n);
        let log = std::cell::RefCell::new(Vec::new());
        let stacks: Vec<FiberStack> = (0..n).map(|_| FiberStack::new(STACK_SIZE)).collect();
        for (rank, stack) in stacks.iter().enumerate() {
            let s = &s;
            let log = &log;
            let sp = unsafe {
                init_fiber(
                    stack,
                    Box::new(move || {
                        s.wait_turn(rank);
                        log.borrow_mut().push(("start", rank));
                        if rank == n - 1 {
                            for peer in 0..n - 1 {
                                s.unblock(peer); // all already blocked
                            }
                        } else {
                            s.yield_blocked(rank);
                            log.borrow_mut().push(("resume", rank));
                        }
                        s.finish(rank);
                        s.fiber_exit(rank);
                    }),
                )
            };
            s.fibers().install(rank, sp);
        }
        s.drive_fibers();
        assert_eq!(
            log.borrow().as_slice(),
            &[
                ("start", 0),
                ("start", 1),
                ("start", 2),
                ("resume", 0),
                ("resume", 1),
            ]
        );
        for st in &stacks {
            assert!(st.canary_intact());
        }
    }
}
