//! Per-rank clocks.
//!
//! The benchmark kernels are written against the [`Clock`] trait so the
//! same code runs in *real* mode (wall-clock `Instant`) and in *sim*
//! mode (a plain virtual-seconds counter owned by the rank thread).
//!
//! Virtual time only moves via explicit [`Clock::advance`] /
//! [`Clock::advance_to`] calls made by the MPI / I/O layers when they
//! apply modeled costs; there is no global scheduler. Causality across
//! ranks is carried by message arrival timestamps (see
//! `beff-mpi::engine`).

use crate::units::Secs;
use std::time::Instant;

/// A source of (real or virtual) time local to one rank.
pub trait Clock: Send {
    /// Current time in seconds. Real clocks measure from an arbitrary
    /// epoch; only differences are meaningful.
    fn now(&self) -> Secs;
    /// Move the clock forward by `dt` seconds (no-op on real clocks,
    /// where time passes by itself).
    fn advance(&mut self, dt: Secs);
    /// Move the clock forward to `t` if `t` is in the future (no-op on
    /// real clocks).
    fn advance_to(&mut self, t: Secs);
    /// True if this is a virtual clock (costs must be modeled).
    fn is_virtual(&self) -> bool;
}

/// Wall-clock time, anchored at creation.
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        // beff-analyze: allow(taint): RealClock is the sanctioned real-mode time source; virtual worlds construct VClock instead
        Self::new()
    }
}

impl Clock for RealClock {
    #[inline]
    fn now(&self) -> Secs {
        self.epoch.elapsed().as_secs_f64()
    }
    #[inline]
    fn advance(&mut self, _dt: Secs) {}
    #[inline]
    fn advance_to(&mut self, _t: Secs) {}
    #[inline]
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Virtual clock: a monotone counter of simulated seconds.
#[derive(Debug, Clone, Default)]
pub struct VClock {
    t: Secs,
}

impl VClock {
    pub fn new() -> Self {
        Self { t: 0.0 }
    }

    /// Start the clock at a given virtual time (used when a rank joins a
    /// computation late, e.g. sub-communicators).
    pub fn starting_at(t: Secs) -> Self {
        Self { t }
    }
}

impl Clock for VClock {
    #[inline]
    fn now(&self) -> Secs {
        self.t
    }
    #[inline]
    fn advance(&mut self, dt: Secs) {
        debug_assert!(dt >= 0.0, "negative advance: {dt}");
        self.t += dt;
    }
    #[inline]
    fn advance_to(&mut self, t: Secs) {
        if t > self.t {
            self.t = t;
        }
    }
    #[inline]
    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_advances() {
        let mut c = VClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        assert_eq!(c.now(), 1.5);
        c.advance_to(1.0); // never moves backwards
        assert_eq!(c.now(), 1.5);
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn vclock_starting_at() {
        let c = VClock::starting_at(7.0);
        assert_eq!(c.now(), 7.0);
    }

    #[test]
    fn real_clock_is_monotone_and_ignores_advance() {
        let mut c = RealClock::new();
        let a = c.now();
        c.advance(100.0);
        c.advance_to(1e9);
        let b = c.now();
        assert!(b >= a);
        assert!(b < 50.0, "advance must not affect a real clock");
        assert!(!c.is_virtual());
    }

    #[test]
    fn vclock_is_virtual() {
        assert!(VClock::new().is_virtual());
    }
}
