//! Generic next-free-time reservation — the single contention primitive
//! of the whole simulation.
//!
//! A [`Resource`] is anything that serializes work in time: a network
//! link, a disk, an I/O server CPU, a memory bus. Callers ask to occupy
//! it for `duration` seconds starting no earlier than `earliest`; the
//! resource answers with the actual start time (max of `earliest` and
//! its previous next-free time) and remembers the new next-free time.
//!
//! Reservation order follows the deterministic token scheduler's rank
//! interleaving, which is a pure function of the program's own
//! communication structure — so contended results are bit-identical
//! across runs (DESIGN.md §3, *Simulator execution model*).
//!
//! ## Fair-share contention mode
//!
//! Plain next-free-time booking packs queued reservations back-to-back:
//! K overlapping streams deliver the resource's full aggregate rate.
//! Real shared wires do not — arbitration, packet framing and
//! fair-share scheduling cost throughput once independent agents
//! contend. [`Resource::with_contention`] models that: a reservation
//! that arrives while the resource is still busy (it had to queue) is
//! billed `duration * factor` instead of `duration`, so K simultaneous
//! streams serialize at `rate / factor` while a lone stream still sees
//! the full rate. The factor is a per-machine calibration constant
//! (`NetParams::contention` in beff-netsim); `1.0` reproduces plain
//! FIFO packing bit-for-bit.
//!
//! The scheme is work-conserving (the resource never idles while work
//! is queued) and, for a batch of equal-length requests wanting the
//! same start time, order-independent: the booked finish times are the
//! same multiset regardless of the order the scheduler books them in.

use crate::units::Secs;
use beff_sync::Mutex;

/// A serially-reusable resource with a next-free-time.
#[derive(Debug)]
pub struct Resource {
    next_free: Mutex<Secs>,
    /// Occupancy multiplier applied to reservations that had to queue
    /// (fair-share contention mode); 1.0 = ideal FIFO packing.
    contention: f64,
}

impl Default for Resource {
    fn default() -> Self {
        Self::new()
    }
}

impl Resource {
    pub fn new() -> Self {
        Self::with_contention(1.0)
    }

    /// A resource in fair-share contention mode: reservations that
    /// arrive while the resource is busy occupy `duration * factor`.
    /// `factor` must be finite and ≥ 1.0; `1.0` is byte-identical to
    /// [`Resource::new`].
    pub fn with_contention(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "contention factor must be finite and >= 1.0, got {factor}"
        );
        Self { next_free: Mutex::new(0.0), contention: factor }
    }

    /// The configured contention factor.
    pub fn contention(&self) -> f64 {
        self.contention
    }

    /// Reserve the resource for `duration` seconds, starting no earlier
    /// than `earliest`. Returns the actual start time.
    pub fn reserve(&self, earliest: Secs, duration: Secs) -> Secs {
        self.reserve_span(earliest, duration).0
    }

    /// Like [`reserve`](Self::reserve) but returns `(start, finish)` of
    /// the booked occupancy. In fair-share mode a queued reservation's
    /// finish is `start + duration * factor`, so callers that need the
    /// real finish time must use this (or
    /// [`reserve_finish`](Self::reserve_finish)) rather than adding
    /// `duration` themselves.
    pub fn reserve_span(&self, earliest: Secs, duration: Secs) -> (Secs, Secs) {
        debug_assert!(duration >= 0.0, "negative duration {duration}");
        let mut nf = self.next_free.lock();
        let start = earliest.max(*nf);
        // Queued behind pending work ⇒ contended ⇒ fair-share billing.
        let occupancy =
            if *nf > earliest { duration * self.contention } else { duration };
        let finish = start + occupancy;
        *nf = finish;
        (start, finish)
    }

    /// Like [`reserve`](Self::reserve) but returns the *finish* time,
    /// which is what most cost computations want.
    #[inline]
    pub fn reserve_finish(&self, earliest: Secs, duration: Secs) -> Secs {
        self.reserve_span(earliest, duration).1
    }

    /// Current next-free time (for drain/sync style queries).
    pub fn horizon(&self) -> Secs {
        *self.next_free.lock()
    }

    /// Reset to idle at t=0 (used between benchmark repetitions in
    /// tests; production runs never rewind time).
    pub fn reset(&self) {
        *self.next_free.lock() = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_serialize() {
        let r = Resource::new();
        assert_eq!(r.reserve(0.0, 1.0), 0.0);
        // Asked for t=0 again, but the resource is busy until t=1.
        assert_eq!(r.reserve(0.0, 1.0), 1.0);
        assert_eq!(r.horizon(), 2.0);
    }

    #[test]
    fn idle_gap_is_respected() {
        let r = Resource::new();
        r.reserve(0.0, 1.0);
        // Arriving later than the horizon starts immediately.
        assert_eq!(r.reserve(5.0, 2.0), 5.0);
        assert_eq!(r.horizon(), 7.0);
    }

    #[test]
    fn reserve_finish_is_start_plus_duration() {
        let r = Resource::new();
        assert_eq!(r.reserve_finish(3.0, 2.0), 5.0);
        assert_eq!(r.reserve_finish(0.0, 1.0), 6.0);
    }

    #[test]
    fn zero_duration_reservation_is_ok() {
        let r = Resource::new();
        assert_eq!(r.reserve(1.0, 0.0), 1.0);
        assert_eq!(r.horizon(), 1.0);
    }

    #[test]
    fn reset_rewinds() {
        let r = Resource::new();
        r.reserve(0.0, 10.0);
        r.reset();
        assert_eq!(r.horizon(), 0.0);
    }

    #[test]
    fn contended_reservations_inflate_by_the_factor() {
        let r = Resource::with_contention(2.0);
        // First stream: uncontended, full rate.
        assert_eq!(r.reserve_span(0.0, 1.0), (0.0, 1.0));
        // Second stream wanted t=0 but had to queue: pays 2x.
        assert_eq!(r.reserve_span(0.0, 1.0), (1.0, 3.0));
        assert_eq!(r.reserve_span(0.0, 1.0), (3.0, 5.0));
        // A later arrival on an idle resource is uncontended again.
        assert_eq!(r.reserve_span(10.0, 1.0), (10.0, 11.0));
    }

    #[test]
    fn arrival_exactly_at_horizon_is_uncontended() {
        // No queueing happened: the stream arrived as the wire went
        // idle, so fair-share billing does not apply.
        let r = Resource::with_contention(3.0);
        r.reserve(0.0, 1.0);
        assert_eq!(r.reserve_span(1.0, 1.0), (1.0, 2.0));
    }

    #[test]
    fn factor_one_is_bitwise_identical_to_plain_fifo() {
        // The contention-factor=1.0 path must reproduce the plain
        // next-free-time arithmetic bit-for-bit: this is what keeps the
        // golden results byte-identical after the fair-share change.
        let plain = Resource::new();
        let faired = Resource::with_contention(1.0);
        let mut reference_nf: f64 = 0.0;
        let reqs: [(f64, f64); 6] = [
            (0.0, 1.5),
            (0.3, 0.7),
            (10.0, 1e-6),
            (9.999999, 3.25),
            (11.0, 0.0),
            (0.1, 123.456),
        ];
        for &(earliest, dur) in &reqs {
            // Reference: the pre-fair-share implementation.
            let ref_start = earliest.max(reference_nf);
            reference_nf = ref_start + dur;
            let (ps, pf) = plain.reserve_span(earliest, dur);
            let (fs, ff) = faired.reserve_span(earliest, dur);
            assert_eq!(ps.to_bits(), ref_start.to_bits());
            assert_eq!(pf.to_bits(), reference_nf.to_bits());
            assert_eq!(fs.to_bits(), ref_start.to_bits());
            assert_eq!(ff.to_bits(), reference_nf.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "contention factor")]
    fn sub_unity_factor_rejected() {
        Resource::with_contention(0.5);
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        use std::sync::Arc;
        let r = Arc::new(Resource::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut spans = Vec::new();
                for _ in 0..100 {
                    let s = r.reserve(0.0, 0.5);
                    spans.push((s, s + 0.5));
                }
                spans
            }));
        }
        let mut all: Vec<(f64, f64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-9, "overlapping spans {w:?}");
        }
        assert_eq!(r.horizon(), 8.0 * 100.0 * 0.5);
    }
}
