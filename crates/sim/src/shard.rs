//! Conservative parallel discrete-event execution: shard the actor
//! world across a fixed worker pool, keep the results bit-identical.
//!
//! The serial token scheduler ([`crate::sched`]) runs one actor at a
//! time; this module runs one actor *per shard* at a time, with shards
//! on separate host threads. Determinism survives because everything an
//! actor can observe is either shard-local (its scheduler's FIFO token
//! order, unchanged) or crosses shards through a protocol whose order
//! is a pure function of the program:
//!
//! * **Shard mapping** — contiguous blocks: with `n` actors on `W`
//!   workers, actor `i` lives on shard `i / ceil(n/W)`. The mapping
//!   depends only on `(n, W)`, never on host scheduling.
//! * **Epoch barriers** — each shard runs until *quiescent* (every
//!   live local actor blocked on a cross-shard receive), then all
//!   workers meet at a [`Barrier`]. The leader flushes every shard's
//!   outbox in canonical order — shard index, then send order within
//!   the shard (itself deterministic: one token per shard) — delivering
//!   into the receivers' [`Port`]s and re-queuing matched receivers.
//!   A second barrier publishes the verdict: continue, done, or (all
//!   quiet, nothing delivered, live actors remain) deadlock.
//! * **Lookahead** — the conservative bound `L` (for network worlds:
//!   the minimum cross-shard link latency, `MachineNet::lookahead()`).
//!   A workload prices every cross-shard interaction at ≥ `L` of
//!   virtual time; the flusher *validates* the bound: a delivery that
//!   matches a posted receive asserts the receiver's frozen clock has
//!   not advanced past `sent_at + L`. Quiescence already guarantees no
//!   receiver computes ahead of a message it is waiting for — the
//!   assertion proves the model's latency claim, it is not load-bearing
//!   for safety.
//!
//! Bit-identity contract: per-sender order is preserved end to end
//! (shard-local FIFO → outbox append order → canonical flush), so any
//! workload whose receives use *sender-specific filters* observes the
//! same message sequence per channel as the serial schedule, and its
//! results are byte-identical for every worker count — `W = 1` *is*
//! the serial path (one shard, no cross-shard traffic, plain token
//! rotation). Workloads that race wildcard receives across senders
//! trade that guarantee away exactly as they would under MPI's
//! `ANY_SOURCE`.
//!
//! Faults follow [`crate::actors`]: a typed [`BeffError`] is an
//! isolated early exit keyed to the actor (never to a worker), any
//! other panic aborts the world and propagates.

use crate::actors::ActorId;
use crate::error::BeffError;
use crate::pool::Workers;
use crate::port::{Message, Port, PushOutcome};
use crate::sched::{SchedAudit, SimScheduler};
use beff_sync::{Barrier, Mutex, Rank};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Lock-hierarchy position (DESIGN.md §8): per-shard outbox state sits
/// *below* the port and scheduler locks — a sender appends while
/// holding nothing else, and the flusher goes outbox → port → scheduler
/// in strictly increasing level order.
static SHARD_STATE_RANK: Rank = Rank::new(25, "shard.state");

/// A message in flight with its send stamp. The engine wraps the
/// workload's message type so cross-shard deliveries carry the virtual
/// time they left the sender, for clock merging and the lookahead
/// check; the filter is the workload's own.
#[derive(Debug)]
pub struct Timed<M: Message> {
    /// Sender's virtual time at the send call.
    pub at: f64,
    /// Delivered through the epoch flush (vs. shard-local direct push).
    pub cross: bool,
    pub msg: M,
}

impl<M: Message> Message for Timed<M> {
    type Filter = M::Filter;
    fn admits(filter: &Self::Filter, msg: &Self) -> bool {
        M::admits(filter, &msg.msg)
    }
}

/// A cross-shard send parked in its shard's outbox until the epoch
/// boundary. Append order within one outbox is the shard's token order.
#[derive(Debug)]
struct OutMsg<M: Message> {
    to: ActorId,
    at: f64,
    msg: M,
}

/// The deterministic contiguous-block actor→shard mapping.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    n: usize,
    /// Actors per shard (last shard may be smaller).
    block: usize,
    shards: usize,
}

impl ShardMap {
    /// `n` actors over at most `workers` shards. A worker count above
    /// `n` collapses to one actor per shard.
    pub fn new(n: usize, workers: Workers) -> Self {
        assert!(n > 0, "sharded world needs at least one actor");
        let block = n.div_ceil(workers.get().min(n));
        Self { n, block, shards: n.div_ceil(block) }
    }

    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    pub fn shard_of(&self, id: ActorId) -> usize {
        id / self.block
    }

    /// First actor of shard `s`.
    #[inline]
    pub fn base(&self, s: usize) -> ActorId {
        s * self.block
    }

    /// Actor count of shard `s`.
    #[inline]
    pub fn len(&self, s: usize) -> usize {
        self.block.min(self.n - self.base(s))
    }

    #[inline]
    pub fn is_empty(&self, s: usize) -> bool {
        self.len(s) == 0
    }

    /// Shard-local index of `id`.
    #[inline]
    fn local(&self, id: ActorId) -> usize {
        id - self.base(self.shard_of(id))
    }
}

/// Per-shard grant/consume accounting plus epoch statistics — the
/// sharded extension of [`SchedAudit`].
#[derive(Debug, Clone)]
pub struct ShardAudit {
    /// One terminal scheduler audit per shard, in shard order.
    pub shards: Vec<SchedAudit>,
    /// Epoch barriers crossed (flush rounds).
    pub epochs: u64,
    /// Cross-shard messages flushed over the whole run.
    pub flushed: u64,
}

impl ShardAudit {
    /// Every shard's token ledger balances.
    pub fn balanced(&self) -> bool {
        self.shards.iter().all(|a| a.balanced())
    }
}

/// Epoch verdicts, published by the flush leader between the two
/// barriers of each epoch.
const EPOCH_CONTINUE: u8 = 0;
const EPOCH_DONE: u8 = 1;
const EPOCH_DEADLOCK: u8 = 2;
const EPOCH_ABORT: u8 = 3;

struct Engine<M: Message> {
    map: ShardMap,
    scheds: Vec<SimScheduler>,
    ports: Vec<Port<Timed<M>>>,
    /// Per-actor virtual clock as f64 bits; written only by the owning
    /// actor, read by the flusher at quiescence (the barrier orders the
    /// accesses).
    clocks: Vec<AtomicU64>,
    outboxes: Vec<Mutex<Vec<OutMsg<M>>>>,
    barrier: Barrier,
    lookahead: f64,
    aborted: AtomicBool,
    decision: AtomicU8,
    epochs: AtomicU64,
    flushed: AtomicU64,
    /// A lookahead-bound violation found by the flusher. Recorded, not
    /// panicked: the leader must still publish a verdict or the other
    /// coordinators would wait at the barrier forever; the runner
    /// re-raises it after the world joins.
    violation: Mutex<Option<String>>,
}

impl<M: Message> Engine<M> {
    fn new(map: ShardMap, lookahead: f64, scheds: Vec<SimScheduler>) -> Self {
        assert!(lookahead >= 0.0 && lookahead.is_finite(), "lookahead must be finite and >= 0");
        Self {
            ports: (0..map.n).map(|_| Port::new()).collect(),
            clocks: (0..map.n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
            outboxes: (0..map.shards()).map(|_| Mutex::ranked(&SHARD_STATE_RANK, Vec::new())).collect(),
            barrier: Barrier::new(map.shards()),
            map,
            scheds,
            lookahead,
            aborted: AtomicBool::new(false),
            decision: AtomicU8::new(EPOCH_CONTINUE),
            epochs: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            violation: Mutex::new(None),
        }
    }

    #[inline]
    fn clock(&self, id: ActorId) -> f64 {
        f64::from_bits(self.clocks[id].load(Ordering::Relaxed))
    }

    fn sched_of(&self, id: ActorId) -> &SimScheduler {
        &self.scheds[self.map.shard_of(id)]
    }

    /// Leader-only: drain every outbox in canonical (shard, send-order)
    /// order, deliver, validate the lookahead bound on matched
    /// receives, re-queue matched receivers, and publish the verdict.
    fn flush_and_decide(&self) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
        for s in 0..self.map.shards() {
            let outbox = &self.outboxes[s];
            let drained: Vec<OutMsg<M>> = std::mem::take(&mut *outbox.lock());
            self.flushed.fetch_add(drained.len() as u64, Ordering::Relaxed);
            for m in drained {
                let receiver_now = self.clock(m.to);
                let at = m.at;
                if self.ports[m.to].push(Timed { at, cross: true, msg: m.msg })
                    == PushOutcome::Matched
                {
                    // The receiver is frozen in a posted receive for
                    // exactly this message: its clock must sit within
                    // the conservative horizon the lookahead promises.
                    if receiver_now > at + self.lookahead + 1e-9 * at.abs().max(1.0) {
                        let mut v = self.violation.lock();
                        if v.is_none() {
                            *v = Some(format!(
                                "conservative lookahead violated: actor {} waits at \
                                 t={receiver_now} for a message sent at t={at} (lookahead \
                                 {}); the workload must charge at least the lookahead per \
                                 cross-shard interaction",
                                m.to, self.lookahead,
                            ));
                        }
                        self.aborted.store(true, Ordering::SeqCst);
                    }
                    self.sched_of(m.to).unblock(self.map.local(m.to));
                }
            }
        }
        let live: usize = self.scheds.iter().map(|s| s.live_count()).sum();
        let verdict = if self.aborted.load(Ordering::SeqCst) {
            EPOCH_ABORT
        } else if live == 0 {
            EPOCH_DONE
        } else if self.scheds.iter().any(|s| s.has_ready()) {
            EPOCH_CONTINUE
        } else {
            // Global quiescence, nothing deliverable: the classic
            // distributed termination verdict, visible only here.
            EPOCH_DEADLOCK
        };
        self.decision.store(verdict, Ordering::SeqCst);
    }

    /// One shard's coordinator: quiesce, rendezvous, flush (leader),
    /// act on the verdict. `quiesce` hides the mechanism — parked
    /// threads wait for idle, fiber shards drive their fibers.
    fn coordinate(&self, shard: usize, quiesce: &(dyn Fn(&SimScheduler) + Sync)) {
        let sched = &self.scheds[shard];
        loop {
            quiesce(sched);
            if self.barrier.wait().is_leader() {
                self.flush_and_decide();
            }
            self.barrier.wait();
            match self.decision.load(Ordering::SeqCst) {
                EPOCH_CONTINUE => sched.kick(),
                EPOCH_DONE => return,
                EPOCH_DEADLOCK => {
                    sched.declare_deadlock();
                    quiesce(sched);
                    return;
                }
                _ => {
                    sched.abort();
                    quiesce(sched);
                    return;
                }
            }
        }
    }

    fn audit(&self) -> ShardAudit {
        ShardAudit {
            shards: self.scheds.iter().map(|s| s.audit()).collect(),
            epochs: self.epochs.load(Ordering::Relaxed),
            flushed: self.flushed.load(Ordering::Relaxed),
        }
    }
}

/// Per-actor handle passed to the workload closure — the sharded twin
/// of [`crate::actors::ActorCtx`], with virtual time and messaging.
pub struct ShardCtx<'a, M: Message> {
    id: ActorId,
    shard: usize,
    eng: &'a Engine<M>,
}

impl<M: Message> ShardCtx<'_, M> {
    /// This actor's id (`0..n`).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// The shard this actor runs on (a pure function of `(n, W)`).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This actor's virtual time.
    pub fn now(&self) -> f64 {
        self.eng.clock(self.id)
    }

    /// Advance this actor's virtual time by `dt` (the workload's own
    /// pricing; the engine never charges time on its own).
    pub fn advance(&self, dt: f64) {
        let t = self.now() + dt;
        self.eng.clocks[self.id].store(t.to_bits(), Ordering::Relaxed);
    }

    /// Send `msg` to actor `to`, stamped with the current virtual
    /// time. Shard-local sends deliver immediately (serial semantics);
    /// cross-shard sends park in the outbox until the epoch flush.
    pub fn send(&self, to: ActorId, msg: M) {
        let at = self.now();
        let eng = self.eng;
        if eng.map.shard_of(to) == self.shard {
            if eng.ports[to].push(Timed { at, cross: false, msg }) == PushOutcome::Matched {
                eng.scheds[self.shard].unblock(eng.map.local(to));
            }
        } else {
            let outbox = &eng.outboxes[self.shard];
            outbox.lock().push(OutMsg { to, at, msg });
        }
    }

    /// Blocking receive of the first message matching `m`, merging the
    /// sender's send stamp into this actor's clock. Raises a typed
    /// [`BeffError`] if the world deadlocks or a peer dies.
    pub fn recv(&self, m: M::Filter) -> M {
        let eng = self.eng;
        let port = &eng.ports[self.id];
        let sched = &eng.scheds[self.shard];
        let local = eng.map.local(self.id);
        let t = loop {
            if let Some(t) = port.try_recv(m) {
                break t;
            }
            if eng.aborted.load(Ordering::SeqCst) {
                BeffError::PeerFailed.raise();
            }
            let ticket = port.post(m);
            sched.yield_blocked(local); // raises Deadlock when declared
            if let Some(t) = port.take_delivered(ticket) {
                break t;
            }
            if eng.aborted.load(Ordering::SeqCst) {
                BeffError::PeerFailed.raise();
            }
        };
        let now = self.now();
        if t.at > now {
            self.eng.clocks[self.id].store(t.at.to_bits(), Ordering::Relaxed);
        }
        t.msg
    }

    /// Cooperatively rotate the token among this shard's ready actors
    /// (see [`crate::sched::SimScheduler::yield_turn`]).
    pub fn yield_turn(&self) {
        self.eng.scheds[self.shard].yield_turn(self.eng.map.local(self.id));
    }
}

/// Outcome of one actor, kept panic-free (see [`crate::actors`]).
enum Outcome<R> {
    Done(R),
    Fault(BeffError),
    Bug(Box<dyn std::any::Any + Send>),
}

/// The shared actor wrapper: run the closure under the shard's token,
/// classify the exit. Mirrors [`crate::actors::try_run_actors`]'s
/// fault protocol exactly — faults are keyed to the actor id, never to
/// the worker that happened to host its shard.
fn actor_body<M, R, F>(eng: &Engine<M>, id: ActorId, f: &F, slot: &Mutex<Option<Outcome<R>>>)
where
    M: Message,
    R: Send,
    F: Fn(ShardCtx<'_, M>) -> R + Sync,
{
    let shard = eng.map.shard_of(id);
    let sched = &eng.scheds[shard];
    let local = eng.map.local(id);
    let out = catch_unwind(AssertUnwindSafe(|| {
        sched.wait_turn(local);
        f(ShardCtx { id, shard, eng })
    }));
    let outcome = match out {
        Ok(v) => {
            sched.finish(local);
            Outcome::Done(v)
        }
        Err(payload) => match payload.downcast::<BeffError>() {
            Ok(e) => {
                sched.finish(local);
                Outcome::Fault(*e)
            }
            Err(payload) => {
                eng.aborted.store(true, Ordering::SeqCst);
                sched.abort();
                sched.drain_grant(local);
                Outcome::Bug(payload)
            }
        },
    };
    *slot.lock() = Some(outcome);
}

/// Collect per-actor outcomes, propagating the first bug panic.
fn settle<R>(slots: Vec<Mutex<Option<Outcome<R>>>>) -> Vec<Result<R, BeffError>> {
    let mut outcomes: Vec<Outcome<R>> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("every actor stored an outcome"))
        .collect();
    if let Some(bug) = outcomes.iter().position(|o| matches!(o, Outcome::Bug(_))) {
        let Outcome::Bug(payload) = outcomes.swap_remove(bug) else { unreachable!() };
        resume_unwind(payload);
    }
    outcomes
        .into_iter()
        .map(|o| match o {
            Outcome::Done(v) => Ok(v),
            Outcome::Fault(e) => Err(e),
            Outcome::Bug(_) => unreachable!("bug outcomes already propagated"),
        })
        .collect()
}

/// Run `n` actors under the conservative sharded engine on parked OS
/// threads (one per actor, plus one coordinator per shard). Portable;
/// the x86_64 fast path is [`try_run_sharded`]'s fiber engine. Returns
/// id-ordered results and the per-shard audit.
pub fn try_run_sharded_parked<M, R, F>(
    n: usize,
    workers: Workers,
    lookahead: f64,
    f: F,
) -> (Vec<Result<R, BeffError>>, ShardAudit)
where
    M: Message,
    R: Send,
    F: Fn(ShardCtx<'_, M>) -> R + Sync,
{
    crate::error::silence_fault_panics();
    let map = ShardMap::new(n, workers);
    let scheds: Vec<SimScheduler> =
        (0..map.shards()).map(|s| SimScheduler::new_coordinated(map.len(s))).collect();
    let eng = Engine::new(map, lookahead, scheds);
    let slots: Vec<Mutex<Option<Outcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (eng, f, slots) = (&eng, &f, &slots);
        for id in 0..n {
            scope.spawn(move || actor_body(eng, id, f, &slots[id]));
        }
        for shard in 0..eng.map.shards() {
            scope.spawn(move || eng.coordinate(shard, &|s: &SimScheduler| s.wait_idle()));
        }
    });
    let audit = eng.audit();
    if let Some(msg) = eng.violation.lock().take() {
        panic!("{msg}");
    }
    let results = settle(slots);
    assert!(audit.balanced(), "token leak after sharded join: {audit:?}");
    (results, audit)
}

/// Run `n` actors under the conservative sharded engine on the fiber
/// mechanism: each of the `min(W, n)` workers drives its shard's
/// actors as user-space fibers, so a 10k-actor world costs `W` OS
/// threads, not 10k. Bit-identical to
/// [`try_run_sharded_parked`] and to itself at every worker count (for
/// workloads honoring the module's sender-specific-filter contract).
#[cfg(target_arch = "x86_64")]
pub fn try_run_sharded_fibered<M, R, F>(
    n: usize,
    workers: Workers,
    lookahead: f64,
    f: F,
) -> (Vec<Result<R, BeffError>>, ShardAudit)
where
    M: Message,
    R: Send,
    F: Fn(ShardCtx<'_, M>) -> R + Sync,
{
    use crate::fiber::{init_fiber, FiberStack, STACK_SIZE};
    crate::error::silence_fault_panics();
    let map = ShardMap::new(n, workers);
    let scheds: Vec<SimScheduler> =
        (0..map.shards()).map(|s| SimScheduler::new_coordinated_fibers(map.len(s))).collect();
    let eng = Engine::new(map, lookahead, scheds);
    let slots: Vec<Mutex<Option<Outcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (eng, f, slots) = (&eng, &f, &slots);
        for shard in 0..eng.map.shards() {
            scope.spawn(move || {
                let sched = &eng.scheds[shard];
                let base = eng.map.base(shard);
                let stacks: Vec<FiberStack> =
                    (0..eng.map.len(shard)).map(|_| FiberStack::new(STACK_SIZE)).collect();
                for (local, stack) in stacks.iter().enumerate() {
                    let id = base + local;
                    // SAFETY: every fiber completes (or unwinds into its
                    // stored outcome) before this scope ends, so the
                    // borrows erased here outlive every resume; the
                    // body's last action is fiber_exit, which never
                    // returns into dead frames.
                    let sp = unsafe {
                        init_fiber(
                            stack,
                            Box::new(move || {
                                actor_body(eng, id, f, &slots[id]);
                                eng.scheds[shard].fiber_exit(eng.map.local(id));
                            }),
                        )
                    };
                    sched.fibers().install(local, sp);
                }
                eng.coordinate(shard, &|s: &SimScheduler| s.drive_idle());
                for stack in &stacks {
                    assert!(stack.canary_intact(), "fiber stack overflow in shard {shard}");
                }
            });
        }
    });
    let audit = eng.audit();
    if let Some(msg) = eng.violation.lock().take() {
        panic!("{msg}");
    }
    let results = settle(slots);
    assert!(audit.balanced(), "token leak after sharded join: {audit:?}");
    (results, audit)
}

/// Run `n` actors under the conservative sharded engine with the
/// platform's fast mechanism (fibers on x86_64, parked threads
/// elsewhere), asserting the token audit. This is the entry point the
/// benches use; `workers` usually comes from
/// [`Workers::from_env`] (`BEFF_WORKERS`).
pub fn try_run_sharded<M, R, F>(
    n: usize,
    workers: Workers,
    lookahead: f64,
    f: F,
) -> Vec<Result<R, BeffError>>
where
    M: Message,
    R: Send,
    F: Fn(ShardCtx<'_, M>) -> R + Sync,
{
    #[cfg(target_arch = "x86_64")]
    let (results, _) = try_run_sharded_fibered(n, workers, lookahead, f);
    #[cfg(not(target_arch = "x86_64"))]
    let (results, _) = try_run_sharded_parked(n, workers, lookahead, f);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring workload message: matched on the sender id (the
    /// sender-specific-filter contract the determinism argument needs).
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Hop {
        from: usize,
        round: u32,
        acc: f64,
    }

    #[derive(Debug, Clone, Copy)]
    struct From(usize);

    impl Message for Hop {
        type Filter = From;
        fn admits(f: &From, m: &Hop) -> bool {
            m.from == f.0
        }
    }

    const LOOKAHEAD: f64 = 1e-6;

    /// The reference workload: a ring of `n` actors, each round every
    /// actor advances one lookahead, sends its accumulator to its right
    /// neighbor and folds in the value from its left neighbor. Returns
    /// per-actor f64 bits — any schedule divergence shows up bitwise.
    fn ring(n: usize, rounds: u32) -> impl Fn(ShardCtx<'_, Hop>) -> (u64, u64) + Sync {
        move |ctx| {
            let id = ctx.id();
            let right = (id + 1) % n;
            let left = (id + n - 1) % n;
            let mut acc = id as f64 + 1.0;
            for round in 0..rounds {
                ctx.advance(LOOKAHEAD);
                ctx.send(right, Hop { from: id, round, acc });
                let got = ctx.recv(From(left));
                assert_eq!(got.round, round);
                acc = acc * 0.5 + got.acc * 0.5 + 1.0 / (1.0 + round as f64);
            }
            (acc.to_bits(), ctx.now().to_bits())
        }
    }

    fn run_ring_parked(n: usize, w: usize) -> Vec<Result<(u64, u64), BeffError>> {
        try_run_sharded_parked(n, Workers::new(w), LOOKAHEAD, ring(n, 16)).0
    }

    #[test]
    fn shard_map_is_contiguous_and_total() {
        let map = ShardMap::new(10, Workers::new(4));
        assert_eq!(map.shards(), 4);
        let shards: Vec<usize> = (0..10).map(|i| map.shard_of(i)).collect();
        assert_eq!(shards, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        let total: usize = (0..map.shards()).map(|s| map.len(s)).sum();
        assert_eq!(total, 10);
        assert_eq!(ShardMap::new(4, Workers::new(8)).shards(), 4);
        assert_eq!(ShardMap::new(7, Workers::new(1)).shards(), 1);
    }

    #[test]
    fn ring_results_are_worker_count_invariant_parked() {
        let serial = run_ring_parked(12, 1);
        assert!(serial.iter().all(|r| r.is_ok()));
        for w in [2, 3, 4, 8] {
            assert_eq!(serial, run_ring_parked(12, w), "parked ring diverged at {w} workers");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn ring_results_are_worker_count_and_mechanism_invariant() {
        let serial = run_ring_parked(12, 1);
        for w in [1, 2, 4, 8] {
            let (fibered, audit) =
                try_run_sharded_fibered(12, Workers::new(w), LOOKAHEAD, ring(12, 16));
            assert_eq!(serial, fibered, "fiber ring diverged at {w} workers");
            assert!(audit.balanced());
        }
    }

    #[test]
    fn audit_accounts_per_shard_and_balances() {
        let (results, audit) =
            try_run_sharded_parked(8, Workers::new(4), LOOKAHEAD, ring(8, 4));
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(audit.shards.len(), 4);
        assert!(audit.balanced());
        assert!(audit.epochs > 0, "a 4-shard ring must cross epoch barriers");
        assert!(audit.flushed > 0, "a 4-shard ring must flush cross-shard messages");
        for a in &audit.shards {
            assert_eq!(a.finished, 2);
            assert!(!a.deadlocked && !a.aborted);
        }
    }

    #[test]
    fn global_deadlock_is_detected_across_shards() {
        // Everyone receives from a peer on another shard; nobody sends.
        let (results, audit) = try_run_sharded_parked::<Hop, _, _>(
            4,
            Workers::new(2),
            LOOKAHEAD,
            |ctx: ShardCtx<'_, Hop>| {
                let peer = (ctx.id() + 2) % 4; // always the other shard
                ctx.recv(From(peer));
            },
        );
        assert_eq!(results.len(), 4);
        for r in results {
            assert!(matches!(r, Err(BeffError::Deadlock)), "got {r:?}");
        }
        assert!(audit.balanced());
    }

    #[test]
    fn typed_fault_is_isolated_per_actor_not_per_worker() {
        let run = |w: usize| {
            try_run_sharded_parked::<Hop, _, _>(
                6,
                Workers::new(w),
                LOOKAHEAD,
                |ctx: ShardCtx<'_, Hop>| {
                    if ctx.id() == 2 {
                        BeffError::RankCrashed { rank: 2, at: 0.25 }.raise();
                    }
                    ctx.advance(LOOKAHEAD);
                    ctx.id() * 10
                },
            )
            .0
        };
        let serial = run(1);
        assert!(matches!(serial[2], Err(BeffError::RankCrashed { rank: 2, .. })));
        assert_eq!(serial[5], Ok(50));
        for w in [2, 3] {
            assert_eq!(serial, run(w), "fault outcomes diverged at {w} workers");
        }
    }

    #[test]
    fn untyped_panic_aborts_the_world_and_propagates() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            try_run_sharded_parked::<Hop, _, _>(
                4,
                Workers::new(2),
                LOOKAHEAD,
                |ctx: ShardCtx<'_, Hop>| {
                    if ctx.id() == 1 {
                        panic!("workload bug");
                    }
                    // Survivors block cross-shard so the abort must
                    // reach them through the epoch machinery.
                    let peer = (ctx.id() + 2) % 4;
                    ctx.recv(From(peer));
                },
            )
        }));
        let payload = r.expect_err("bug panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "workload bug");
    }

    #[test]
    fn lookahead_violation_is_caught() {
        // Actor 1 races its clock far past the bound, then posts a
        // receive for a cross-shard message stamped near t=0: the
        // flusher must refuse the model's broken latency claim.
        let r = catch_unwind(AssertUnwindSafe(|| {
            try_run_sharded_parked::<Hop, _, _>(
                2,
                Workers::new(2),
                LOOKAHEAD,
                |ctx: ShardCtx<'_, Hop>| {
                    if ctx.id() == 0 {
                        ctx.send(1, Hop { from: 0, round: 0, acc: 0.0 });
                    } else {
                        ctx.advance(1000.0 * LOOKAHEAD);
                        ctx.recv(From(0));
                    }
                },
            )
        }));
        assert!(r.is_err(), "a violated lookahead bound must not pass silently");
    }

    /// The scale target: a 10k-actor world must fit tier-1 timeouts.
    /// Fibers make this cheap — `W` OS threads and 10k lazily-committed
    /// stacks, not 10k threads — and the epoch count stays equal to the
    /// round count regardless of scale.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn ten_thousand_ranks_fit_tier1_timeouts() {
        let n = 10_000;
        let (results, audit) =
            try_run_sharded_fibered(n, Workers::new(4), LOOKAHEAD, ring(n, 3));
        assert!(results.iter().all(|r| r.is_ok()));
        assert!(audit.balanced());
        assert_eq!(audit.shards.len(), 4);
        // The rightward ring crosses each of the 4 shard boundaries
        // once per round.
        assert_eq!(audit.flushed, 3 * 4);
    }

    #[test]
    fn virtual_clocks_merge_on_receive() {
        let (results, _) = try_run_sharded_parked::<Hop, _, _>(
            2,
            Workers::new(2),
            1.0,
            |ctx: ShardCtx<'_, Hop>| {
                if ctx.id() == 0 {
                    ctx.advance(5.0);
                    ctx.send(1, Hop { from: 0, round: 0, acc: 0.0 });
                    ctx.now()
                } else {
                    ctx.recv(From(0));
                    ctx.now() // merged to the sender's send stamp
                }
            },
        );
        let times: Vec<f64> = results.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(times, vec![5.0, 5.0]);
    }
}
