//! A minimal actor runtime over the token scheduler.
//!
//! [`try_run_actors`] runs `n` closures ("actors") under a
//! [`SimScheduler`]: exactly one actor executes at a time, the token
//! rotating in deterministic FIFO order, so a fixed program replays
//! bit-identically. This is the substrate entry point for workloads
//! that do not want the MPI world machinery (mailbox wiring, network
//! pricing, collectives) — e.g. the PFS storage sweep, which drives
//! the filesystem simulator directly from client actors.
//!
//! Fault protocol: a typed [`BeffError`] raised by an actor (via
//! [`BeffError::raise`]) is an *isolated* early exit — the actor's
//! token is handed on and the survivors keep their deterministic
//! order, so post-fault results still replay byte-identically. Any
//! other panic is a bug in the workload: the world aborts and the
//! panic propagates to the caller.
//!
//! Actors that run long compute-free stretches should call
//! [`ActorCtx::yield_turn`] at natural checkpoints to interleave with
//! their peers; without it each actor runs to completion before the
//! next starts (still deterministic, just coarse).

use crate::error::BeffError;
use crate::sched::SimScheduler;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Identity of one actor in a [`try_run_actors`] world: dense indices
/// `0..n`, the substrate-level generalization of an MPI rank.
pub type ActorId = usize;

/// Per-actor handle passed to the actor closure.
pub struct ActorCtx<'a> {
    id: ActorId,
    sched: &'a SimScheduler,
}

impl ActorCtx<'_> {
    /// This actor's id (`0..n`).
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// The world's scheduler, for workloads that need to build their
    /// own blocking primitives on top of the token protocol.
    pub fn sched(&self) -> &SimScheduler {
        self.sched
    }

    /// Cooperatively rotate the token: every currently ready peer runs
    /// before this actor continues. No-op when no peer is ready.
    pub fn yield_turn(&self) {
        self.sched.yield_turn(self.id);
    }
}

/// Outcome of one actor thread, kept panic-free so scoped-join errors
/// cannot mask the original payload.
enum Outcome<R> {
    Done(R),
    Fault(BeffError),
    Bug(Box<dyn std::any::Any + Send>),
}

/// Run `n` actors to completion under the token scheduler, returning
/// each actor's result in id order. Typed faults ([`BeffError`])
/// become `Err` entries; any other panic aborts the world and
/// propagates. See the module docs for the determinism contract.
pub fn try_run_actors<R, F>(n: usize, f: F) -> Vec<Result<R, BeffError>>
where
    R: Send,
    F: Fn(ActorCtx<'_>) -> R + Sync,
{
    assert!(n > 0, "actor world needs at least one actor");
    crate::error::silence_fault_panics();
    let sched = SimScheduler::new(n);
    let outcomes: Vec<Outcome<R>> = std::thread::scope(|scope| {
        let sched = &sched;
        let f = &f;
        let handles: Vec<_> = (0..n)
            .map(|id| {
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        sched.wait_turn(id);
                        f(ActorCtx { id, sched })
                    }));
                    match out {
                        Ok(v) => {
                            sched.finish(id);
                            Outcome::Done(v)
                        }
                        Err(payload) => match payload.downcast::<BeffError>() {
                            // A typed fault is an isolated early exit:
                            // the actor consumed its own token, so
                            // `finish` hands it on and the survivors
                            // keep deterministic order.
                            Ok(e) => {
                                sched.finish(id);
                                Outcome::Fault(*e)
                            }
                            Err(payload) => {
                                sched.abort();
                                sched.drain_grant(id);
                                Outcome::Bug(payload)
                            }
                        },
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => Outcome::Bug(payload),
            })
            .collect()
    });
    if let Some(bug) = outcomes.iter().position(|o| matches!(o, Outcome::Bug(_))) {
        let Outcome::Bug(payload) = outcomes.into_iter().nth(bug).expect("position just found")
        else {
            unreachable!()
        };
        resume_unwind(payload);
    }
    let audit = sched.audit();
    assert!(audit.balanced(), "token leak after actor join: {audit:?}");
    outcomes
        .into_iter()
        .map(|o| match o {
            Outcome::Done(v) => Ok(v),
            Outcome::Fault(e) => Err(e),
            Outcome::Bug(_) => unreachable!("bug outcomes already propagated"),
        })
        .collect()
}

/// [`try_run_actors`] for workloads that expect every actor to
/// succeed: panics on the first typed fault instead of returning it.
pub fn run_actors<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ActorCtx<'_>) -> R + Sync,
{
    try_run_actors(n, f)
        .into_iter()
        .enumerate()
        .map(|(id, r)| match r {
            Ok(v) => v,
            Err(e) => panic!("actor {id} faulted: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn actors_run_in_id_order_without_yields() {
        let order = Mutex::new(Vec::new());
        run_actors(4, |ctx| order.lock().unwrap().push(ctx.id()));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn yield_turn_interleaves_round_robin() {
        let order = Mutex::new(Vec::new());
        run_actors(3, |ctx| {
            for step in 0..3 {
                order.lock().unwrap().push((ctx.id(), step));
                ctx.yield_turn();
            }
        });
        // Perfect rotation: all actors do step 0, then step 1, ...
        let want: Vec<_> =
            (0..3).flat_map(|s| (0..3).map(move |id| (id, s))).collect();
        assert_eq!(*order.lock().unwrap(), want);
    }

    #[test]
    fn yield_turn_with_single_actor_is_noop() {
        let out = run_actors(1, |ctx| {
            ctx.yield_turn();
            ctx.id() + 41
        });
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn typed_fault_is_isolated_and_survivors_finish() {
        let results = try_run_actors(4, |ctx| {
            if ctx.id() == 2 {
                BeffError::RankCrashed { rank: 2, at: 0.5 }.raise();
            }
            ctx.yield_turn();
            ctx.id() * 10
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Ok(10));
        assert!(matches!(results[2], Err(BeffError::RankCrashed { rank: 2, .. })));
        assert_eq!(results[3], Ok(30));
    }

    #[test]
    fn results_are_bit_deterministic_across_runs() {
        let run = || {
            try_run_actors(5, |ctx| {
                let mut acc = ctx.id() as f64;
                for i in 0..50 {
                    acc += (i as f64) * 1e-3 / (1.0 + ctx.id() as f64);
                    if i % 7 == 0 {
                        ctx.yield_turn();
                    }
                }
                if ctx.id() == 3 {
                    BeffError::PeerFailed.raise();
                }
                acc.to_bits()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn untyped_panic_propagates_to_caller() {
        let counted = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            try_run_actors(3, |ctx| {
                counted.fetch_add(1, Ordering::Relaxed);
                if ctx.id() == 1 {
                    panic!("workload bug");
                }
            })
        }));
        let payload = r.expect_err("bug panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "workload bug");
    }
}
