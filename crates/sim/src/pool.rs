//! The workspace's one worker pool: deterministic fan-out over a fixed
//! thread count.
//!
//! Parallelism in a bit-deterministic stack is only safe at boundaries
//! where jobs share *nothing* mutable — a batch of independent world
//! runs, calibration rows each on their own machine model, chaos
//! scenarios each owning their fault session. This module provides that
//! one idiom and nothing else: [`map_ordered`] runs `f` over every item
//! on up to [`Workers`] OS threads and returns the results **in
//! submission order**, so the output is byte-identical to the serial
//! map regardless of how the host scheduler interleaved the jobs.
//!
//! `Workers::try_from_env()` reads `BEFF_WORKERS` (default: host
//! cores); `BEFF_WORKERS=1` takes the inline path — no threads are
//! spawned at all, which *is* the pre-existing serial behavior, not an
//! emulation of it. A set-but-invalid value (`0`, garbage) is a typed
//! [`WorkersError`], never a silent fallback. The `beff-analyze`
//! `threading` rule quarantines thread creation to this crate, so
//! every parallel call site in the workspace funnels through here.

use beff_sync::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `BEFF_WORKERS` value that cannot configure a pool. Surfaced as a
/// typed error so drivers can print one clear line and exit instead of
/// panicking mid-run — and so a typo never silently falls back to some
/// other worker count (a silent fallback would *change the machine
/// load* behind the user's back, even though results are byte-identical
/// at every worker count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkersError {
    /// `BEFF_WORKERS=0`: there is no zero-thread pool. `1` is the
    /// serial path; `0` is always a mistake, not a request.
    Zero,
    /// Not a base-10 unsigned integer (the offending text is carried).
    Invalid(String),
}

impl fmt::Display for WorkersError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkersError::Zero => {
                write!(f, "BEFF_WORKERS=0 is invalid: use 1 for the serial path, or unset it for host cores")
            }
            WorkersError::Invalid(raw) => {
                write!(f, "BEFF_WORKERS={raw:?} is not a worker count: expected a positive integer (e.g. BEFF_WORKERS=4), or unset for host cores")
            }
        }
    }
}

impl std::error::Error for WorkersError {}

/// A validated worker count (≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workers(usize);

impl Workers {
    /// An explicit worker count; `0` is clamped to `1` (serial). This
    /// is the *programmatic* constructor — env input goes through
    /// [`Workers::try_from_env`], where `0` is a typed error instead.
    pub fn new(n: usize) -> Self {
        Self(n.max(1))
    }

    /// Parse a worker count the way the `BEFF_WORKERS` knob is read:
    /// a positive base-10 integer. `0`, empty, and garbage are typed
    /// [`WorkersError`]s — never a panic, never a silent fallback.
    pub fn parse(raw: &str) -> Result<Self, WorkersError> {
        let t = raw.trim();
        match t.parse::<usize>() {
            Ok(0) => Err(WorkersError::Zero),
            Ok(n) => Ok(Self(n)),
            Err(_) => Err(WorkersError::Invalid(t.to_string())),
        }
    }

    /// The `BEFF_WORKERS` environment knob as a typed result: unset
    /// defaults to the host's available parallelism (`1` if the host
    /// won't say); set-but-invalid is a [`WorkersError`]. Front-end
    /// binaries should call this once at startup and report the error
    /// cleanly (the `beff-serve` bins do).
    pub fn try_from_env() -> Result<Self, WorkersError> {
        match std::env::var("BEFF_WORKERS") {
            Ok(v) => Self::parse(&v),
            Err(_) => {
                let host =
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                Ok(Self::new(host))
            }
        }
    }

    /// [`Workers::try_from_env`] for construction paths that cannot
    /// return a `Result` (engine defaults deep inside world builders).
    /// An invalid `BEFF_WORKERS` panics with the typed error's message
    /// — loud and exact, where the pre-fix behavior silently fell back
    /// to host cores on garbage and clamped `0` to `1`.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    #[inline]
    pub fn get(self) -> usize {
        self.0
    }

    /// Is this the serial (no threads spawned) configuration?
    #[inline]
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Workers {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Apply `f` to every item on up to `workers` threads, returning the
/// results in submission order. `f` receives `(index, item)`.
///
/// With one worker (or one item) the map runs inline on the caller's
/// thread — the serial path spawns nothing. A panicking job aborts the
/// batch: the first panic (in completion order) propagates to the
/// caller after all workers have stopped picking up new items.
pub fn map_ordered<T, R, F>(workers: Workers, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if workers.is_serial() || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n = items.len();
    let width = workers.get().min(n);
    // Scatter: each job's input and result slot is touched by exactly
    // one worker (the one that won the index), so plain mutexes carry
    // no contention — they are ownership transfer, not sharing.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                let (inputs, slots, next, f) = (&inputs, &slots, &next, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let item = inputs[i].lock().take().expect("job input taken once");
                    let r = f(i, item);
                    *slots[i].lock() = Some(r);
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                // Stop the remaining workers from claiming new jobs.
                next.store(n, Ordering::Relaxed);
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every job completed or the panic propagated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_clamp_and_parse() {
        assert_eq!(Workers::new(0).get(), 1);
        assert!(Workers::new(1).is_serial());
        assert_eq!(Workers::new(8).get(), 8);
    }

    #[test]
    fn env_shaped_parsing_is_typed() {
        assert_eq!(Workers::parse("4"), Ok(Workers::new(4)));
        assert_eq!(Workers::parse(" 2 "), Ok(Workers::new(2)));
        assert_eq!(Workers::parse("0"), Err(WorkersError::Zero));
        assert_eq!(Workers::parse(""), Err(WorkersError::Invalid(String::new())));
        assert_eq!(Workers::parse("eight"), Err(WorkersError::Invalid("eight".into())));
        assert_eq!(Workers::parse("-3"), Err(WorkersError::Invalid("-3".into())));
        assert_eq!(Workers::parse("4.5"), Err(WorkersError::Invalid("4.5".into())));
    }

    #[test]
    fn workers_errors_explain_themselves() {
        let zero = WorkersError::Zero.to_string();
        assert!(zero.contains("BEFF_WORKERS=0") && zero.contains("serial"), "{zero}");
        let bad = Workers::parse("lots").expect_err("garbage must not parse").to_string();
        assert!(bad.contains("lots") && bad.contains("positive integer"), "{bad}");
    }

    /// The one env-mutating test: `from_env` must surface the typed
    /// message on garbage and honor valid values. Kept as a single test
    /// so the env var is never raced by a parallel test thread.
    #[test]
    fn from_env_honors_and_rejects() {
        // SAFETY-adjacent note: no other test in this binary touches
        // BEFF_WORKERS; set/remove pairs stay within this test.
        std::env::set_var("BEFF_WORKERS", "3");
        assert_eq!(Workers::try_from_env(), Ok(Workers::new(3)));
        assert_eq!(Workers::from_env().get(), 3);
        std::env::set_var("BEFF_WORKERS", "zero");
        assert_eq!(
            Workers::try_from_env(),
            Err(WorkersError::Invalid("zero".into()))
        );
        let p = std::panic::catch_unwind(Workers::from_env).expect_err("must panic");
        let msg = p.downcast_ref::<String>().expect("panic carries the typed message");
        assert!(msg.contains("BEFF_WORKERS"), "{msg}");
        std::env::remove_var("BEFF_WORKERS");
        assert!(Workers::try_from_env().expect("unset env is the host default").get() >= 1);
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let job = |i: usize, x: u64| {
            let mut acc = x as f64;
            for k in 0..200 {
                acc += (k as f64) / (1.0 + i as f64);
            }
            acc.to_bits()
        };
        let items: Vec<u64> = (0..37).collect();
        let serial = map_ordered(Workers::new(1), items.clone(), job);
        for w in [2, 4, 8] {
            let parallel = map_ordered(Workers::new(w), items.clone(), job);
            assert_eq!(serial, parallel, "order/content must not depend on {w} workers");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<u32> = map_ordered(Workers::new(4), Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        let one = map_ordered(Workers::new(4), vec![7u32], |i, x| x + i as u32);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = map_ordered(Workers::new(16), vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn job_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            map_ordered(Workers::new(4), (0..8u32).collect(), |_, x| {
                if x == 3 {
                    panic!("job bug");
                }
                x
            })
        });
        assert!(r.is_err(), "a job panic must reach the caller");
    }
}
