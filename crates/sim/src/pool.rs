//! The workspace's one worker pool: deterministic fan-out over a fixed
//! thread count.
//!
//! Parallelism in a bit-deterministic stack is only safe at boundaries
//! where jobs share *nothing* mutable — a batch of independent world
//! runs, calibration rows each on their own machine model, chaos
//! scenarios each owning their fault session. This module provides that
//! one idiom and nothing else: [`map_ordered`] runs `f` over every item
//! on up to [`Workers`] OS threads and returns the results **in
//! submission order**, so the output is byte-identical to the serial
//! map regardless of how the host scheduler interleaved the jobs.
//!
//! `Workers::from_env()` reads `BEFF_WORKERS` (default: host cores);
//! `BEFF_WORKERS=1` takes the inline path — no threads are spawned at
//! all, which *is* the pre-existing serial behavior, not an emulation
//! of it. The `beff-analyze` `threading` rule quarantines thread
//! creation to this crate, so every parallel call site in the workspace
//! funnels through here.

use beff_sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A validated worker count (≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workers(usize);

impl Workers {
    /// An explicit worker count; `0` is clamped to `1` (serial).
    pub fn new(n: usize) -> Self {
        Self(n.max(1))
    }

    /// The `BEFF_WORKERS` environment knob: unset or unparsable falls
    /// back to the host's available parallelism (`1` on failure).
    /// `BEFF_WORKERS=1` is the serial path.
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("BEFF_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return Self::new(n);
            }
        }
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(host)
    }

    #[inline]
    pub fn get(self) -> usize {
        self.0
    }

    /// Is this the serial (no threads spawned) configuration?
    #[inline]
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Workers {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Apply `f` to every item on up to `workers` threads, returning the
/// results in submission order. `f` receives `(index, item)`.
///
/// With one worker (or one item) the map runs inline on the caller's
/// thread — the serial path spawns nothing. A panicking job aborts the
/// batch: the first panic (in completion order) propagates to the
/// caller after all workers have stopped picking up new items.
pub fn map_ordered<T, R, F>(workers: Workers, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if workers.is_serial() || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n = items.len();
    let width = workers.get().min(n);
    // Scatter: each job's input and result slot is touched by exactly
    // one worker (the one that won the index), so plain mutexes carry
    // no contention — they are ownership transfer, not sharing.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                let (inputs, slots, next, f) = (&inputs, &slots, &next, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let item = inputs[i].lock().take().expect("job input taken once");
                    let r = f(i, item);
                    *slots[i].lock() = Some(r);
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                // Stop the remaining workers from claiming new jobs.
                next.store(n, Ordering::Relaxed);
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every job completed or the panic propagated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_clamp_and_parse() {
        assert_eq!(Workers::new(0).get(), 1);
        assert!(Workers::new(1).is_serial());
        assert_eq!(Workers::new(8).get(), 8);
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let job = |i: usize, x: u64| {
            let mut acc = x as f64;
            for k in 0..200 {
                acc += (k as f64) / (1.0 + i as f64);
            }
            acc.to_bits()
        };
        let items: Vec<u64> = (0..37).collect();
        let serial = map_ordered(Workers::new(1), items.clone(), job);
        for w in [2, 4, 8] {
            let parallel = map_ordered(Workers::new(w), items.clone(), job);
            assert_eq!(serial, parallel, "order/content must not depend on {w} workers");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<u32> = map_ordered(Workers::new(4), Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        let one = map_ordered(Workers::new(4), vec![7u32], |i, x| x + i as u32);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = map_ordered(Workers::new(16), vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn job_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            map_ordered(Workers::new(4), (0..8u32).collect(), |_, x| {
                if x == 3 {
                    panic!("job bug");
                }
                x
            })
        });
        assert!(r.is_err(), "a job panic must reach the caller");
    }
}
