//! Small deterministic RNG (xoshiro256** seeded via SplitMix64).
//!
//! The b_eff *random patterns* need a reproducible permutation of ranks
//! that is identical on every rank of a run, so a seedable, dependency-
//! free generator is preferable to thread-local entropy.

/// xoshiro256** — fast, high-quality, deterministic.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed via SplitMix64 so that any u64 (including 0) is a good seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift (unbiased enough
    /// for shuffling; n is tiny compared to 2^64).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = Rng64::new(3);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng64::new(0);
        // xoshiro must not get stuck at zero thanks to SplitMix64 seeding
        assert_ne!(r.next_u64() | r.next_u64() | r.next_u64(), 0);
    }

    /// Golden stream: the exact first draws for fixed seeds, pinned so
    /// the RNG consolidation (this is now the *only* deterministic RNG
    /// in the workspace — `beff-check`, the fault planner and the
    /// benchmark shufflers all seed from it) can never silently change
    /// the sequence existing seeds replay.
    #[test]
    fn golden_stream_is_pinned() {
        let mut r = Rng64::new(0);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                0x99ec_5f36_cb75_f2b4,
                0xbf6e_1f78_4956_452a,
                0x1a5f_849d_4933_e6e0,
                0x6aa5_94f1_262d_2d2c,
            ],
        );
        let mut r = Rng64::new(42);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                0x1578_0b2e_0c2e_c716,
                0x6104_d986_6d11_3a7e,
                0xae17_5332_39e4_99a1,
                0xecb8_ad47_03b3_60a1,
            ],
        );
        let mut r = Rng64::new(0xBEEF);
        let golden: u64 = (0..1000).map(|_| r.next_u64()).fold(0, u64::wrapping_add);
        assert_eq!(golden, 0xdd76_7347_8b5d_d7b9, "1000-draw checksum moved");
    }

    #[test]
    fn below_roughly_uniform() {
        let mut r = Rng64::new(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }
}
