//! Typed failure values for the simulated world.
//!
//! The benchmark kernels use MPI-shaped signatures (`send`/`recv`
//! return payloads, not `Result`s), so a fault that fires deep inside a
//! rank's closure cannot thread an error back through the call chain.
//! Instead faults *raise*: [`BeffError::raise`] panics with the error
//! as a typed payload (`std::panic::panic_any`), the runtime's
//! `catch_unwind` boundary catches it, and `World::try_run` /
//! `WorldSession::try_run` downcast it back into a value the driver can
//! match on. String panics remain reserved for true invariant
//! violations (fiber stack canary, mailbox protocol bugs): those still
//! propagate as panics and abort the run loudly.

use std::fmt;

/// Everything that can take down a rank or a whole pattern run.
#[derive(Debug, Clone, PartialEq)]
pub enum BeffError {
    /// The rank reached its scheduled crash time and died. Permanent:
    /// the rank stays dead for the rest of the benchmark execution.
    RankCrashed { rank: usize, at: f64 },
    /// Every retransmit attempt found a permanently dead link on the
    /// route. Permanent: the link never comes back.
    LinkDead { src: usize, dst: usize, attempts: u32 },
    /// Transient drops ate the whole retransmit budget. Retryable: a
    /// fresh attempt draws fresh sequence numbers.
    RetransmitExhausted { src: usize, dst: usize, attempts: u32 },
    /// Every live rank was blocked in recv — the program deadlocked.
    /// Permanent: replaying the same program deadlocks again.
    Deadlock,
    /// A peer rank died and poisoned the world (the `MPI_Abort`
    /// analogue). Permanent: the root cause does not go away.
    PeerFailed,
    /// A driver-side watchdog deadline expired.
    Watchdog { pattern: String, budget: f64, observed: f64 },
    /// An I/O layer failure.
    Io(String),
}

impl fmt::Display for BeffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RankCrashed { rank, at } => {
                write!(f, "rank {rank} crashed at t={at:.6}s")
            }
            Self::LinkDead { src, dst, attempts } => {
                write!(f, "route {src}->{dst} dead after {attempts} attempts")
            }
            Self::RetransmitExhausted { src, dst, attempts } => {
                write!(f, "retransmit budget exhausted on {src}->{dst} after {attempts} attempts")
            }
            Self::Deadlock => write!(f, "deadlock: every live rank blocked in recv"),
            Self::PeerFailed => write!(f, "peer rank failed; world poisoned"),
            Self::Watchdog { pattern, budget, observed } => {
                write!(f, "watchdog: pattern {pattern} point took {observed:.4}s (budget {budget:.4}s)")
            }
            Self::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for BeffError {}

impl BeffError {
    /// Faults no per-pattern retry can clear: the underlying cause
    /// persists for the rest of the benchmark execution, so the driver
    /// should mark the pattern failed immediately instead of burning
    /// retries.
    pub fn is_permanent(&self) -> bool {
        matches!(
            self,
            Self::RankCrashed { .. } | Self::LinkDead { .. } | Self::Deadlock | Self::PeerFailed
        )
    }

    /// Raise this error as a typed panic payload for `try_run` to
    /// catch. Diverges.
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }
}

/// Install (once, process-wide) a panic hook that keeps typed fault
/// raises silent: a [`BeffError`] unwinding to the runtime's
/// `catch_unwind` boundary is routine control flow under fault
/// injection, and the default hook's "thread panicked" report would
/// drown a chaos sweep in backtraces. Every other panic payload still
/// goes through the previously installed hook, loudly.
pub fn silence_fault_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<BeffError>().is_none() {
                prev(info);
            }
        }));
    });
}
