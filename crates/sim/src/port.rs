//! Typed two-queue matching ports over generic actor ids.
//!
//! A [`Port`] is the workload-agnostic generalization of an MPI-style
//! mailbox: each actor owns one, holding two structures:
//!
//! * an *unexpected-message* queue: messages that arrived before any
//!   matching receive was posted, in arrival order;
//! * a *posted-receive* list: pending receives, each with a ticket and
//!   a slot the matching message is delivered into.
//!
//! What counts as "matching" is the personality's business: a message
//! type implements [`Message`] and names its [`Message::Filter`] — MPI
//! instantiates `Port<Envelope>` with a (context, source, tag) pattern;
//! a storage workload might match on request ids. The queue discipline
//! below is identical for every instantiation.
//!
//! A push first tries to complete the oldest open posted receive it
//! matches ([`PushOutcome::Matched`] — the only case that wakes
//! anyone); otherwise it appends to the unexpected queue *silently*
//! ([`PushOutcome::Queued`]). Receivers scan the unexpected queue once,
//! then post and sleep — no rescanning of the whole queue per wakeup,
//! and no wakeups at all for messages nobody is waiting on.
//!
//! *Non-overtaking* holds by construction: a receive only posts after
//! finding no match in the unexpected queue, so every message that
//! could match an open slot is a later arrival than anything queued —
//! per-sender program order is preserved across both paths.

use crate::error::BeffError;
use beff_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// A message deliverable through a [`Port`], together with the filter
/// its receivers match on.
pub trait Message: Send + std::fmt::Debug {
    /// The matching pattern a receive is posted with.
    type Filter: Copy + Send + std::fmt::Debug;

    /// Does `filter` accept `msg`? Must be a pure function: the
    /// two-queue optimization is behaviorally equivalent to a linear
    /// scan only if admission does not depend on queue state.
    fn admits(filter: &Self::Filter, msg: &Self) -> bool;
}

/// What a push did — drives the targeted-wakeup protocol: only
/// `Matched` means a receiver is waiting on this message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Delivered straight into a posted receive's slot.
    Matched,
    /// Nobody was waiting; appended to the unexpected queue (no wakeup).
    Queued,
}

#[derive(Debug)]
struct Posted<M: Message> {
    ticket: u64,
    m: M::Filter,
    delivered: Option<M>,
}

#[derive(Debug)]
struct Inner<M: Message> {
    unexpected: VecDeque<M>,
    posted: Vec<Posted<M>>,
    next_ticket: u64,
    /// Set when the world aborts (an actor panicked); wakes blocked
    /// receivers so they do not deadlock on a dead peer.
    poisoned: bool,
}

// Manual: `derive(Default)` would demand `M: Default`, which messages
// need not be.
impl<M: Message> Default for Inner<M> {
    fn default() -> Self {
        Self { unexpected: VecDeque::new(), posted: Vec::new(), next_ticket: 0, poisoned: false }
    }
}

impl<M: Message> Inner<M> {
    fn take_unexpected(&mut self, m: M::Filter) -> Option<M> {
        let pos = self.unexpected.iter().position(|e| M::admits(&m, e))?;
        Some(self.unexpected.remove(pos).expect("position just found"))
    }

    fn post(&mut self, m: M::Filter) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.posted.push(Posted { ticket, m, delivered: None });
        ticket
    }

    /// Remove the slot for `ticket`, returning its delivery if any.
    fn remove_slot(&mut self, ticket: u64) -> Option<M> {
        let pos = self.posted.iter().position(|p| p.ticket == ticket)?;
        self.posted.swap_remove(pos).delivered
    }
}

/// Lock-hierarchy position of an actor's port (DESIGN.md §8): below
/// the scheduler locks — senders finish their port transaction before
/// touching the token scheduler.
static PORT_RANK: beff_sync::Rank = beff_sync::Rank::new(30, "sim.port");

/// Two-queue matching port + wakeup for one actor.
#[derive(Debug)]
pub struct Port<M: Message> {
    inner: Mutex<Inner<M>>,
    cond: Condvar,
}

impl<M: Message> Default for Port<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Message> Port<M> {
    pub fn new() -> Self {
        Self {
            inner: Mutex::ranked(&PORT_RANK, Inner::default()),
            cond: Condvar::new(),
        }
    }

    /// Deliver a message (called from the sender's thread). Wakes
    /// waiters only on [`PushOutcome::Matched`].
    pub fn push(&self, msg: M) -> PushOutcome {
        let mut g = self.inner.lock();
        if let Some(slot) = g
            .posted
            .iter_mut()
            .filter(|p| p.delivered.is_none() && M::admits(&p.m, &msg))
            .min_by_key(|p| p.ticket)
        {
            slot.delivered = Some(msg);
            drop(g);
            self.cond.notify_all();
            return PushOutcome::Matched;
        }
        g.unexpected.push_back(msg);
        PushOutcome::Queued
    }

    /// Abort: wake every blocked receiver with a panic.
    pub fn poison(&self) {
        self.inner.lock().poisoned = true;
        self.cond.notify_all();
    }

    /// Has the world been poisoned?
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    fn panic_poisoned() -> ! {
        // Typed so world drivers can report "a peer died" as a value
        // instead of tearing the caller down.
        BeffError::PeerFailed.raise()
    }

    /// Blocking receive of the first message matching `m` (unexpected
    /// arrivals first, in arrival order, which preserves per-sender
    /// ordering). Used in real mode; sim mode drives the nonblocking
    /// pieces below under the token scheduler.
    ///
    /// Panics if the world is poisoned (another actor died), so a
    /// failed run aborts instead of deadlocking.
    pub fn recv(&self, m: M::Filter) -> M {
        let mut g = self.inner.lock();
        if let Some(env) = g.take_unexpected(m) {
            return env;
        }
        if g.poisoned {
            Self::panic_poisoned();
        }
        let ticket = g.post(m);
        loop {
            self.cond.wait(&mut g);
            if g.posted.iter().any(|p| p.ticket == ticket && p.delivered.is_some()) {
                return g.remove_slot(ticket).expect("delivery just observed");
            }
            if g.poisoned {
                g.remove_slot(ticket);
                Self::panic_poisoned();
            }
        }
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout` (used by
    /// deadlock-detecting tests; real mode only). Returns `None` on
    /// timeout or poison.
    pub fn recv_timeout(&self, m: M::Filter, timeout: Duration) -> Option<M> {
        // beff-analyze: allow(wall-clock): real-mode-only API; sim worlds never call this
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.lock();
        if let Some(env) = g.take_unexpected(m) {
            return Some(env);
        }
        if g.poisoned {
            return None;
        }
        let ticket = g.post(m);
        loop {
            // beff-analyze: allow(taint): real-mode-only API (see the wall-clock waiver above); sim worlds never block on a deadline
            let timed_out = self.cond.wait_until(&mut g, deadline).timed_out();
            // Check the slot even on timeout: a push may have completed
            // the match as the deadline expired, and that message must
            // not be lost.
            if g.posted.iter().any(|p| p.ticket == ticket && p.delivered.is_some()) {
                return g.remove_slot(ticket);
            }
            if g.poisoned || timed_out {
                g.remove_slot(ticket);
                return None;
            }
        }
    }

    // ----- nonblocking pieces for the sim-mode token scheduler ----------

    /// Take a matching message from the unexpected queue, if any.
    pub fn try_recv(&self, m: M::Filter) -> Option<M> {
        self.inner.lock().take_unexpected(m)
    }

    /// Post a receive and return its ticket. The caller must have just
    /// tried [`try_recv`](Self::try_recv) (the non-overtaking argument
    /// relies on the unexpected queue holding no match at post time).
    pub fn post(&self, m: M::Filter) -> u64 {
        self.inner.lock().post(m)
    }

    /// Remove the posted slot for `ticket`, returning the delivered
    /// message if a push completed it.
    pub fn take_delivered(&self, ticket: u64) -> Option<M> {
        self.inner.lock().remove_slot(ticket)
    }

    // ----- probes / diagnostics -----------------------------------------

    /// Nonblocking probe: does an *unclaimed* matching message exist?
    /// (Messages already delivered to a posted receive are spoken for.)
    pub fn probe(&self, m: M::Filter) -> bool {
        self.inner.lock().unexpected.iter().any(|e| M::admits(&m, e))
    }

    /// Number of messages held (unexpected + delivered-but-untaken).
    pub fn len(&self) -> usize {
        let g = self.inner.lock();
        g.unexpected.len() + g.posted.iter().filter(|p| p.delivered.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal non-MPI message: matched on an exact channel id and
    /// an optional kind wildcard.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Note {
        chan: u32,
        kind: u32,
        body: u64,
    }

    #[derive(Debug, Clone, Copy)]
    struct NoteFilter {
        chan: u32,
        kind: Option<u32>,
    }

    impl Message for Note {
        type Filter = NoteFilter;
        fn admits(f: &NoteFilter, n: &Note) -> bool {
            n.chan == f.chan && f.kind.is_none_or(|k| k == n.kind)
        }
    }

    fn note(chan: u32, kind: u32, body: u64) -> Note {
        Note { chan, kind, body }
    }

    #[test]
    fn matches_by_filter_fields() {
        let p: Port<Note> = Port::new();
        assert_eq!(p.push(note(0, 1, 10)), PushOutcome::Queued);
        assert_eq!(p.push(note(0, 2, 20)), PushOutcome::Queued);
        let n = p.recv(NoteFilter { chan: 0, kind: Some(2) });
        assert_eq!(n.body, 20);
        let n = p.recv(NoteFilter { chan: 0, kind: Some(1) });
        assert_eq!(n.body, 10);
        assert!(p.is_empty());
    }

    #[test]
    fn wildcard_takes_first_arrival() {
        let p: Port<Note> = Port::new();
        p.push(note(0, 3, 7));
        p.push(note(0, 1, 8));
        let n = p.recv(NoteFilter { chan: 0, kind: None });
        assert_eq!(n.kind, 3);
    }

    #[test]
    fn channel_isolation() {
        let p: Port<Note> = Port::new();
        p.push(note(1, 0, 5));
        assert!(!p.probe(NoteFilter { chan: 0, kind: None }));
        assert!(p.probe(NoteFilter { chan: 1, kind: None }));
    }

    #[test]
    fn oldest_posted_slot_wins() {
        let p: Port<Note> = Port::new();
        let t1 = p.post(NoteFilter { chan: 0, kind: None });
        let t2 = p.post(NoteFilter { chan: 0, kind: None });
        p.push(note(0, 4, 1));
        assert!(p.take_delivered(t1).is_some(), "first posted receive matches first");
        assert!(p.take_delivered(t2).is_none());
    }

    #[test]
    fn push_into_posted_slot_reports_matched_once() {
        let p: Port<Note> = Port::new();
        let ticket = p.post(NoteFilter { chan: 0, kind: Some(9) });
        assert_eq!(p.push(note(0, 9, 1)), PushOutcome::Matched);
        // a second matching push must NOT land in the filled slot
        assert_eq!(p.push(note(0, 9, 2)), PushOutcome::Queued);
        assert_eq!(p.take_delivered(ticket).map(|n| n.body), Some(1));
    }

    #[test]
    fn cancelled_post_leaves_no_slot() {
        let p: Port<Note> = Port::new();
        let ticket = p.post(NoteFilter { chan: 0, kind: None });
        assert!(p.take_delivered(ticket).is_none()); // removes the slot
        assert_eq!(p.push(note(0, 0, 1)), PushOutcome::Queued);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn poison_wakes_blocked_receiver_with_panic() {
        use std::sync::Arc;
        let p: Arc<Port<Note>> = Arc::new(Port::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p2.recv(NoteFilter { chan: 0, kind: None });
            }));
            r.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        p.poison();
        assert!(h.join().unwrap(), "receiver must panic on poison");
    }

    /// The two-queue structure must be observationally equivalent to
    /// the naive model: one linear list scanned per receive. Random
    /// push/recv interleavings drive both; every receive must return
    /// the same message. (The MPI-typed twin of this property lives in
    /// beff-mpi's property suite; this one pins the generic core.)
    #[test]
    fn two_queue_equals_linear_scan_model() {
        use crate::rng::Rng64;

        for case in 0..64u64 {
            let mut rng = Rng64::new(0x9A17_BEEF ^ case);
            let p: Port<Note> = Port::new();
            let mut model: Vec<Note> = Vec::new();
            let mut seq = 0u64;
            for _ in 0..200 {
                if rng.below(3) < 2 || model.is_empty() {
                    let n = note(rng.below(2) as u32, rng.below(3) as u32, seq);
                    seq += 1;
                    p.push(n);
                    model.push(n);
                } else {
                    let f = NoteFilter {
                        chan: rng.below(2) as u32,
                        kind: if rng.below(2) == 0 { None } else { Some(rng.below(3) as u32) },
                    };
                    let got = p.try_recv(f);
                    let want = model
                        .iter()
                        .position(|n| Note::admits(&f, n))
                        .map(|i| model.remove(i));
                    assert_eq!(got, want, "case {case}: port diverged from linear model");
                }
            }
            assert_eq!(p.len(), model.len(), "case {case}: residue count diverged");
        }
    }
}
