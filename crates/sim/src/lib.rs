//! # beff-sim
//!
//! The workload-agnostic deterministic-simulation substrate under the
//! b_eff stack. Everything in this crate is *mechanism*, not policy:
//! it knows nothing about MPI ranks, message envelopes, network
//! topologies, or filesystems. Those are personalities layered on top
//! (`beff-mpi`, `beff-netsim`, `beff-pfs`).
//!
//! The pieces, bottom-up:
//!
//! - [`units`] / [`clock`] — virtual seconds and the `Clock` trait with
//!   its simulated ([`VClock`]) and wall-clock ([`RealClock`]) twins.
//! - [`rng`] — the one deterministic RNG ([`Rng64`], xoshiro256**) the
//!   whole workspace shares; `beff-check` and the fault planner seed
//!   from it.
//! - [`resource`] / [`link`] — next-free-time reservation with optional
//!   fair-share contention, and the priced link with fault windows.
//! - [`error`] — typed simulation faults ([`BeffError`]) raised as
//!   panics and caught at actor/world boundaries.
//! - [`sched`] — the round-robin token scheduler ([`SimScheduler`])
//!   with its two interchangeable mechanisms (parked threads, x86_64
//!   fibers) and the [`SchedAudit`] token-accounting invariant.
//! - [`port`] — the two-queue matching mailbox generalized to typed
//!   [`Port`]s over any [`Message`] type; MPI's rank mailbox is one
//!   instantiation.
//! - [`actors`] — a minimal actor runtime ([`try_run_actors`]) that
//!   runs `n` closures under the token scheduler with typed-fault
//!   isolation, for workloads that don't want the MPI world machinery.
//! - [`pool`] — the workspace's one worker pool ([`Workers`],
//!   [`map_ordered`]): deterministic submission-ordered fan-out of
//!   share-nothing jobs over `BEFF_WORKERS` OS threads.
//! - [`shard`] — conservative parallel discrete-event execution
//!   ([`try_run_sharded`]): the actor world split into per-worker
//!   shards with virtual-time epoch barriers and lookahead-validated
//!   cross-shard delivery, bit-identical at every worker count.
//!
//! Determinism contract: with a fixed program, every run schedules
//! actors in the same total order and advances virtual time through
//! the same float operations, so results replay byte-identically.
//! `beff-analyze` machine-enforces the layering (only this crate may
//! contain fiber/context-switch unsafe code; `beff-mpi` may not reach
//! simulation internals through `beff-netsim`).

pub mod actors;
pub mod clock;
pub mod error;
#[cfg(target_arch = "x86_64")]
pub mod fiber;
pub mod link;
pub mod pool;
pub mod port;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod units;

pub use actors::{run_actors, try_run_actors, ActorCtx, ActorId};
pub use clock::{Clock, RealClock, VClock};
pub use error::{silence_fault_panics, BeffError};
pub use link::{Degrade, Link};
pub use pool::{map_ordered, Workers};
pub use port::{Message, Port, PushOutcome};
pub use shard::{try_run_sharded, ShardAudit, ShardCtx, ShardMap, Timed};
pub use resource::Resource;
pub use rng::Rng64;
pub use sched::{SchedAudit, SimScheduler};
pub use units::{Secs, GB, KB, MB};
