//! Units and formatting helpers shared by the whole stack.
//!
//! Virtual time is plain `f64` seconds ([`Secs`]); sizes are bytes.
//! The paper reports bandwidths in MByte/s (decimal mega), but message
//! and chunk sizes in binary units (1 kB = 1024 B in the b_eff sources),
//! so we keep both conventions explicit.

/// Virtual (or real) time in seconds.
pub type Secs = f64;

/// One kilobyte (binary, as used for the b_eff message-size ladder).
pub const KB: u64 = 1024;
/// One megabyte (binary).
pub const MB: u64 = 1024 * 1024;
/// One gigabyte (binary).
pub const GB: u64 = 1024 * 1024 * 1024;

/// Convert a byte count and a duration into MByte/s (binary MB, matching
/// the b_eff reference implementation's reporting).
#[inline]
pub fn mbps(bytes: u64, secs: Secs) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / MB as f64 / secs
}

/// Inverse of a bandwidth given in MByte/s: seconds per byte.
#[inline]
pub fn byte_time(mbytes_per_s: f64) -> Secs {
    1.0 / (mbytes_per_s * MB as f64)
}

/// Format a byte count the way the paper's tables do (1 kB, 32 kB, 1 MB,
/// "+8B" suffixes are handled by the caller).
pub fn fmt_bytes(b: u64) -> String {
    if b >= MB && b.is_multiple_of(MB) {
        format!("{} MB", b / MB)
    } else if b >= KB && b.is_multiple_of(KB) {
        format!("{} kB", b / KB)
    } else {
        format!("{} B", b)
    }
}

/// Format a bandwidth in MByte/s with a sensible precision.
pub fn fmt_mbps(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_basic() {
        assert_eq!(mbps(MB, 1.0), 1.0);
        assert_eq!(mbps(10 * MB, 2.0), 5.0);
    }

    #[test]
    fn mbps_zero_time_is_zero() {
        assert_eq!(mbps(MB, 0.0), 0.0);
        assert_eq!(mbps(MB, -1.0), 0.0);
    }

    #[test]
    fn byte_time_roundtrip() {
        let bt = byte_time(100.0); // 100 MB/s
        let t = bt * (100 * MB) as f64;
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_bytes_paper_style() {
        assert_eq!(fmt_bytes(1024), "1 kB");
        assert_eq!(fmt_bytes(32 * KB), "32 kB");
        assert_eq!(fmt_bytes(MB), "1 MB");
        assert_eq!(fmt_bytes(1), "1 B");
        assert_eq!(fmt_bytes(1025), "1025 B");
    }

    #[test]
    fn fmt_mbps_precision() {
        assert_eq!(fmt_mbps(330.4), "330");
        assert_eq!(fmt_mbps(39.25), "39.2");
        assert_eq!(fmt_mbps(1.234), "1.23");
    }
}
