//! A network link: latency + per-byte occupancy over a [`Resource`].

use crate::resource::Resource;
use crate::units::Secs;
use beff_sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fault-injected bandwidth degradation window: while the occupancy
/// start time falls in `[from, until)`, the link's per-byte cost is
/// multiplied by `slowdown`. Installed by the fault layer
/// (`beff-faults`); overlapping windows multiply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degrade {
    pub from: Secs,
    pub until: Secs,
    pub slowdown: f64,
}

/// One serially-shared wire/port/bus of the interconnect.
#[derive(Debug)]
pub struct Link {
    /// Time for the message head to appear at the far side.
    pub latency: Secs,
    /// Seconds per byte of occupancy (1 / bandwidth).
    pub byte_time: Secs,
    res: Resource,
    /// Traffic counters (diagnostics): total bytes and messages.
    bytes: AtomicU64,
    messages: AtomicU64,
    /// Fault state. `degraded` mirrors "the window list is non-empty"
    /// so the hot path pays one relaxed load — and, crucially, performs
    /// *bitwise-identical* float arithmetic to the pre-fault code when
    /// no fault is installed (no multiply by 1.0 sneaks in).
    faults: Mutex<Vec<Degrade>>,
    degraded: AtomicBool,
    dead: AtomicBool,
}

impl Link {
    pub fn new(latency: Secs, byte_time: Secs) -> Self {
        Self::with_contention(latency, byte_time, 1.0)
    }

    /// A link in fair-share contention mode: a message that has to
    /// queue behind pending traffic occupies `factor` times its serial
    /// byte time (see [`Resource::with_contention`]). `1.0` is plain
    /// FIFO packing.
    pub fn with_contention(latency: Secs, byte_time: Secs, factor: f64) -> Self {
        Self {
            latency,
            byte_time,
            res: Resource::with_contention(factor),
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            faults: Mutex::new(Vec::new()),
            degraded: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }

    /// Push `bytes` through the link, with the head arriving at the link
    /// entrance at `head`. Returns `(start, finish)` of the occupancy —
    /// `start` is when the stream begins flowing on this link (so a
    /// downstream link may begin then), `finish` is when the last byte
    /// has crossed (queued messages on a contended link finish at the
    /// fair-share-degraded rate).
    #[inline]
    pub fn traverse(&self, head: Secs, bytes: u64) -> (Secs, Secs) {
        let mut occ = bytes as f64 * self.byte_time;
        if self.degraded.load(Ordering::Relaxed) {
            occ *= self.slowdown_at(head + self.latency);
        }
        let span = self.res.reserve_span(head + self.latency, occ);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        span
    }

    /// Product of the slowdowns of every installed window covering
    /// time `t` (1.0 when none does).
    fn slowdown_at(&self, t: Secs) -> f64 {
        let ws = self.faults.lock();
        ws.iter()
            .filter(|w| w.from <= t && t < w.until)
            .map(|w| w.slowdown)
            .product::<f64>()
            .max(1.0)
    }

    /// Install degradation windows (replacing any previous set). The
    /// windows are in this run's local virtual time; the fault layer
    /// handles epoch shifting.
    pub fn set_fault_windows(&self, windows: Vec<Degrade>) {
        let degraded = !windows.is_empty();
        *self.faults.lock() = windows;
        self.degraded.store(degraded, Ordering::Relaxed);
    }

    /// Mark the link permanently failed. The link still *prices*
    /// traffic (`traverse` works) — deciding what a dead route means is
    /// the wire layer's job (retransmit, then raise `LinkDead`).
    pub fn set_dead(&self, dead: bool) {
        self.dead.store(dead, Ordering::Relaxed);
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Remove every installed fault (degradation windows and the dead
    /// flag).
    pub fn clear_faults(&self) {
        self.faults.lock().clear();
        self.degraded.store(false, Ordering::Relaxed);
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Next-free time (diagnostics / tests).
    pub fn horizon(&self) -> Secs {
        self.res.horizon()
    }

    /// Total bytes that have crossed this link (diagnostics).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages that have crossed this link (diagnostics).
    pub fn messages_carried(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Reset occupancy and counters to idle. Installed faults are
    /// *kept*: they belong to the fault layer, which re-installs or
    /// clears them around each run (`FaultSession::install` /
    /// `clear_faults`), while `reset` belongs to the world-reuse path
    /// that recycles a net between runs.
    pub fn reset(&self) {
        self.res.reset();
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_traverse_costs_latency_plus_bytes() {
        let l = Link::new(1e-6, 1e-9); // 1 us, 1 GB/s
        let (start, finish) = l.traverse(0.0, 1000);
        assert!((start - 1e-6).abs() < 1e-15);
        assert!((finish - (1e-6 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn contended_messages_serialize() {
        let l = Link::new(0.0, 1e-6); // 1 MB/s, zero latency
        let (_, f1) = l.traverse(0.0, 100);
        let (s2, f2) = l.traverse(0.0, 100);
        assert!((f1 - 1e-4).abs() < 1e-12);
        assert!((s2 - 1e-4).abs() < 1e-12);
        assert!((f2 - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let l = Link::new(5e-6, 1e-9);
        let (s, f) = l.traverse(1.0, 0);
        assert_eq!(s, 1.0 + 5e-6);
        assert_eq!(s, f);
    }

    #[test]
    fn contended_link_messages_pay_the_fair_share_factor() {
        let l = Link::with_contention(0.0, 1e-6, 2.0); // 1 MB/s, factor 2
        let (_, f1) = l.traverse(0.0, 100);
        let (s2, f2) = l.traverse(0.0, 100);
        assert!((f1 - 1e-4).abs() < 1e-12);
        assert!((s2 - 1e-4).abs() < 1e-12);
        // queued message pays 2x its serial occupancy
        assert!((f2 - 3e-4).abs() < 1e-12);
    }

    #[test]
    fn degrade_window_scales_occupancy_only_inside_the_window() {
        let l = Link::new(0.0, 1e-6); // 1 MB/s
        l.set_fault_windows(vec![Degrade { from: 1.0, until: 2.0, slowdown: 4.0 }]);
        let (_, f) = l.traverse(0.0, 100); // outside the window
        assert!((f - 1e-4).abs() < 1e-12);
        l.reset();
        let (_, f) = l.traverse(1.5, 100); // inside: 4x occupancy
        assert!((f - (1.5 + 4e-4)).abs() < 1e-12);
        l.clear_faults();
        l.reset();
        let (_, f) = l.traverse(1.5, 100);
        assert!((f - (1.5 + 1e-4)).abs() < 1e-12);
    }

    #[test]
    fn overlapping_windows_multiply() {
        let l = Link::new(0.0, 1e-6);
        l.set_fault_windows(vec![
            Degrade { from: 0.0, until: 10.0, slowdown: 2.0 },
            Degrade { from: 0.0, until: 10.0, slowdown: 3.0 },
        ]);
        let (_, f) = l.traverse(0.0, 100);
        assert!((f - 6e-4).abs() < 1e-12);
    }

    #[test]
    fn dead_flag_round_trips_and_clears() {
        let l = Link::new(0.0, 1e-9);
        assert!(!l.is_dead());
        l.set_dead(true);
        assert!(l.is_dead());
        l.clear_faults();
        assert!(!l.is_dead());
    }

    #[test]
    fn reset_keeps_installed_faults() {
        let l = Link::new(0.0, 1e-6);
        l.set_fault_windows(vec![Degrade { from: 0.0, until: 10.0, slowdown: 2.0 }]);
        l.set_dead(true);
        l.reset();
        assert!(l.is_dead());
        let (_, f) = l.traverse(0.0, 100);
        assert!((f - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_accumulate_and_reset() {
        let l = Link::new(0.0, 1e-9);
        l.traverse(0.0, 100);
        l.traverse(0.0, 200);
        assert_eq!(l.bytes_carried(), 300);
        assert_eq!(l.messages_carried(), 2);
        l.reset();
        assert_eq!(l.bytes_carried(), 0);
        assert_eq!(l.messages_carried(), 0);
    }
}
