//! Criterion micro-benchmarks of the substrates: how fast the
//! *simulator itself* runs (host time per virtual event), which is what
//! bounds how large a machine the harness can model.

use beff_core::beff::{run_beff, BeffConfig, MeasureSchedule};
use beff_machines::t3e;
use beff_mpi::World;
use beff_mpiio::FileView;
use beff_netsim::{MachineNet, NetParams, RouteCache, Topology, KB, MB};
use beff_pfs::{stripe_split, DataRef, Pfs, PfsConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    let net = MachineNet::new(Topology::Torus3D { dims: [8, 8, 8] }, NetParams::default());
    let mut cache = RouteCache::new(net.topology().clone());
    let path: Vec<usize> = cache.path(0, 137).to_vec();
    let mut t = 0.0;
    g.bench_function("price_1mb_transfer", |b| {
        b.iter(|| {
            t += 1.0;
            black_box(net.price(&path, MB, t))
        })
    });
    g.bench_function("route_torus3d_uncached", |b| {
        let topo = net.topology();
        let mut buf = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % 512;
            topo.route_into(i, (i * 31) % 512, &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("route_cached", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.path(i, (i + 1) % 64).len())
        })
    });
    g.finish();
}

fn bench_mpi(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi");
    g.sample_size(10);
    g.bench_function("sim_world_1000_sendrecv_x4procs", |b| {
        let net = Arc::new(MachineNet::new(
            Topology::Crossbar { procs: 4 },
            NetParams::default(),
        ));
        b.iter(|| {
            let net = Arc::clone(&net);
            let out = World::sim(net).run(|comm| {
                let peer = comm.rank() ^ 1;
                let buf = [0u8; 64];
                let mut scratch = [0u8; 64];
                for _ in 0..1000 {
                    comm.payload_sendrecv(peer, 1, &buf, Some(peer), Some(1), &mut scratch);
                }
                comm.now()
            });
            black_box(out)
        })
    });
    g.bench_function("allreduce_x8procs", |b| {
        b.iter(|| {
            let out = World::real(8).run(|comm| {
                let mut acc = 0.0;
                for i in 0..50 {
                    acc += comm.allreduce_scalar(i as f64, beff_mpi::ReduceOp::Max);
                }
                acc
            });
            black_box(out)
        })
    });
    g.finish();
}

fn bench_pfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfs");
    g.bench_function("stripe_split_1mb_64k", |b| {
        b.iter(|| black_box(stripe_split(12345, MB, 64 * KB, 8)))
    });
    g.bench_function("write_pricing", |b| {
        b.iter_batched(
            || Pfs::new(PfsConfig::default()),
            |pfs| {
                let (f, mut t) = pfs.open("bench", 0.0);
                for i in 0..100u64 {
                    t = pfs.write(0, &f, i * 32 * KB, DataRef::Len(32 * KB), t);
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_mpiio(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpiio");
    let view = FileView::Strided { disp: 4096, block: 1024, stride: 16 * 1024 };
    g.bench_function("view_map_range_1mb_1k_chunks", |b| {
        b.iter(|| black_box(view.map_range(0, MB)))
    });
    g.finish();
}

fn bench_beff(c: &mut Criterion) {
    let mut g = c.benchmark_group("beff");
    g.sample_size(10);
    let machine = t3e();
    g.bench_function("beff_t3e_8procs_micro_schedule", |b| {
        let cfg = BeffConfig {
            schedule: MeasureSchedule { loop_start: 2, reps: 1, ..MeasureSchedule::quick() },
            ..BeffConfig::quick(machine.mem_per_proc).without_extras()
        };
        b.iter(|| {
            let out =
                World::sim_partition(machine.network(), 8).run(|comm| run_beff(comm, &cfg));
            black_box(out[0].beff)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_netsim, bench_mpi, bench_pfs, bench_mpiio, bench_beff);
criterion_main!(benches);
