//! # beff-bench
//!
//! Harness binaries that regenerate every table and figure of the
//! paper on the simulated machine models, plus Criterion micro-benches
//! of the substrates. This library holds the shared runner/CLI glue.
//!
//! Binaries (one per experiment, see DESIGN.md §4):
//! `table1`, `fig1_balance`, `table2_patterns`, `fig3_scaling`,
//! `fig4_detail`, `fig5_compare`, `ablation_termination`,
//! `ablation_twophase`, `ablation_cache`, `ablation_placement`.
//!
//! All binaries accept `--full` for paper-fidelity schedules (minutes
//! of runtime) and default to a scaled-down schedule that preserves the
//! shapes.

use beff_core::beff::{run_beff, BeffConfig};
use beff_core::beffio::{run_beff_io, BeffIoConfig, BeffIoResult};
use beff_core::BeffResult;
use beff_machines::Machine;
use beff_mpi::World;
use beff_mpiio::IoWorld;

/// Run b_eff on the first `procs` processors of a machine model.
pub fn run_beff_on(machine: &Machine, procs: usize, cfg: &BeffConfig) -> BeffResult {
    let net = machine.network();
    let mut results = World::sim_partition(net, procs).run(|c| run_beff(c, cfg));
    results.swap_remove(0)
}

/// Run b_eff_io on a partition of a machine model (fresh filesystem).
pub fn run_beffio_on(machine: &Machine, procs: usize, cfg: &BeffIoConfig) -> BeffIoResult {
    let net = machine.network();
    let pfs = machine
        .filesystem()
        .unwrap_or_else(|| panic!("{} has no I/O model", machine.key));
    let io = IoWorld::sim(pfs);
    let mut results = World::sim_partition(net, procs).run(|c| run_beff_io(c, &io, cfg));
    results.swap_remove(0)
}

/// CLI: `--full` selects the paper-fidelity schedule.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// CLI: an arbitrary flag.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The b_eff schedule for the selected mode.
pub fn beff_cfg(machine: &Machine) -> BeffConfig {
    if full_mode() {
        BeffConfig::paper(machine.mem_per_proc)
    } else {
        BeffConfig::quick(machine.mem_per_proc)
    }
}

/// The b_eff_io schedule for the selected mode.
pub fn beffio_cfg(machine: &Machine) -> BeffIoConfig {
    if full_mode() {
        BeffIoConfig::paper(machine.mem_per_node)
    } else {
        // a scaled-down T: same pattern table, seconds instead of
        // minutes of virtual time
        BeffIoConfig::quick(machine.mem_per_node).with_t(30.0)
    }
}

/// Format "measured (paper X)" comparison cells.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:>8.0} ({paper:>6.0})")
}
