//! # beff-bench
//!
//! Harness binaries that regenerate every table and figure of the
//! paper on the simulated machine models, plus Criterion micro-benches
//! of the substrates. This library holds the shared runner/CLI glue.
//!
//! Binaries (one per experiment, see DESIGN.md §4):
//! `table1`, `fig1_balance`, `table2_patterns`, `fig3_scaling`,
//! `fig4_detail`, `fig5_compare`, `ablation_termination`,
//! `ablation_twophase`, `ablation_cache`, `ablation_placement`.
//!
//! All binaries accept `--full` for paper-fidelity schedules (minutes
//! of runtime) and default to a scaled-down schedule that preserves the
//! shapes.

pub mod calibration;
pub mod chaos;
pub mod resilient;

use beff_core::beff::{run_beff, BeffConfig};
use beff_core::beffio::{run_beff_io, BeffIoConfig, BeffIoResult};
use beff_core::BeffResult;
use beff_machines::Machine;
use beff_mpi::{Workers, World, WorldSession};
use beff_mpiio::IoWorld;
use beff_netsim::MachineNet;
use std::sync::Arc;

/// A resident simulated partition: one machine network plus one
/// [`WorldSession`] over its first `procs` processors, reused across
/// any number of benchmark runs.
///
/// Sweeps that probe the same partition repeatedly (scaling figures,
/// ablation pairs, the perf harness) previously paid a full world
/// spawn per measurement configuration; a runner pays it once. Between
/// runs the link occupancy is reset (measurements start from an idle
/// network) while the memoized route table — topology-derived, so
/// run-independent — is kept warm. Results are bit-identical to
/// fresh-world runs; a test in `tests/` pins that.
pub struct PartitionRunner {
    machine: Machine,
    net: Arc<MachineNet>,
    procs: usize,
    session: WorldSession,
}

impl PartitionRunner {
    pub fn new(machine: &Machine, procs: usize) -> Self {
        let net = machine.network();
        let session = World::sim_partition(Arc::clone(&net), procs).session();
        Self { machine: machine.clone(), net, procs, session }
    }

    /// Partition size (ranks).
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Run the full b_eff schedule on the resident partition.
    pub fn beff(&self, cfg: &BeffConfig) -> BeffResult {
        self.net.reset();
        let cfg = cfg.clone();
        let mut results = self.session.run(move |c| run_beff(c, &cfg));
        results.swap_remove(0)
    }

    /// Run several independent b_eff schedules batch-parallel, one
    /// machine replica per job on up to `workers` threads (see
    /// [`World::run_batch`]). Byte-identical to calling
    /// [`beff`](Self::beff) serially per config, at every worker count
    /// — a replica is indistinguishable from the shared net after the
    /// reset that `beff` performs.
    pub fn beff_batch(&self, workers: Workers, cfgs: &[BeffConfig]) -> Vec<BeffResult> {
        let world =
            World::sim_partition(Arc::clone(&self.net), self.procs).with_workers(workers);
        let per_job = world.run_batch(cfgs.len(), |job, c| run_beff(c, &cfgs[job]));
        per_job.into_iter().map(|mut ranks| ranks.swap_remove(0)).collect()
    }

    /// Run the full b_eff_io schedule on the resident partition, with a
    /// fresh filesystem (b_eff_io semantics: every run starts cold).
    pub fn beffio(&self, cfg: &BeffIoConfig) -> BeffIoResult {
        self.net.reset();
        let pfs = self
            .machine
            .filesystem()
            .unwrap_or_else(|| panic!("{} has no I/O model", self.machine.key));
        let io = IoWorld::sim(pfs);
        let cfg = cfg.clone();
        let mut results = self.session.run(move |c| run_beff_io(c, &io, &cfg));
        results.swap_remove(0)
    }
}

/// Run b_eff on the first `procs` processors of a machine model
/// (one-shot; sweeps should hold a [`PartitionRunner`] instead).
pub fn run_beff_on(machine: &Machine, procs: usize, cfg: &BeffConfig) -> BeffResult {
    PartitionRunner::new(machine, procs).beff(cfg)
}

/// Run b_eff_io on a partition of a machine model (one-shot, fresh
/// filesystem; sweeps should hold a [`PartitionRunner`] instead).
pub fn run_beffio_on(machine: &Machine, procs: usize, cfg: &BeffIoConfig) -> BeffIoResult {
    PartitionRunner::new(machine, procs).beffio(cfg)
}

/// CLI: `--full` selects the paper-fidelity schedule.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// CLI: an arbitrary flag.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The b_eff schedule for the selected mode.
pub fn beff_cfg(machine: &Machine) -> BeffConfig {
    if full_mode() {
        BeffConfig::paper(machine.mem_per_proc)
    } else {
        BeffConfig::quick(machine.mem_per_proc)
    }
}

/// The b_eff_io schedule for the selected mode.
pub fn beffio_cfg(machine: &Machine) -> BeffIoConfig {
    if full_mode() {
        BeffIoConfig::paper(machine.mem_per_node)
    } else {
        // a scaled-down T: same pattern table, seconds instead of
        // minutes of virtual time
        BeffIoConfig::quick(machine.mem_per_node).with_t(30.0)
    }
}

/// A scaled-down b_eff_io schedule with an explicit scheduled time T
/// (the perf harness uses small T values so timing runs stay short).
pub fn beffio_cfg_quick_t(machine: &Machine, t: f64) -> BeffIoConfig {
    BeffIoConfig::quick(machine.mem_per_node).with_t(t)
}

/// Format "measured (paper X)" comparison cells.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:>8.0} ({paper:>6.0})")
}
