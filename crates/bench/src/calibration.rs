//! Calibration of the machine-model constants against the paper.
//!
//! The paper's Table 1 rows, Fig. 1 balance factors and the per-machine
//! ping-pong / L_max targets form a machine-readable target set
//! ([`targets`]). [`check`] replays every row on the current catalog
//! constants and reports per-metric residuals plus the paper's
//! qualitative *shape* claims (placement effect, SX-4 per-proc fall,
//! L_max); [`fit_group`] runs a coordinate descent over a machine
//! group's [`NetParams`] to minimize the log-residuals.
//!
//! The residual gate: every **averaged** metric (b_eff, b_eff/proc,
//! ping-pong where the paper prints one, ring/proc at L_max) must lie
//! within ±`tolerance` (default 25 %) of the paper value, and every
//! shape claim must hold exactly. `scripts/verify.sh` enforces this via
//! `calibrate -- --check`.

use crate::run_beff_on;
use beff_core::beff::BeffConfig;
use beff_core::BeffResult;
use beff_json::{Json, ToJson};
use beff_machines::{by_key, table1_paper, Table1Row};
use beff_netsim::{NetParams, MB};

/// The residual gate's default tolerance: ±25 % around the paper value.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// The calibration target set: the paper's Table 1 (which also carries
/// the ping-pong and L_max columns; the Fig. 1 balance factor is
/// `beff / rmax` and therefore gated through `beff`).
pub fn targets() -> Vec<Table1Row> {
    table1_paper()
}

/// One measured-vs-paper comparison.
#[derive(Debug, Clone)]
pub struct MetricResidual {
    pub metric: &'static str,
    pub measured: f64,
    pub paper: f64,
    /// Gated metrics must pass the tolerance; non-gated ones are
    /// reported for information (the paper's "at L_max" columns are
    /// snapshots of a single size, noisier than the averaged metrics).
    pub gated: bool,
}

impl MetricResidual {
    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }

    pub fn within(&self, tolerance: f64) -> bool {
        let rel = (self.measured - self.paper).abs() / self.paper;
        rel <= tolerance
    }
}

impl ToJson for MetricResidual {
    fn to_json(&self) -> Json {
        Json::object()
            .field("metric", self.metric)
            .field("measured", &self.measured)
            .field("paper", &self.paper)
            .field("ratio", &self.ratio())
            .field("gated", &self.gated)
            .build()
    }
}

/// All residuals of one Table 1 row.
#[derive(Debug, Clone)]
pub struct RowReport {
    pub machine_key: &'static str,
    pub procs: usize,
    pub lmax_mb_measured: u64,
    pub lmax_mb_paper: u64,
    pub metrics: Vec<MetricResidual>,
}

impl RowReport {
    pub fn pass(&self, tolerance: f64) -> bool {
        self.lmax_mb_measured == self.lmax_mb_paper
            && self.metrics.iter().filter(|m| m.gated).all(|m| m.within(tolerance))
    }
}

impl ToJson for RowReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("machine_key", self.machine_key)
            .field("procs", &self.procs)
            .field("lmax_mb_measured", &self.lmax_mb_measured)
            .field("lmax_mb_paper", &self.lmax_mb_paper)
            .field("metrics", &self.metrics)
            .build()
    }
}

/// One qualitative claim of the paper that must hold exactly.
#[derive(Debug, Clone)]
pub struct ShapeClaim {
    pub name: &'static str,
    pub detail: String,
    pub pass: bool,
}

impl ToJson for ShapeClaim {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", self.name)
            .field("detail", self.detail.as_str())
            .field("pass", &self.pass)
            .build()
    }
}

/// The full calibration report (written to `results/calibration.json`).
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    pub tolerance: f64,
    pub rows: Vec<RowReport>,
    pub shapes: Vec<ShapeClaim>,
}

impl CalibrationReport {
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass(self.tolerance)) && self.shapes.iter().all(|s| s.pass)
    }

    /// Compact gate summary for embedding in other reports
    /// (`BENCH_SIM.json` carries this next to the perf sweeps).
    pub fn summary(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::object()
                    .field("machine_key", r.machine_key)
                    .field("procs", &r.procs)
                    .field("pass", &r.pass(self.tolerance))
                    .build()
            })
            .collect();
        Json::object()
            .field("tolerance", &self.tolerance)
            .field("pass", &self.pass())
            .field("breaches", &self.breaches())
            .raw("rows", Json::array(rows.iter()))
            .build()
    }

    /// Count of gated metric breaches (for the summary line).
    pub fn breaches(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.metrics.iter())
            .filter(|m| m.gated && !m.within(self.tolerance))
            .count()
            + self.rows.iter().filter(|r| r.lmax_mb_measured != r.lmax_mb_paper).count()
            + self.shapes.iter().filter(|s| !s.pass).count()
    }
}

impl ToJson for CalibrationReport {
    fn to_json(&self) -> Json {
        let constants: Vec<Json> = beff_machines::catalog()
            .iter()
            .map(|m| {
                Json::object()
                    .field("machine_key", m.key)
                    .field("net", &m.net)
                    .build()
            })
            .collect();
        Json::object()
            .field("schema", "beff-calibration/1")
            .field("tolerance", &self.tolerance)
            .field("pass", &self.pass())
            .field("breaches", &self.breaches())
            .field("rows", &self.rows)
            .field("shapes", &self.shapes)
            .raw("constants", Json::array(constants.iter()))
            .build()
    }
}

/// Run the quick b_eff schedule for one target row, optionally with the
/// machine's network constants overridden (the fitter's evaluation
/// path; `None` uses the catalog constants).
pub fn measure(key: &str, procs: usize, net: Option<&NetParams>) -> BeffResult {
    let mut machine = by_key(key).expect("calibration target in catalog");
    if let Some(p) = net {
        machine.net = p.clone();
    }
    let machine = machine.sized_for(procs);
    let cfg = BeffConfig::quick(machine.mem_per_proc);
    run_beff_on(&machine, procs, &cfg)
}

fn row_report(row: &Table1Row, r: &BeffResult) -> RowReport {
    let mut metrics = vec![
        MetricResidual { metric: "beff", measured: r.beff, paper: row.beff, gated: true },
        MetricResidual {
            metric: "beff_per_proc",
            measured: r.beff_per_proc,
            paper: row.beff_per_proc,
            gated: true,
        },
        MetricResidual {
            metric: "ring_per_proc_at_lmax",
            measured: r.ring_per_proc_at_lmax,
            paper: row.ring_per_proc_at_lmax,
            gated: true,
        },
        MetricResidual {
            metric: "beff_at_lmax",
            measured: r.beff_at_lmax,
            paper: row.beff_at_lmax,
            gated: false,
        },
        MetricResidual {
            metric: "per_proc_at_lmax",
            measured: r.beff_at_lmax / row.procs as f64,
            paper: row.per_proc_at_lmax,
            gated: false,
        },
    ];
    if let Some(pp) = row.pingpong {
        metrics.push(MetricResidual {
            metric: "pingpong",
            measured: r.pingpong_mbps,
            paper: pp,
            gated: true,
        });
    }
    RowReport {
        machine_key: row.machine_key,
        procs: row.procs,
        lmax_mb_measured: r.lmax / MB,
        lmax_mb_paper: row.lmax_mb,
        metrics,
    }
}

fn find<'a>(
    rows: &'a [(Table1Row, BeffResult)],
    key: &str,
    procs: usize,
) -> &'a (Table1Row, BeffResult) {
    rows.iter()
        .find(|(t, _)| t.machine_key == key && t.procs == procs)
        .expect("shape claim row measured")
}

fn shape_claims(rows: &[(Table1Row, BeffResult)]) -> Vec<ShapeClaim> {
    let rr = &find(rows, "sr8000-rr", 24).1;
    let seq = &find(rows, "sr8000-seq", 24).1;
    let sx4_4 = &find(rows, "sx4", 4).1;
    let sx4_16 = &find(rows, "sx4", 16).1;
    vec![
        ShapeClaim {
            name: "sr8000_placement_ring",
            detail: format!(
                "sequential ring/proc at L_max {:.0} > round-robin {:.0} (the paper's \
                 headline placement effect)",
                seq.ring_per_proc_at_lmax, rr.ring_per_proc_at_lmax
            ),
            pass: seq.ring_per_proc_at_lmax > rr.ring_per_proc_at_lmax,
        },
        ShapeClaim {
            name: "sr8000_placement_beff",
            detail: format!(
                "sequential b_eff {:.0} > round-robin {:.0} at 24 procs",
                seq.beff, rr.beff
            ),
            pass: seq.beff > rr.beff,
        },
        ShapeClaim {
            name: "sx4_per_proc_falls",
            detail: format!(
                "SX-4 b_eff/proc falls with partition size: {:.0} at 16 < {:.0} at 4 \
                 (shared-memory-port contention)",
                sx4_16.beff_per_proc, sx4_4.beff_per_proc
            ),
            pass: sx4_16.beff_per_proc < sx4_4.beff_per_proc,
        },
    ]
}

/// Replay every target row on the current catalog constants and build
/// the calibration report.
///
/// Rows fan out over the `BEFF_WORKERS` pool: each measurement builds
/// its own machine model from catalog constants and shares nothing
/// with its siblings, so the report is byte-identical at every worker
/// count (the `parallel-parity` gate in `scripts/verify.sh` pins this
/// against the golden).
pub fn check(tolerance: f64) -> CalibrationReport {
    let measured: Vec<(Table1Row, BeffResult)> =
        beff_sim::map_ordered(beff_sim::Workers::from_env(), targets(), |_, row| {
            let r = measure(row.machine_key, row.procs, None);
            eprintln!("calibrate: measured {} x{}", row.machine_key, row.procs);
            (row, r)
        });
    let rows = measured.iter().map(|(t, r)| row_report(t, r)).collect();
    let shapes = shape_claims(&measured);
    CalibrationReport { tolerance, rows, shapes }
}

// ---------------------------------------------------------------------
// Fitting
// ---------------------------------------------------------------------

/// A tunable scalar of [`NetParams`] (multiplicative coordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    OSend,
    PortMbps,
    NodeMemMbps,
    HopMbps,
    NicMbps,
    NicLatency,
    BackplaneMbps,
    Contention,
}

impl Knob {
    pub fn name(self) -> &'static str {
        match self {
            Knob::OSend => "o_send",
            Knob::PortMbps => "port.mbps",
            Knob::NodeMemMbps => "node_mem.mbps",
            Knob::HopMbps => "hop.mbps",
            Knob::NicMbps => "nic.mbps",
            Knob::NicLatency => "nic.latency",
            Knob::BackplaneMbps => "backplane.mbps",
            Knob::Contention => "contention",
        }
    }

    /// Scale the knob's coordinate by `scale` (contention is clamped to
    /// its legal domain ≥ 1.0; fitting a knob the machine lacks — e.g.
    /// the backplane on a machine without one — is a no-op).
    pub fn apply(self, params: &NetParams, scale: f64) -> NetParams {
        let mut p = params.clone();
        match self {
            Knob::OSend => {
                p.o_send *= scale;
                p.o_recv *= scale;
            }
            Knob::PortMbps => p.port.mbps *= scale,
            Knob::NodeMemMbps => p.node_mem.mbps *= scale,
            Knob::HopMbps => p.hop.mbps *= scale,
            Knob::NicMbps => p.nic.mbps *= scale,
            Knob::NicLatency => p.nic.latency *= scale,
            Knob::BackplaneMbps => {
                if let Some(bp) = &mut p.backplane {
                    bp.mbps *= scale;
                }
            }
            Knob::Contention => p.contention = (p.contention * scale).max(1.0),
        }
        p
    }
}

/// A set of machines that share one `NetParams` (e.g. the two SR 8000
/// placements share `base()`), the target rows they are fitted
/// against, and the knobs the fitter may turn.
pub struct FitGroup {
    pub name: &'static str,
    /// Machines sharing the constants; the first one's catalog params
    /// seed the descent.
    pub keys: &'static [&'static str],
    /// (machine_key, procs) target rows evaluated per candidate.
    pub rows: &'static [(&'static str, usize)],
    pub knobs: &'static [Knob],
}

/// The fit groups: one per distinct `NetParams` the calibration tunes.
/// SX-5 is omitted — it already sits within tolerance on all gated
/// metrics and touching it risks regression for no gain.
pub fn fit_groups() -> Vec<FitGroup> {
    vec![
        FitGroup {
            name: "t3e",
            keys: &["t3e"],
            // 256 is the worst residual; 2/24 anchor the overhead end.
            // 512 is verified by `check` but too slow to sit in the
            // descent's inner loop.
            rows: &[("t3e", 2), ("t3e", 24), ("t3e", 128), ("t3e", 256)],
            knobs: &[Knob::Contention, Knob::HopMbps, Knob::OSend],
        },
        FitGroup {
            name: "sr8000",
            keys: &["sr8000-rr", "sr8000-seq"],
            rows: &[("sr8000-rr", 128), ("sr8000-rr", 24), ("sr8000-seq", 24)],
            knobs: &[
                Knob::NicMbps,
                Knob::Contention,
                Knob::NodeMemMbps,
                Knob::PortMbps,
                Knob::OSend,
            ],
        },
        FitGroup {
            name: "sr2201",
            keys: &["sr2201"],
            rows: &[("sr2201", 16)],
            knobs: &[Knob::OSend, Knob::PortMbps, Knob::NodeMemMbps],
        },
        FitGroup {
            name: "sx4",
            keys: &["sx4"],
            rows: &[("sx4", 4), ("sx4", 8), ("sx4", 16)],
            knobs: &[Knob::BackplaneMbps, Knob::Contention, Knob::OSend, Knob::NodeMemMbps],
        },
        FitGroup {
            name: "hpv",
            keys: &["hpv"],
            rows: &[("hpv", 7)],
            knobs: &[Knob::Contention, Knob::BackplaneMbps, Knob::OSend],
        },
        FitGroup {
            // port/node_mem stay locked: they set the (already exact)
            // ping-pong, which the backplane does not touch.
            name: "sv1",
            keys: &["sv1"],
            rows: &[("sv1", 15)],
            knobs: &[Knob::BackplaneMbps, Knob::Contention, Knob::OSend],
        },
    ]
}

/// Sum of squared log-ratios of one candidate over the group's rows.
/// Gated metrics carry full weight; the informational at-L_max columns
/// a small one (they keep the curve shape honest without letting a
/// noisy single-size snapshot fight the averaged metrics).
pub fn objective(group: &FitGroup, params: &NetParams) -> f64 {
    let all = targets();
    let mut obj = 0.0;
    for &(key, procs) in group.rows {
        let row = all
            .iter()
            .find(|t| t.machine_key == key && t.procs == procs)
            .expect("fit row in target set");
        let r = measure(key, procs, Some(params));
        for m in row_report(row, &r).metrics {
            let w = if m.gated { 1.0 } else { 0.15 };
            let e = m.ratio().ln();
            obj += w * e * e;
        }
    }
    obj
}

/// Coordinate descent with multiplicative steps: each sweep tries every
/// knob up and down by its step (riding a winning direction while it
/// keeps improving), then halves the steps. Returns the fitted params
/// and the final objective.
pub fn fit_group(group: &FitGroup, sweeps: usize) -> (NetParams, f64) {
    let mut params = by_key(group.keys[0]).expect("fit group machine").net.clone();
    let mut best = objective(group, &params);
    eprintln!("fit {}: initial objective {best:.4}", group.name);
    let mut step = 1.35_f64;
    for sweep in 0..sweeps {
        for &knob in group.knobs {
            for dir in [step, 1.0 / step] {
                let cand = knob.apply(&params, dir);
                let obj = objective(group, &cand);
                if obj + 1e-9 < best {
                    params = cand;
                    best = obj;
                    // ride the improving direction
                    loop {
                        let cand = knob.apply(&params, dir);
                        let obj = objective(group, &cand);
                        if obj + 1e-9 < best {
                            params = cand;
                            best = obj;
                        } else {
                            break;
                        }
                    }
                    break;
                }
            }
            eprintln!("fit {}: sweep {sweep} {} -> objective {best:.4}", group.name, knob.name());
        }
        step = 1.0 + (step - 1.0) * 0.5;
    }
    (params, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_table1() {
        assert_eq!(targets().len(), 16);
    }

    #[test]
    fn residual_tolerance_is_symmetric_relative_error() {
        let m = MetricResidual { metric: "x", measured: 125.0, paper: 100.0, gated: true };
        assert!(m.within(0.25));
        let m = MetricResidual { metric: "x", measured: 74.0, paper: 100.0, gated: true };
        assert!(!m.within(0.25));
        let m = MetricResidual { metric: "x", measured: 126.0, paper: 100.0, gated: true };
        assert!(!m.within(0.25));
    }

    #[test]
    fn knobs_scale_their_coordinate_only() {
        let p = NetParams::default();
        let q = Knob::PortMbps.apply(&p, 2.0);
        assert_eq!(q.port.mbps, p.port.mbps * 2.0);
        assert_eq!(q.node_mem.mbps, p.node_mem.mbps);
        let q = Knob::OSend.apply(&p, 3.0);
        assert_eq!(q.o_send, p.o_send * 3.0);
        assert_eq!(q.o_recv, p.o_recv * 3.0);
        // contention never drops below its legal floor
        let q = Knob::Contention.apply(&p, 0.5);
        assert_eq!(q.contention, 1.0);
        // backplane knob is a no-op without a backplane
        let q = Knob::BackplaneMbps.apply(&p, 2.0);
        assert!(q.backplane.is_none());
    }

    #[test]
    fn fit_groups_reference_real_machines_and_rows() {
        let all = targets();
        for g in fit_groups() {
            for key in g.keys {
                assert!(by_key(key).is_some(), "{key}");
            }
            for &(key, procs) in g.rows {
                assert!(
                    all.iter().any(|t| t.machine_key == key && t.procs == procs),
                    "{key} x{procs} not a Table 1 row"
                );
            }
        }
    }
}
