//! The resilient b_eff driver: one world run **per pattern**, each
//! guarded by a watchdog budget and a bounded retry loop, over an
//! optional deterministic fault session.
//!
//! Division of labor with `beff-core`:
//!
//! * [`beff_core::beff::resilient`] owns the in-world measurement
//!   ([`run_one_pattern`]) and the report schema — it knows nothing
//!   about fault injection;
//! * this module owns the *driver*: it installs the fault plan on the
//!   network before each attempt, advances the fault-session epoch
//!   between runs (every world run restarts virtual clocks at zero,
//!   but crash times and flapping windows live on one accumulated
//!   timeline), converts typed fault panics into per-pattern
//!   `failed` verdicts, and assembles whatever survived into a
//!   [`ResilientBeffResult`].
//!
//! With an **empty plan** the runner attaches no fault session at all,
//! so every rank executes the exact instruction stream of the classic
//! [`PartitionRunner`](crate::PartitionRunner) path — the fault layer
//! being compiled in costs nothing and changes no bits (pinned by
//! `tests/determinism.rs`).

use beff_core::beff::resilient::{
    run_one_pattern, PatternHealth, PatternStatus, ResilientBeffResult, StabilityReport,
    WatchdogPolicy,
};
use beff_core::beff::{
    extra::pingpong, lmax, message_sizes, random_patterns, ring_patterns, BeffConfig, BeffResult,
    Pattern, PatternResult, Transfers,
};
use beff_faults::{FaultPlan, FaultSession};
use beff_machines::Machine;
use beff_mpi::{ReduceOp, World, WorldSession};
use beff_netsim::MachineNet;
use beff_pfs::Pfs;
use std::sync::Arc;

/// A resident simulated partition with fault injection and a
/// watchdog/retry policy. The chaos-capable sibling of
/// [`PartitionRunner`](crate::PartitionRunner).
pub struct ResilientRunner {
    net: Arc<MachineNet>,
    procs: usize,
    session: WorldSession,
    faults: Option<Arc<FaultSession>>,
    policy: WatchdogPolicy,
    machine: Option<Machine>,
}

impl ResilientRunner {
    /// Runner over an explicit network. An empty plan attaches **no**
    /// fault session (bitwise-identical to the classic path).
    pub fn on_net(net: Arc<MachineNet>, procs: usize, plan: FaultPlan) -> Self {
        let faults =
            if plan.is_empty() { None } else { Some(FaultSession::new(plan, procs)) };
        let mut world = World::sim_partition(Arc::clone(&net), procs);
        if let Some(fs) = &faults {
            world = world.with_faults(Arc::clone(fs));
        }
        let session = world.session();
        Self { net, procs, session, faults, policy: WatchdogPolicy::default(), machine: None }
    }

    /// Runner over the first `procs` processors of a machine model.
    pub fn new(machine: &Machine, procs: usize, plan: FaultPlan) -> Self {
        let mut r = Self::on_net(machine.network(), procs, plan);
        r.machine = Some(machine.clone());
        r
    }

    pub fn with_policy(mut self, policy: WatchdogPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Partition size (ranks).
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The attached fault session, if any plan was installed.
    pub fn fault_session(&self) -> Option<&Arc<FaultSession>> {
        self.faults.as_ref()
    }

    /// The machine's filesystem with the plan's I/O slowdown applied
    /// (fresh per call, b_eff_io cold-start semantics).
    pub fn filesystem(&self) -> Option<Arc<Pfs>> {
        let fs = self.machine.as_ref()?.filesystem()?;
        if let Some(s) = &self.faults {
            let slowdown = s.plan().io_slowdown;
            if slowdown > 1.0 {
                fs.degrade_servers(slowdown);
            }
        }
        Some(fs)
    }

    /// Run the b_eff schedule pattern-by-pattern with fault containment.
    /// Always returns a report; `beff` is `Some` whenever at least one
    /// ring and one random pattern measured cleanly enough to average.
    pub fn run(&self, cfg: &BeffConfig) -> ResilientBeffResult {
        let n = self.procs;
        let lmaxv = lmax(cfg.mem_per_proc);
        let sizes = message_sizes(lmaxv);

        let mut patterns = ring_patterns(n);
        patterns.extend(random_patterns(n, cfg.seed));

        let mut usable: Vec<PatternResult> = Vec::new();
        let mut health = Vec::with_capacity(patterns.len());
        for pattern in &patterns {
            let (result, h) = self.run_pattern(cfg, pattern);
            if let Some(pr) = result {
                usable.push(pr);
            }
            health.push(h);
        }

        let (pp, pingpong_ok) = self.run_pingpong(cfg, lmaxv);

        let have_ring = usable.iter().any(|p| !p.random);
        let have_rand = usable.iter().any(|p| p.random);
        let beff = if have_ring && have_rand {
            Some(BeffResult::assemble(
                n,
                cfg.mem_per_proc,
                lmaxv,
                sizes,
                usable,
                pp,
                Vec::new(),
            ))
        } else {
            None
        };

        ResilientBeffResult { beff, stability: self.stability(health, pingpong_ok) }
    }

    /// One pattern: install faults, attempt, and retry with an
    /// exponentially growing budget on watchdog trips and retryable
    /// faults. Permanent faults (crash, dead route, deadlock) fail the
    /// pattern immediately.
    fn run_pattern(
        &self,
        cfg: &BeffConfig,
        pattern: &Pattern,
    ) -> (Option<PatternResult>, PatternHealth) {
        let mut budget = self.policy.point_budget;
        let mut retries = 0u32;
        let mut trips = 0u32;
        let mut max_spread = 1.0f64;
        let health = |status, reason: String, retries, trips, max_spread| PatternHealth {
            name: pattern.name.clone(),
            random: pattern.random,
            status,
            reason,
            retries,
            watchdog_trips: trips,
            max_spread,
        };
        loop {
            self.net.reset();
            if let Some(fs) = &self.faults {
                fs.install(&self.net);
            }
            let cfg2 = cfg.clone();
            let pat = pattern.clone();
            let b = budget;
            let out = self.session.try_run(move |c| run_one_pattern(c, &cfg2, &pat, b));
            match out {
                Ok(mut v) => {
                    let attempt = v.swap_remove(0);
                    if let Some(fs) = &self.faults {
                        fs.advance_epoch(attempt.t_end);
                    }
                    max_spread = max_spread.max(attempt.max_spread);
                    if attempt.tripped {
                        trips += 1;
                        if retries < self.policy.max_retries {
                            retries += 1;
                            budget *= self.policy.backoff;
                            continue;
                        }
                        return (
                            None,
                            health(
                                PatternStatus::Failed,
                                format!("watchdog tripped {trips}x, retries exhausted"),
                                retries,
                                trips,
                                max_spread,
                            ),
                        );
                    }
                    let straggling = max_spread > self.policy.straggler_spread;
                    let (status, reason) = if trips > 0 {
                        (PatternStatus::Degraded, format!("recovered after {trips} watchdog trips"))
                    } else if retries > 0 {
                        (PatternStatus::Degraded, format!("recovered after {retries} retries"))
                    } else if straggling {
                        (
                            PatternStatus::Degraded,
                            format!("straggler spread {max_spread:.1}x"),
                        )
                    } else {
                        (PatternStatus::Valid, String::new())
                    };
                    return (
                        Some(attempt.result),
                        health(status, reason, retries, trips, max_spread),
                    );
                }
                Err(e) => {
                    // The failed run's consumed virtual time is not
                    // observable (the ranks unwound); advance the epoch
                    // by the fixed budget so replays stay deterministic.
                    if let Some(fs) = &self.faults {
                        fs.advance_epoch(budget);
                    }
                    if e.is_permanent() || retries >= self.policy.max_retries {
                        return (
                            None,
                            health(
                                PatternStatus::Failed,
                                e.to_string(),
                                retries,
                                trips,
                                max_spread,
                            ),
                        );
                    }
                    retries += 1;
                    budget *= self.policy.backoff;
                }
            }
        }
    }

    /// Guarded ping-pong (a crash between ranks 0 and 1 must not kill
    /// the run — it just zeroes the diagnostic and flags the report).
    fn run_pingpong(&self, cfg: &BeffConfig, lmaxv: u64) -> (f64, bool) {
        self.net.reset();
        if let Some(fs) = &self.faults {
            fs.install(&self.net);
        }
        let iters = cfg.extra_iters.max(1);
        let out = self.session.try_run(move |c| {
            let mut tr = Transfers::new(c, lmaxv);
            let pp = pingpong(c, &mut tr, lmaxv, iters);
            let t_end = c.allreduce_scalar(c.now(), ReduceOp::Max);
            (pp, t_end)
        });
        match out {
            Ok(mut v) => {
                let (pp, t_end) = v.swap_remove(0);
                if let Some(fs) = &self.faults {
                    fs.advance_epoch(t_end);
                }
                (pp, true)
            }
            Err(_) => {
                if let Some(fs) = &self.faults {
                    fs.advance_epoch(self.policy.point_budget);
                }
                (0.0, false)
            }
        }
    }

    fn stability(&self, patterns: Vec<PatternHealth>, pingpong_ok: bool) -> StabilityReport {
        let count = |s| patterns.iter().filter(|p| p.status == s).count();
        let (valid, degraded, failed) = (
            count(PatternStatus::Valid),
            count(PatternStatus::Degraded),
            count(PatternStatus::Failed),
        );
        match &self.faults {
            Some(fs) => StabilityReport {
                fault_seed: Some(fs.plan().seed),
                severity: fs.plan().severity,
                valid,
                degraded,
                failed,
                crashed_ranks: fs.crashed_ranks(),
                dead_links: fs.plan().dead_links.clone(),
                drops: fs.stats.drops(),
                retransmits: fs.stats.retransmits(),
                pingpong_ok,
                patterns,
            },
            None => StabilityReport {
                fault_seed: None,
                severity: 0.0,
                valid,
                degraded,
                failed,
                crashed_ranks: Vec::new(),
                dead_links: Vec::new(),
                drops: 0,
                retransmits: 0,
                pingpong_ok,
                patterns,
            },
        }
    }
}
