//! The chaos sweep: a fixed scenario matrix exercised through the
//! resilient driver, with the harness invariants checked in-process.
//!
//! Three properties must hold for *every* seed (the sweep re-derives
//! them for the seed it is run with, so the tier-1 gate is a real
//! check, not a golden number):
//!
//! 1. **Termination** — every scenario completes and emits a report
//!    (the token scheduler's deadlock detection plus the watchdog
//!    budget make hangs structurally impossible; actually finishing is
//!    the observable proof).
//! 2. **Replay** — running the identical (seed, plan) twice on fresh
//!    networks yields byte-identical serialized reports.
//! 3. **Monotonicity** — within a fault family (degrade, stragglers,
//!    drops), b_eff is non-increasing in severity. The matrix pins
//!    the conditions that make this provable: a contention-free
//!    schedule (`loop_start = 1` freezes looplength adaptation) so
//!    severity only ever *adds* delay.
//!
//! Plus the I/O hook: a degraded filesystem must price writes slower.

use crate::resilient::ResilientRunner;
use beff_core::beff::{BeffConfig, MeasureSchedule};
use beff_core::beff::resilient::ResilientBeffResult;
use beff_faults::FaultSpec;
use beff_json::{Json, ToJson};
use beff_netsim::{MachineNet, NetParams, Topology, MB};
use beff_pfs::DataRef;
use std::sync::Arc;

/// Ranks in every chaos world.
pub const CHAOS_PROCS: usize = 8;

/// The chaos machine: an 8-proc ring with default link parameters.
/// Direct topology → multi-hop routes → link faults actually bite.
pub fn chaos_net() -> Arc<MachineNet> {
    Arc::new(MachineNet::new(Topology::Ring { procs: CHAOS_PROCS }, NetParams::default()))
}

/// The chaos schedule: `loop_start = 1` freezes looplength adaptation
/// (the monotonicity proofs need the measured instruction stream to be
/// fault-independent), one repetition, no extras.
pub fn chaos_cfg() -> BeffConfig {
    BeffConfig {
        mem_per_proc: 64 * MB,
        schedule: MeasureSchedule { loop_start: 1, reps: 1, ..MeasureSchedule::quick() },
        seed: 0xB0EF,
        extras: false,
        extra_iters: 2,
    }
}

/// A named fault scenario of the sweep matrix.
pub struct Scenario {
    pub name: String,
    /// Severity family for the monotonicity check ("" = unfamilied).
    pub family: &'static str,
    pub spec: FaultSpec,
}

/// The fixed scenario matrix, parameterized only by the fault seed.
pub fn scenarios(seed: u64) -> Vec<Scenario> {
    let base = || FaultSpec::none(seed);
    let mut v = vec![Scenario {
        name: "baseline".into(),
        family: "",
        spec: base(),
    }];
    for sev in [0.25, 0.5, 1.0] {
        v.push(Scenario {
            name: format!("degrade-{sev}"),
            family: "degrade",
            spec: base().with_severity(sev).degrade(),
        });
    }
    v.push(Scenario {
        name: "flapping-0.6".into(),
        family: "",
        spec: base().with_severity(0.6).flapping(),
    });
    for sev in [0.3, 0.6, 1.0] {
        v.push(Scenario {
            name: format!("straggler-{sev}"),
            family: "straggler",
            spec: base().with_severity(sev).stragglers(2),
        });
    }
    for sev in [0.25, 0.5, 1.0] {
        v.push(Scenario {
            name: format!("drops-{sev}"),
            family: "drops",
            spec: base().with_severity(sev).drops(),
        });
    }
    v.push(Scenario {
        name: "crash-1".into(),
        family: "",
        spec: base().with_severity(1.0).crashes(1),
    });
    v.push(Scenario {
        name: "deadlink-1".into(),
        family: "",
        spec: base().with_severity(1.0).dead_links(1),
    });
    v.push(Scenario {
        name: "combined-0.6".into(),
        family: "",
        spec: base().with_severity(0.6).degrade().drops().stragglers(1),
    });
    v
}

/// One scenario run twice on fresh worlds; the harness verdicts ride
/// along with the second-run report.
pub struct ScenarioOutcome {
    pub name: String,
    pub family: &'static str,
    pub severity: f64,
    pub report: ResilientBeffResult,
    /// Byte-identical serialized reports across the two runs.
    pub replay_identical: bool,
}

impl ScenarioOutcome {
    pub fn beff(&self) -> Option<f64> {
        self.report.beff.as_ref().map(|b| b.beff)
    }
}

impl ToJson for ScenarioOutcome {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("family", &self.family.to_string())
            .field("severity", &self.severity)
            .field("replay_identical", &self.replay_identical)
            .field("report", &self.report)
            .build()
    }
}

fn run_once(spec: &FaultSpec) -> (ResilientBeffResult, String) {
    let net = chaos_net();
    let plan = spec.materialize(&net);
    let runner = ResilientRunner::on_net(Arc::clone(&net), CHAOS_PROCS, plan);
    let report = runner.run(&chaos_cfg());
    let json = beff_json::to_string(&report);
    (report, json)
}

/// Run one scenario: twice, fresh nets, byte-compare.
pub fn run_scenario(sc: &Scenario) -> ScenarioOutcome {
    let (_r1, j1) = run_once(&sc.spec);
    let (r2, j2) = run_once(&sc.spec);
    ScenarioOutcome {
        name: sc.name.clone(),
        family: sc.family,
        severity: sc.spec.severity,
        report: r2,
        replay_identical: j1 == j2,
    }
}

/// Monotonicity verdict for one severity family.
pub struct FamilyCheck {
    pub family: String,
    /// b_eff per point, baseline (severity 0) first, rising severity.
    pub beffs: Vec<f64>,
    pub monotone: bool,
}

impl ToJson for FamilyCheck {
    fn to_json(&self) -> Json {
        Json::object()
            .field("family", &self.family)
            .field("beffs", &self.beffs)
            .field("monotone", &self.monotone)
            .build()
    }
}

fn check_family(family: &str, baseline: f64, outcomes: &[ScenarioOutcome]) -> FamilyCheck {
    let mut points: Vec<(f64, f64)> = vec![(0.0, baseline)];
    for o in outcomes.iter().filter(|o| o.family == family) {
        points.push((o.severity, o.beff().unwrap_or(0.0)));
    }
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite severities"));
    let beffs: Vec<f64> = points.iter().map(|p| p.1).collect();
    // tolerate float noise: a rise of one part in 10^9 is not a rise
    let monotone = beffs.windows(2).all(|w| w[1] <= w[0] * (1.0 + 1e-9));
    FamilyCheck { family: family.to_string(), beffs, monotone }
}

/// Degraded filesystem servers must price the same write strictly
/// slower (the `io_slow` fault class, checked directly on the PFS
/// model since b_eff_io sweeps are too heavy for a tier-1 gate).
pub struct IoCheck {
    pub t_healthy: f64,
    pub t_degraded: f64,
    pub ok: bool,
}

impl ToJson for IoCheck {
    fn to_json(&self) -> Json {
        Json::object()
            .field("t_healthy", &self.t_healthy)
            .field("t_degraded", &self.t_degraded)
            .field("ok", &self.ok)
            .build()
    }
}

pub fn io_check() -> IoCheck {
    let time_write = |slowdown: f64| {
        let machine = beff_machines::by_key("t3e").expect("t3e model exists");
        let pfs = machine.filesystem().expect("t3e has an I/O model");
        if slowdown > 1.0 {
            pfs.degrade_servers(slowdown);
        }
        let (f, t) = pfs.open("/chaos/io", 0.0);
        let t = pfs.write(0, &f, 0, DataRef::Len(16 * MB), t);
        // sync so the cache cannot hide the servers (write-behind
        // absorbs small writes at memory speed regardless of health)
        pfs.sync(t)
    };
    let t_healthy = time_write(1.0);
    let t_degraded = time_write(4.0);
    IoCheck { t_healthy, t_degraded, ok: t_degraded > t_healthy }
}

/// The full sweep result.
pub struct ChaosReport {
    pub seed: u64,
    pub scenarios: Vec<ScenarioOutcome>,
    pub families: Vec<FamilyCheck>,
    pub io: IoCheck,
}

impl ChaosReport {
    /// Harness invariants (seed-independent): baseline clean and
    /// bitwise-replayable, every scenario replayable and terminated
    /// with a report, severity families monotone, the crash scenario's
    /// report actually records a dead rank, and degraded I/O is slower.
    pub fn pass(&self) -> bool {
        let baseline_ok = self
            .scenarios
            .iter()
            .find(|s| s.name == "baseline")
            .is_some_and(|s| s.report.stability.stable() && s.report.usable());
        let replay_ok = self.scenarios.iter().all(|s| s.replay_identical);
        let crash_flagged = self
            .scenarios
            .iter()
            .find(|s| s.name == "crash-1")
            .is_some_and(|s| !s.report.stability.crashed_ranks.is_empty());
        baseline_ok
            && replay_ok
            && crash_flagged
            && self.families.iter().all(|f| f.monotone)
            && self.io.ok
    }

    /// Strict verdict: beyond [`pass`](Self::pass), no scenario may
    /// have lost its b_eff number entirely.
    pub fn strict_ok(&self) -> bool {
        self.pass() && self.scenarios.iter().all(|s| s.report.usable())
    }
}

impl ToJson for ChaosReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("seed", &self.seed)
            .field("pass", &self.pass())
            .field("strict_ok", &self.strict_ok())
            .field("scenarios", &self.scenarios)
            .field("families", &self.families)
            .field("io", &self.io)
            .build()
    }
}

/// Run the whole sweep for one seed.
///
/// Scenarios fan out over the `BEFF_WORKERS` pool. Scenario
/// granularity is the correctness boundary for fault injection: a
/// [`beff_faults::FaultSession`] is stateful across runs, so each job
/// owns its scenario end-to-end — fresh net, fresh session, both
/// replay runs — and fault plans stay keyed by rank and virtual time,
/// never by which worker hosted the job. The report is therefore
/// byte-identical at every worker count (the `parallel-parity` gate in
/// `scripts/verify.sh` pins this against the golden).
pub fn run_chaos(seed: u64) -> ChaosReport {
    let matrix = scenarios(seed);
    let outcomes: Vec<ScenarioOutcome> =
        beff_sim::map_ordered(beff_sim::Workers::from_env(), matrix, |_, sc| {
            run_scenario(&sc)
        });
    let baseline = outcomes
        .iter()
        .find(|o| o.name == "baseline")
        .and_then(|o| o.beff())
        .unwrap_or(0.0);
    let families = ["degrade", "straggler", "drops"]
        .iter()
        .map(|f| check_family(f, baseline, &outcomes))
        .collect();
    ChaosReport { seed, scenarios: outcomes, families, io: io_check() }
}
