//! Ablation: rank-to-node placement on the Hitachi SR 8000 — the
//! paper's round-robin vs sequential comparison (Table 1: the
//! numbering "has a heavy impact on the communication bandwidth of the
//! ring patterns and therefore of the b_eff result").
//!
//! Usage: `cargo run --release -p beff-bench --bin ablation_placement [--full]`

use beff_bench::{beff_cfg, run_beff_on};
use beff_machines::{by_key, sr8000_rr, sr8000_seq};
use beff_report::{Align, Table};

fn main() {
    let _ = by_key("sr8000-rr"); // catalog sanity
    let mut table = Table::new(&[
        "placement",
        "procs",
        "b_eff MB/s",
        "b_eff/proc",
        "ring/proc at Lmax",
        "random/ring ratio",
    ])
    .align(0, Align::Left);

    for n in [24usize, 64, 128] {
        for machine in [sr8000_rr().sized_for(n), sr8000_seq().sized_for(n)] {
            let cfg = beff_cfg(&machine);
            let r = run_beff_on(&machine, n, &cfg);
            eprintln!("done: {} x{n}", machine.key);
            let ring_avg: f64 = r
                .patterns
                .iter()
                .filter(|p| !p.random)
                .map(|p| p.avg_over_sizes())
                .sum::<f64>()
                / 6.0;
            let rand_avg: f64 = r
                .patterns
                .iter()
                .filter(|p| p.random)
                .map(|p| p.avg_over_sizes())
                .sum::<f64>()
                / 6.0;
            table.row(&[
                machine.key.to_string(),
                n.to_string(),
                format!("{:.0}", r.beff),
                format!("{:.1}", r.beff_per_proc),
                format!("{:.0}", r.ring_per_proc_at_lmax),
                format!("{:.2}", rand_avg / ring_avg),
            ]);
        }
    }

    println!("\nAblation — SMP placement (Hitachi SR 8000)\n");
    println!("{}", table.render());
    println!("expected shape: sequential placement beats round-robin on rings; random patterns hurt sequential placement more (they destroy locality).");
}
