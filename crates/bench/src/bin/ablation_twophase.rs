//! Ablation: two-phase collective buffering on/off/forced.
//!
//! * **on** (default hints) — pattern type 0's small scattered chunks
//!   are exchanged over the message network and written as large
//!   contiguous blocks: the mechanism that makes scatter/collective the
//!   best type at small chunk sizes on every platform of Fig. 4;
//! * **off** — each rank writes its own small chunks: per-call
//!   overheads dominate;
//! * **forced** — the exchange also runs when every rank's request is
//!   already contiguous, emulating the naive collective of the paper's
//!   SP prototype (Fig. 4: segmented-collective 10x worse than
//!   segmented-non-collective).
//!
//! Usage: `cargo run --release -p beff-bench --bin ablation_twophase [--full]`

use beff_bench::{beffio_cfg, PartitionRunner};
use beff_core::beffio::PatternType;
use beff_mpiio::Hints;
use beff_machines::by_key;
use beff_report::{Align, Table};

fn main() {
    let machine = by_key("t3e").expect("machine");
    let n = 16;
    let m = machine.sized_for(n);
    let runner = PartitionRunner::new(&m, n);

    let variants: [(&str, Hints); 3] = [
        ("two-phase on", Hints::default()),
        ("two-phase off", Hints::no_collective_buffering()),
        ("forced exchange", Hints { force_two_phase: true, ..Hints::default() }),
    ];

    let mut table = Table::new(&[
        "hints",
        "type0 write MB/s",
        "type0 1kB chunks MB/s",
        "type4 write MB/s",
        "b_eff_io MB/s",
    ])
    .align(0, Align::Left);

    for (name, hints) in variants {
        let mut cfg = beffio_cfg(&m);
        cfg.hints = hints;
        let r = runner.beffio(&cfg);
        eprintln!("done: {name}");
        let w = &r.methods[0];
        let t0 = w.types.iter().find(|t| t.ptype == PatternType::Scatter).unwrap();
        let t4 = w.types.iter().find(|t| t.ptype == PatternType::SegColl).unwrap();
        let small = t0
            .patterns
            .iter()
            .find(|p| p.chunk_label == "1 kB")
            .map(|p| p.mbps())
            .unwrap_or(0.0);
        table.row(&[
            name.to_string(),
            format!("{:.1}", t0.mbps()),
            format!("{small:.2}"),
            format!("{:.1}", t4.mbps()),
            format!("{:.1}", r.beff_io),
        ]);
    }

    println!("\nAblation — collective buffering (T3E, {n} procs)\n");
    println!("{}", table.render());
}
