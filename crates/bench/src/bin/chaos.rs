//! The chaos sweep binary: run the fixed fault-scenario matrix through
//! the resilient driver and write the stability/harness report.
//!
//! Usage:
//!   `chaos [--seed N] [--out results/chaos.json] [--golden FILE] [--strict]`
//!
//! * the fault seed defaults to `0xC4A05` and is overridable by
//!   `--seed` or the `BEFF_FAULT_SEED` environment variable (the same
//!   replay knob every fault plan honors);
//! * `--golden FILE` compares this run's serialized report byte-for-
//!   byte against a committed golden (the refactor-inertness gate:
//!   under the default seed the report must never drift);
//! * exit is non-zero when a **harness invariant** breaks (a scenario
//!   hangs — impossible by construction, but this is where it would
//!   surface — replay is not byte-identical, a severity family is not
//!   monotone, the crash report is missing its dead rank, or degraded
//!   I/O isn't slower). Injected faults *degrading the benchmark* is
//!   the expected product, not an error — `--strict` additionally
//!   fails the run when any scenario lost its b_eff number entirely.

use beff_bench::chaos::run_chaos;
use beff_bench::has_flag;
use beff_faults::resolve_seed;

/// Default chaos seed ("CHAOS"), pre-`BEFF_FAULT_SEED`.
const DEFAULT_SEED: u64 = 0xC4A05;

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let seed = match arg_after("--seed") {
        Some(s) => s.parse().expect("--seed N (decimal)"),
        None => resolve_seed(DEFAULT_SEED),
    };
    let out = arg_after("--out").unwrap_or_else(|| "results/chaos.json".to_string());

    let report = run_chaos(seed);

    for s in &report.scenarios {
        let st = &s.report.stability;
        println!(
            "{:<16} beff {:>10} MB/s  {:>2} valid {:>2} degraded {:>2} failed  replay {}",
            s.name,
            s.beff().map_or_else(|| "-".to_string(), |b| format!("{b:.1}")),
            st.valid,
            st.degraded,
            st.failed,
            if s.replay_identical { "ok" } else { "DIVERGED" },
        );
    }
    for f in &report.families {
        println!(
            "family {:<10} {} : {:?}",
            f.family,
            if f.monotone { "monotone" } else { "NOT MONOTONE" },
            f.beffs.iter().map(|b| (b * 10.0).round() / 10.0).collect::<Vec<_>>(),
        );
    }
    println!(
        "io degrade: healthy {:.3e}s degraded {:.3e}s ({})",
        report.io.t_healthy,
        report.io.t_degraded,
        if report.io.ok { "ok" } else { "NOT SLOWER" },
    );

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let text = beff_json::to_string_pretty(&report);
    std::fs::write(&out, &text).expect("write chaos report");
    println!("chaos report ({} scenarios, seed {seed:#x}) -> {out}", report.scenarios.len());

    if let Some(golden) = arg_after("--golden") {
        let want = std::fs::read_to_string(&golden).expect("read golden chaos report");
        if text != want {
            eprintln!("chaos: report is not byte-identical to golden {golden}");
            std::process::exit(1);
        }
        println!("chaos: byte-identical to golden {golden}");
    }

    if !report.pass() {
        eprintln!("chaos: HARNESS INVARIANT VIOLATED");
        std::process::exit(1);
    }
    if has_flag("--strict") && !report.strict_ok() {
        eprintln!("chaos: --strict: some scenario lost its b_eff number");
        std::process::exit(2);
    }
    println!("chaos: pass");
}
