//! Regenerates **Figure 5** of the paper: the final b_eff_io values of
//! the four platforms at several partition sizes.
//!
//! Usage: `cargo run --release -p beff-bench --bin fig5_compare [--full]`

use beff_bench::{beffio_cfg, run_beffio_on};
use beff_core::beffio::AccessMethod;
use beff_machines::by_key;
use beff_report::{Align, Chart, Table};

fn main() {
    let systems: [(&str, Vec<usize>); 4] = [
        ("t3e", vec![8, 16, 32, 64]),
        ("ibm-sp", vec![8, 16, 32, 64]),
        ("sr8000-rr", vec![8, 16, 32]),
        ("sx5", vec![2, 4]),
    ];

    let mut table = Table::new(&[
        "system",
        "procs",
        "write MB/s",
        "rewrite MB/s",
        "read MB/s",
        "b_eff_io MB/s",
    ])
    .align(0, Align::Left);

    let mut chart_labels: Vec<String> = Vec::new();
    let mut chart_vals: Vec<f64> = Vec::new();
    for (key, partitions) in &systems {
        let machine = by_key(key).expect("machine");
        for &n in partitions {
            let m = machine.sized_for(n);
            let cfg = beffio_cfg(&m);
            let r = run_beffio_on(&m, n, &cfg);
            table.row(&[
                m.name.to_string(),
                n.to_string(),
                format!("{:.1}", r.method_value(AccessMethod::InitialWrite).unwrap_or(0.0)),
                format!("{:.1}", r.method_value(AccessMethod::Rewrite).unwrap_or(0.0)),
                format!("{:.1}", r.method_value(AccessMethod::Read).unwrap_or(0.0)),
                format!("{:.1}", r.beff_io),
            ]);
            chart_labels.push(format!("{key}/{n}"));
            chart_vals.push(r.beff_io);
            eprintln!("done: {key} n={n}: {:.1} MB/s", r.beff_io);
        }
    }

    println!("\nFigure 5 — final b_eff_io comparison\n");
    println!("{}", table.render());
    let mut chart = Chart::new("b_eff_io (MB/s, log scale)", &chart_labels);
    chart.series("b_eff_io", &chart_vals);
    println!("{}", chart.render());
}
