//! Regenerates **Figure 1** of the paper: the balance factor
//! (b_eff / R_max) for each platform.
//!
//! Usage: `cargo run --release -p beff-bench --bin fig1_balance [--full]`

use beff_bench::{beff_cfg, run_beff_on};
use beff_core::Balance;
use beff_machines::{by_key, table1_paper};
use beff_report::{Align, Chart, Table};

fn main() {
    // one bar per Table-1 system row, at the row's processor count
    let mut table = Table::new(&[
        "system",
        "procs",
        "b_eff MB/s",
        "R_max MFlop/s",
        "balance B/flop",
        "paper balance",
    ])
    .align(0, Align::Left);

    let mut labels = Vec::new();
    let mut ours = Vec::new();
    let mut paper = Vec::new();
    for row in table1_paper() {
        let machine = by_key(row.machine_key).expect("catalog").sized_for(row.procs);
        let cfg = beff_cfg(&machine);
        let r = run_beff_on(&machine, row.procs, &cfg);
        let rmax = machine.rmax_for(row.procs);
        let b = Balance::new(r.beff, rmax);
        let paper_b = row.beff / rmax;
        table.row(&[
            machine.name.to_string(),
            row.procs.to_string(),
            format!("{:.0}", r.beff),
            format!("{rmax:.0}"),
            format!("{:.4}", b.factor()),
            format!("{paper_b:.4}"),
        ]);
        labels.push(format!("{}/{}", row.machine_key, row.procs));
        ours.push(b.factor());
        paper.push(paper_b);
        eprintln!("done: {} x{}", machine.key, row.procs);
    }

    println!("\nFigure 1 — balance factor b_eff / R_max\n");
    println!("{}", table.render());

    let mut chart = Chart::new("balance factor (bytes per flop, log scale)", &labels);
    chart.series("measured", &ours);
    chart.series("paper b_eff / modeled R_max", &paper);
    println!("{}", chart.render());
}
