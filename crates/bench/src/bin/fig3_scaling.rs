//! Regenerates **Figure 3** of the paper: b_eff_io as a function of the
//! partition size on the Cray T3E (flat — the I/O subsystem is a global
//! resource that few clients saturate) and the IBM SP (tracks the
//! number of nodes until the per-node injection saturates GPFS).
//!
//! Also sweeps the scheduled time T, reproducing the §5.4 observation
//! that short runs benefit from the filesystem cache.
//!
//! Usage: `cargo run --release -p beff-bench --bin fig3_scaling [--full]`

use beff_bench::{full_mode, PartitionRunner};
use beff_core::beffio::BeffIoConfig;
use beff_machines::{by_key, SP_IO_CLAIM, T3E_IO_CLAIM};
use beff_report::{Chart, Table};

fn main() {
    // scaled T values: the paper used 10 and 15 minutes; the quick mode
    // keeps the ratio but runs seconds of virtual time
    let ts: Vec<(f64, &str)> = if full_mode() {
        vec![(600.0, "T=10min"), (900.0, "T=15min")]
    } else {
        vec![(20.0, "T=20s"), (30.0, "T=30s")]
    };
    let partitions = [8usize, 16, 32, 64, 128];

    for key in ["t3e", "ibm-sp"] {
        let machine = by_key(key).expect("machine");
        let mut table_rows: Vec<Vec<String>> = Vec::new();
        let mut series: Vec<(String, Vec<f64>)> =
            ts.iter().map(|(_, tname)| (tname.to_string(), Vec::new())).collect();
        // partition outer, T inner: each partition's world is spawned
        // once and reused for every scheduled-time variant
        for &n in &partitions {
            let m = machine.sized_for(n);
            let runner = PartitionRunner::new(&m, n);
            for (ti, (t, tname)) in ts.iter().enumerate() {
                let cfg = BeffIoConfig::paper(m.mem_per_node).with_t(*t);
                let r = runner.beffio(&cfg);
                series[ti].1.push(r.beff_io);
                eprintln!("done: {key} {tname} n={n}: {:.1} MB/s", r.beff_io);
            }
        }
        for (ti, (_, tname)) in ts.iter().enumerate() {
            for (ni, &n) in partitions.iter().enumerate() {
                table_rows.push(vec![
                    tname.to_string(),
                    n.to_string(),
                    format!("{:.1}", series[ti].1[ni]),
                ]);
            }
        }

        println!("\nFigure 3 — b_eff_io vs partition size on {}\n", machine.name);
        let mut table = Table::new(&["T", "procs", "b_eff_io MB/s"]);
        for r in &table_rows {
            table.row(r);
        }
        println!("{}", table.render());
        let labels: Vec<String> = partitions.iter().map(|n| n.to_string()).collect();
        let mut chart = Chart::new(&format!("{} b_eff_io (MB/s) over procs", machine.name), &labels);
        for (name, vals) in &series {
            chart.series(name, vals);
        }
        println!("{}", chart.render());
        println!(
            "paper claim: {}",
            if key == "t3e" { T3E_IO_CLAIM } else { SP_IO_CLAIM }
        );
    }
}
