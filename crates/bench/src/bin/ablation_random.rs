//! Extension study (the paper's §6 future work): should *random*
//! access patterns join b_eff_io? Measures sequential vs random reads
//! and random writes over chunk sizes on two contrasting systems — the
//! T3E (small cache, seek-dominated) and the SX-5 (2 GB cache, random
//! access nearly free while the working set is resident).
//!
//! Usage: `cargo run --release -p beff-bench --bin ablation_random [--full]`

use beff_bench::full_mode;
use beff_core::beffio::{run_random_io, RandomIoConfig};
use beff_machines::by_key;
use beff_mpi::World;
use beff_mpiio::IoWorld;
use beff_netsim::MB;
use beff_pfs::Pfs;
use beff_report::{Align, Table};
use std::sync::Arc;

fn main() {
    let (region, t) = if full_mode() { (64 * MB, 10.0) } else { (8 * MB, 1.0) };

    let mut table = Table::new(&[
        "system",
        "chunk",
        "seq read MB/s",
        "rand read MB/s",
        "rand write MB/s",
        "rand/seq",
    ])
    .align(0, Align::Left)
    .align(1, Align::Left);

    for key in ["t3e", "sx5"] {
        let machine = by_key(key).expect("machine");
        let n = 8.min(machine.procs);
        let m = machine.sized_for(n);
        // cold-cache study with the disk seek model enabled: the
        // benchmark proper never probes seeks (the paper's point is
        // that most application patterns are sequential), so the
        // calibrated models leave it off — the extension turns it on
        let mut iocfg = m.io.clone().expect("io model");
        iocfg.cache_bytes = if key == "sx5" { iocfg.cache_bytes } else { 0 };
        let pfs = Arc::new(Pfs::new(iocfg));
        pfs.set_seek_overhead(7e-3); // ~7 ms disk arm movement
        let io = IoWorld::sim(pfs);
        let cfg = RandomIoConfig {
            region_per_rank: region,
            time_per_point: t,
            ..RandomIoConfig::quick()
        };
        let rs =
            World::sim_partition(m.network(), n).run(|c| run_random_io(c, &io, &cfg));
        let r = &rs[0];
        eprintln!("done: {key}");
        for p in &r.points {
            table.row(&[
                m.name.to_string(),
                beff_netsim::units::fmt_bytes(p.chunk),
                format!("{:.1}", p.seq_read_mbps),
                format!("{:.1}", p.rand_read_mbps),
                format!("{:.1}", p.rand_write_mbps),
                format!("{:.2}", p.rand_read_mbps / p.seq_read_mbps.max(1e-9)),
            ]);
        }
    }

    println!("\nExtension — random access patterns (paper §6 future work)\n");
    println!("{}", table.render());
    println!("reading: a rand/seq ratio near 1 means random patterns would add");
    println!("little information to b_eff_io on that system; a low ratio means");
    println!("they probe a distinct subsystem property (seek/RMW costs).");
}
