//! Regenerates **Figure 4** of the paper: the detailed per-pattern
//! bandwidth of one b_eff_io run — three access methods × five pattern
//! types over the (pseudo-log) chunk-size axis — on the four systems
//! the paper compares: IBM SP, Cray T3E, Hitachi SR 8000, NEC SX-5.
//!
//! Usage: `cargo run --release -p beff-bench --bin fig4_detail [--full] [--procs N]`

use beff_bench::{beffio_cfg, run_beffio_on};
use beff_core::beffio::PatternType;
use beff_machines::by_key;
use beff_report::Chart;

fn main() {
    let procs: usize = std::env::args()
        .skip_while(|a| a != "--procs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    for key in ["ibm-sp", "t3e", "sr8000-rr", "sx5"] {
        let machine = by_key(key).expect("machine");
        let n = procs.min(machine.procs);
        let m = machine.sized_for(n);
        let cfg = beffio_cfg(&m);
        let r = run_beffio_on(&m, n, &cfg);
        eprintln!("done: {key} n={n}");

        println!("\n==== Figure 4 row: {} ({} procs) ====", m.name, n);
        for method in &r.methods {
            // x axis: the eight ladder chunk labels of the standard rows
            let reference = &method.types[1]; // shared type has the 8 ladder rows
            let labels: Vec<String> =
                reference.patterns.iter().map(|p| p.chunk_label.clone()).collect();
            let mut chart = Chart::new(
                &format!("{} — bandwidth (MB/s, log) over chunk size", method.method.name()),
                &labels,
            );
            for t in &method.types {
                // align each type's patterns onto the 8 ladder slots
                let mut vals = vec![0.0; labels.len()];
                for p in &t.patterns {
                    if let Some(i) = labels.iter().position(|l| *l == p.chunk_label) {
                        vals[i] = p.mbps();
                    }
                }
                chart.series(&format!("type {} ({})", t.ptype as usize, t.ptype.name()), &vals);
            }
            println!("{}", chart.render());
        }
        // the paper's key observations, checked on the spot
        let w = &r.methods[0];
        let scatter = w.types.iter().find(|t| t.ptype == PatternType::Scatter).unwrap();
        let sep = w.types.iter().find(|t| t.ptype == PatternType::Separate).unwrap();
        let small = |t: &beff_core::beffio::TypeRun, label: &str| {
            t.patterns.iter().find(|p| p.chunk_label == label).map(|p| p.mbps()).unwrap_or(0.0)
        };
        println!(
            "check: 1 kB chunks, initial write: scatter/collective {:.1} MB/s vs separate-files {:.1} MB/s (paper: scatter wins at small chunks)",
            small(scatter, "1 kB"),
            small(sep, "1 kB"),
        );
        println!(
            "check: wellformed 32 kB {:.1} MB/s vs non-wellformed 32 kB+8B {:.1} MB/s on separate files",
            small(sep, "32 kB"),
            small(sep, "32 kB +8B"),
        );
    }
}
