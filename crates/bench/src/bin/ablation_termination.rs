//! Ablation for the paper's §5.4 discussion: the released b_eff_io
//! terminates collective pattern loops with a barrier + root check +
//! broadcast after *every* iteration; the paper proposes a geometric
//! series of repeating factors instead. This harness measures both on
//! the T3E model, where the paper's own arithmetic (60 µs barrier vs
//! 250 µs for a fast 1 kB access) says the overhead is not negligible.
//!
//! Usage: `cargo run --release -p beff-bench --bin ablation_termination [--full]`

use beff_bench::{beffio_cfg, PartitionRunner};
use beff_core::beffio::{PatternType, Termination};
use beff_machines::by_key;
use beff_report::{Align, Table};

fn main() {
    let machine = by_key("t3e").expect("machine");
    let n = 32;
    let m = machine.sized_for(n);
    let runner = PartitionRunner::new(&m, n);

    let mut results = Vec::new();
    for term in [Termination::RootCheck, Termination::Geometric] {
        let mut cfg = beffio_cfg(&m);
        cfg.termination = term;
        let r = runner.beffio(&cfg);
        eprintln!("done: {term:?}");
        results.push((term, r));
    }

    println!("\nAblation — collective loop termination algorithm (T3E, {n} procs)\n");
    let mut table = Table::new(&[
        "pattern type",
        "RootCheck MB/s",
        "Geometric MB/s",
        "speedup",
    ])
    .align(0, Align::Left);
    for ti in 0..5 {
        // compare the initial-write type bandwidths
        let a = results[0].1.methods[0].types[ti].mbps();
        let b = results[1].1.methods[0].types[ti].mbps();
        let ptype = results[0].1.methods[0].types[ti].ptype;
        table.row(&[
            format!("{} ({})", ptype as usize, ptype.name()),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:.2}x", if a > 0.0 { b / a } else { 0.0 }),
        ]);
        if ptype == PatternType::Shared {
            // the small-chunk shared patterns feel the barrier most
            let pa = &results[0].1.methods[0].types[ti].patterns;
            let pb = &results[1].1.methods[0].types[ti].patterns;
            for (x, y) in pa.iter().zip(pb) {
                if x.chunk_label.starts_with("1 kB") {
                    println!(
                        "  1 kB shared pattern: RootCheck {:.2} MB/s vs Geometric {:.2} MB/s",
                        x.mbps(),
                        y.mbps()
                    );
                }
            }
        }
    }
    table.row(&[
        "b_eff_io".into(),
        format!("{:.1}", results[0].1.beff_io),
        format!("{:.1}", results[1].1.beff_io),
        format!("{:.2}x", results[1].1.beff_io / results[0].1.beff_io),
    ]);
    println!("{}", table.render());
}
