//! Verification-gate helper: check that a JSON file exists and is
//! well-formed (RFC 8259), using the in-tree validator. Exits nonzero
//! with a diagnostic otherwise — `scripts/verify.sh` runs this against
//! `BENCH_SIM.json` after the perf baseline.
//!
//! Usage: `cargo run --release -p beff-bench --bin json_check -- <file>...`

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json_check <file>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("json_check: {path}: {e}");
                failed = true;
            }
            Ok(text) => match beff_json::validate(&text) {
                Err(e) => {
                    eprintln!("json_check: {path}: {e}");
                    failed = true;
                }
                Ok(()) => println!("json_check: {path}: ok"),
            },
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
