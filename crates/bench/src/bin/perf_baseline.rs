//! Perf baseline of the simulator harness: times representative b_eff
//! and b_eff_io sweeps end-to-end (world launch included) and writes
//! the machine-readable trajectory to `BENCH_SIM.json`.
//!
//! The recorded `seed_secs` constants are the same sweeps measured on
//! the pre-optimization harness (per-rank route caches, broadcast
//! mailbox wakeups, one world per run call) so every future run reports
//! its speedup against a fixed, honest baseline.
//!
//! Usage: `cargo run --release -p beff-bench --bin perf_baseline
//!         [-- --out BENCH_SIM.json] [--quick]`
//!
//! `--quick` skips the 512-rank sweep (CI smoke mode); the JSON then
//! carries only the sweeps actually run.

use beff_bench::{beffio_cfg_quick_t, has_flag, run_beff_on, run_beffio_on};
use beff_core::beff::BeffConfig;
use beff_machines::by_key;
use beff_json::{Json, ToJson};
use std::time::Instant;

/// One timed sweep: a named closure plus the seed-harness seconds
/// measured for the identical sweep before the fast-path work.
struct Sweep {
    name: &'static str,
    /// Wall seconds of the pre-optimization harness (recorded on the
    /// reference container, 1 CPU; see module docs).
    seed_secs: f64,
    heavy: bool,
    run: fn() -> f64,
}

fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn beff_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = BeffConfig::quick(machine.mem_per_proc);
    time_it(|| {
        let r = run_beff_on(&machine, procs, &cfg);
        assert!(r.beff > 0.0);
    })
}

fn beffio_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = beffio_cfg_quick_t(&machine, 2.0);
    time_it(|| {
        let r = run_beffio_on(&machine, procs, &cfg);
        assert!(r.beff_io > 0.0);
    })
}

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep {
            name: "beff_t3e_64",
            seed_secs: SEED_BEFF_T3E_64,
            heavy: false,
            run: || beff_sweep("t3e", 64),
        },
        Sweep {
            name: "beff_t3e_512",
            seed_secs: SEED_BEFF_T3E_512,
            heavy: true,
            run: || beff_sweep("t3e", 512),
        },
        Sweep {
            name: "beffio_t3e_32",
            seed_secs: SEED_BEFFIO_T3E_32,
            heavy: false,
            run: || beffio_sweep("t3e", 32),
        },
    ]
}

// Pre-optimization (seed) timings of the sweeps above, wall seconds,
// measured on the reference container (1 CPU) with the seed harness:
// per-rank route caches, broadcast mailbox wakeups, p2p sim
// collectives, one OS thread per rank with futex token handoffs.
const SEED_BEFF_T3E_64: f64 = 1.40;
const SEED_BEFF_T3E_512: f64 = 25.63;
const SEED_BEFFIO_T3E_32: f64 = 2.50;

struct Record {
    name: &'static str,
    secs: f64,
    seed_secs: f64,
}

impl ToJson for Record {
    fn to_json(&self) -> Json {
        let speedup = if self.secs > 0.0 && self.seed_secs > 0.0 {
            self.seed_secs / self.secs
        } else {
            0.0
        };
        Json::object()
            .field("name", self.name)
            .field("secs", &self.secs)
            .field("seed_secs", &self.seed_secs)
            .field("speedup", &speedup)
            .build()
    }
}

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_SIM.json".to_string());
    let quick = has_flag("--quick");

    let mut records = Vec::new();
    for s in sweeps() {
        if quick && s.heavy {
            eprintln!("skip (quick): {}", s.name);
            continue;
        }
        let secs = (s.run)();
        eprintln!(
            "{:<16} {:>8.2} s (seed {:>8.2} s, speedup {:.2}x)",
            s.name,
            secs,
            s.seed_secs,
            if secs > 0.0 { s.seed_secs / secs } else { 0.0 }
        );
        records.push(Record { name: s.name, secs, seed_secs: s.seed_secs });
    }

    let doc = Json::object()
        .field("schema", "beff-perf-baseline/1")
        .field("mode", if quick { "quick" } else { "full" })
        .raw("sweeps", Json::array(records.iter()))
        .build();
    let text = beff_json::to_string_pretty(&doc);
    beff_json::validate(&text).expect("perf baseline JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_SIM.json");
    println!("wrote {out_path}");
}
