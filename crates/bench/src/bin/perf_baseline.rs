//! Perf baseline of the simulator harness: times representative b_eff
//! and b_eff_io sweeps end-to-end (world launch included) and writes
//! the machine-readable trajectory to `BENCH_SIM.json`.
//!
//! Every sweep is compared against its entry in [`SEED_BASELINES`] (the
//! identical sweep measured on the pre-optimization harness); a sweep
//! that regresses below 1.0x of the seed fails the run with a non-zero
//! exit, which is how `scripts/verify.sh` catches performance
//! regressions. The calibration residual gate's summary is embedded
//! next to the sweeps (full report: `results/calibration.json`).
//!
//! Usage: `cargo run --release -p beff-bench --bin perf_baseline
//!         [-- --out BENCH_SIM.json] [--quick]`
//!
//! `--quick` skips the 512-rank sweep and the calibration replay (CI
//! smoke mode); the JSON then carries only the sweeps actually run.

use beff_bench::calibration::{check, DEFAULT_TOLERANCE};
use beff_bench::{beffio_cfg_quick_t, has_flag, run_beff_on, run_beffio_on};
use beff_core::beff::BeffConfig;
use beff_json::{Json, ToJson};
use beff_machines::by_key;
use std::time::Instant;

/// Seed-harness wall seconds for one named sweep, with the provenance
/// of the measurement. These are *fixed reference points*: they must
/// never be re-measured on an optimized harness, or the speedup column
/// silently loses its meaning.
struct SeedBaseline {
    name: &'static str,
    /// Wall seconds on the reference container (1 CPU).
    secs: f64,
    /// Where the number comes from.
    provenance: &'static str,
}

/// The seed harness: per-rank route caches, broadcast mailbox wakeups,
/// p2p sim collectives, one OS thread per rank with futex token
/// handoffs — measured immediately before the fast-path rework (see
/// CHANGES.md, "Fast-path the simulated MPI world"), reference
/// container, 1 CPU, median of 3 runs.
const SEED_BASELINES: &[SeedBaseline] = &[
    SeedBaseline {
        name: "beff_t3e_64",
        secs: 1.40,
        provenance: "seed harness, quick b_eff schedule, t3e x64",
    },
    SeedBaseline {
        name: "beff_t3e_512",
        secs: 25.63,
        provenance: "seed harness, quick b_eff schedule, t3e x512",
    },
    SeedBaseline {
        name: "beffio_t3e_32",
        secs: 2.50,
        provenance: "seed harness, quick b_eff_io schedule T=2s, t3e x32",
    },
];

fn seed_secs(name: &str) -> f64 {
    SEED_BASELINES
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("sweep {name} has no seed baseline"))
        .secs
}

/// One timed sweep: a named closure plus its seed baseline.
struct Sweep {
    name: &'static str,
    heavy: bool,
    run: fn() -> f64,
}

fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn beff_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = BeffConfig::quick(machine.mem_per_proc);
    time_it(|| {
        let r = run_beff_on(&machine, procs, &cfg);
        assert!(r.beff > 0.0);
    })
}

fn beffio_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = beffio_cfg_quick_t(&machine, 2.0);
    time_it(|| {
        let r = run_beffio_on(&machine, procs, &cfg);
        assert!(r.beff_io > 0.0);
    })
}

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep { name: "beff_t3e_64", heavy: false, run: || beff_sweep("t3e", 64) },
        Sweep { name: "beff_t3e_512", heavy: true, run: || beff_sweep("t3e", 512) },
        Sweep { name: "beffio_t3e_32", heavy: false, run: || beffio_sweep("t3e", 32) },
    ]
}

struct Record {
    name: &'static str,
    secs: f64,
    seed_secs: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        if self.secs > 0.0 && self.seed_secs > 0.0 {
            self.seed_secs / self.secs
        } else {
            0.0
        }
    }
}

impl ToJson for Record {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", self.name)
            .field("secs", &self.secs)
            .field("seed_secs", &self.seed_secs)
            .field("speedup", &self.speedup())
            .build()
    }
}

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_SIM.json".to_string());
    let quick = has_flag("--quick");

    let mut records = Vec::new();
    for s in sweeps() {
        if quick && s.heavy {
            eprintln!("skip (quick): {}", s.name);
            continue;
        }
        let secs = (s.run)();
        let rec = Record { name: s.name, secs, seed_secs: seed_secs(s.name) };
        eprintln!(
            "{:<16} {:>8.2} s (seed {:>8.2} s, speedup {:.2}x)",
            rec.name,
            rec.secs,
            rec.seed_secs,
            rec.speedup()
        );
        records.push(rec);
    }

    // Calibration residual gate (skipped in quick mode — verify.sh runs
    // the standalone `calibrate -- --check` gate there instead).
    let calibration = if quick {
        Json::variant("skipped", Json::object().field("reason", "quick mode").build())
    } else {
        check(DEFAULT_TOLERANCE).summary()
    };

    let seeds: Vec<Json> = SEED_BASELINES
        .iter()
        .map(|b| {
            Json::object()
                .field("name", b.name)
                .field("secs", &b.secs)
                .field("provenance", b.provenance)
                .build()
        })
        .collect();

    let doc = Json::object()
        .field("schema", "beff-perf-baseline/2")
        .field("mode", if quick { "quick" } else { "full" })
        .raw("seed_baselines", Json::array(seeds.iter()))
        .raw("sweeps", Json::array(records.iter()))
        .raw("calibration", calibration)
        .build();
    let text = beff_json::to_string_pretty(&doc);
    beff_json::validate(&text).expect("perf baseline JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_SIM.json");
    println!("wrote {out_path}");

    // Regression gate: any sweep slower than its seed baseline fails.
    let regressed: Vec<&Record> = records.iter().filter(|r| r.speedup() < 1.0).collect();
    if !regressed.is_empty() {
        for r in &regressed {
            eprintln!(
                "PERF REGRESSION: {} took {:.2} s vs seed {:.2} s ({:.2}x)",
                r.name,
                r.secs,
                r.seed_secs,
                r.speedup()
            );
        }
        std::process::exit(1);
    }
}
