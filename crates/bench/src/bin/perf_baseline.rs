//! Perf baseline of the simulator harness: times representative b_eff
//! and b_eff_io sweeps end-to-end (world launch included) and writes
//! the machine-readable trajectory to `BENCH_SIM.json`.
//!
//! Two regression gates guard the trajectory:
//!
//! * **Seed gate** — sweeps with an entry in [`SEED_BASELINES`] (the
//!   identical sweep measured on the pre-optimization harness) must
//!   stay at or above 1.0x of the seed.
//! * **Ratchet gate** — every sweep is also compared against its entry
//!   in the *previous committed* `BENCH_SIM.json`; slowing down by more
//!   than [`RATCHET_SLACK`] fails the run. Optimizations land, the file
//!   is regenerated, and the new (faster) numbers become the floor.
//!
//! In full mode the run also measures the **parallel section**: eight
//! independent 512-rank b_eff jobs through [`PartitionRunner::beff_batch`]
//! (one machine replica per job over the `BEFF_WORKERS` pool), proving
//! the batch results byte-identical to the serial sweep at 1 and 8
//! workers and recording both the measured wall-clock speedup on this
//! host and the load-balance projection for an 8-core host (honest
//! provenance: the two are the same number only on an 8-core machine).
//!
//! Usage: `cargo run --release -p beff-bench --bin perf_baseline
//!         [-- --out BENCH_SIM.json] [--quick]`
//!
//! `--quick` skips the 512-rank sweeps, the parallel section, and the
//! calibration replay (CI smoke mode); the JSON then carries only the
//! sweeps actually run, and the ratchet only checks those.

use beff_bench::calibration::{check, DEFAULT_TOLERANCE};
use beff_bench::{beffio_cfg_quick_t, has_flag, run_beff_on, run_beffio_on, PartitionRunner};
use beff_core::beff::BeffConfig;
use beff_json::{Json, ToJson};
use beff_machines::by_key;
use beff_sim::{try_run_sharded, Message, ShardCtx, Workers};
use std::time::Instant;

/// Ratchet tolerance: a sweep may be up to this factor slower than the
/// previous committed run before the gate fires (wall timings on a
/// shared container jitter; 10% is the contract from DESIGN.md §10).
const RATCHET_SLACK: f64 = 1.10;

/// Absolute grace on top of the ratchet factor: sub-second sweeps see
/// scheduler/page-cache jitter far above 10%, and a relative-only gate
/// would flake on them while adding nothing to the multi-second sweeps
/// the ratchet exists to guard.
const RATCHET_GRACE_SECS: f64 = 0.25;

/// Seed-harness wall seconds for one named sweep, with the provenance
/// of the measurement. These are *fixed reference points*: they must
/// never be re-measured on an optimized harness, or the speedup column
/// silently loses its meaning.
struct SeedBaseline {
    name: &'static str,
    /// Wall seconds on the reference container (1 CPU).
    secs: f64,
    /// Where the number comes from.
    provenance: &'static str,
}

/// The seed harness: per-rank route caches, broadcast mailbox wakeups,
/// p2p sim collectives, one OS thread per rank with futex token
/// handoffs — measured immediately before the fast-path rework (see
/// CHANGES.md, "Fast-path the simulated MPI world"), reference
/// container, 1 CPU, median of 3 runs.
const SEED_BASELINES: &[SeedBaseline] = &[
    SeedBaseline {
        name: "beff_t3e_64",
        secs: 1.40,
        provenance: "seed harness, quick b_eff schedule, t3e x64",
    },
    SeedBaseline {
        name: "beff_t3e_512",
        secs: 25.63,
        provenance: "seed harness, quick b_eff schedule, t3e x512",
    },
    SeedBaseline {
        name: "beffio_t3e_32",
        secs: 2.50,
        provenance: "seed harness, quick b_eff_io schedule T=2s, t3e x32",
    },
];

fn seed_secs(name: &str) -> Option<f64> {
    SEED_BASELINES.iter().find(|b| b.name == name).map(|b| b.secs)
}

/// One timed sweep: a named closure plus gate context.
struct Sweep {
    name: &'static str,
    heavy: bool,
    run: fn() -> f64,
}

fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn beff_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = BeffConfig::quick(machine.mem_per_proc);
    time_it(|| {
        let r = run_beff_on(&machine, procs, &cfg);
        assert!(r.beff > 0.0);
    })
}

fn beffio_sweep(key: &str, procs: usize) -> f64 {
    let machine = by_key(key).expect("machine in catalog").sized_for(procs);
    let cfg = beffio_cfg_quick_t(&machine, 2.0);
    time_it(|| {
        let r = run_beffio_on(&machine, procs, &cfg);
        assert!(r.beff_io > 0.0);
    })
}

/// Ring message for the sharded-engine sweep (sender-id filter: the
/// shape the conservative engine's determinism contract requires).
#[derive(Debug, Clone, Copy)]
struct Hop {
    from: usize,
    acc: f64,
}

#[derive(Debug, Clone, Copy)]
struct From(usize);

impl Message for Hop {
    type Filter = From;
    fn admits(f: &From, m: &Hop) -> bool {
        m.from == f.0
    }
}

/// 10 000 actors on the conservative sharded engine (fibers on x86_64),
/// five token-ring rounds — the world-scale smoke for the parallel
/// discrete-event mode.
fn sharded_ring_sweep() -> f64 {
    const N: usize = 10_000;
    const ROUNDS: u32 = 5;
    const LOOKAHEAD: f64 = 1e-6;
    time_it(|| {
        let results = try_run_sharded(N, Workers::from_env(), LOOKAHEAD, |ctx: ShardCtx<'_, Hop>| {
            let id = ctx.id();
            let (left, right) = ((id + N - 1) % N, (id + 1) % N);
            let mut acc = id as f64 + 1.0;
            for _ in 0..ROUNDS {
                ctx.advance(LOOKAHEAD);
                ctx.send(right, Hop { from: id, acc });
                acc += ctx.recv(From(left)).acc * 0.5;
            }
            acc
        });
        assert_eq!(results.len(), N);
        assert!(results.iter().all(|r| r.is_ok()));
    })
}

fn sweeps() -> Vec<Sweep> {
    vec![
        Sweep { name: "beff_t3e_64", heavy: false, run: || beff_sweep("t3e", 64) },
        Sweep { name: "beff_t3e_512", heavy: true, run: || beff_sweep("t3e", 512) },
        Sweep { name: "beffio_t3e_32", heavy: false, run: || beffio_sweep("t3e", 32) },
        Sweep { name: "sharded_ring_10k", heavy: false, run: sharded_ring_sweep },
    ]
}

struct Record {
    name: &'static str,
    secs: f64,
    seed_secs: Option<f64>,
    prev_secs: Option<f64>,
}

impl Record {
    fn speedup(&self) -> f64 {
        match self.seed_secs {
            Some(seed) if self.secs > 0.0 => seed / self.secs,
            _ => 0.0,
        }
    }

    fn seed_regressed(&self) -> bool {
        self.seed_secs.is_some() && self.speedup() < 1.0
    }

    fn ratchet_regressed(&self) -> bool {
        self.prev_secs.is_some_and(|prev| self.secs > ratchet_limit(prev))
    }
}

impl ToJson for Record {
    fn to_json(&self) -> Json {
        let mut o = Json::object().field("name", self.name).field("secs", &self.secs);
        if let Some(seed) = self.seed_secs {
            o = o.field("seed_secs", &seed).field("speedup", &self.speedup());
        }
        match self.prev_secs {
            Some(prev) => o = o.field("prev_secs", &prev),
            // Make "no gate applied" machine-readable: a consumer of
            // the trajectory must not mistake a new sweep's first
            // record for one that cleared the ratchet.
            None => o = o.field("ratchet", "no committed baseline (new sweep)"),
        }
        o.build()
    }
}

fn ratchet_limit(prev: f64) -> f64 {
    prev * RATCHET_SLACK + RATCHET_GRACE_SECS
}

/// Sweep timings from the previous committed baseline, read with the
/// in-tree parser (`beff_json::parse`). A file that does not parse, or
/// parses to an unexpected shape, contributes no floors: every sweep
/// then reports a clean "no committed baseline" note instead of a
/// gate failure — the first run of a new sweep (or of a fresh
/// checkout) is a legitimate state, not a regression.
fn previous_sweeps(text: &str) -> Vec<(String, f64)> {
    let Ok(Json::Obj(doc)) = beff_json::parse(text) else { return Vec::new() };
    let sweeps = doc.into_iter().find_map(|(name, value)| match (name.as_str(), value) {
        ("sweeps", Json::Arr(items)) => Some(items),
        _ => None,
    });
    sweeps
        .unwrap_or_default()
        .into_iter()
        .filter_map(|record| {
            let Json::Obj(fields) = record else { return None };
            let (mut name, mut secs) = (None, None);
            for (field, value) in fields {
                match (field.as_str(), value) {
                    ("name", Json::Str(s)) => name = Some(s),
                    ("secs", Json::Float(f)) => secs = Some(f),
                    ("secs", Json::UInt(n)) => secs = Some(n as f64),
                    ("secs", Json::Int(n)) => secs = Some(n as f64),
                    _ => {}
                }
            }
            Some((name?, secs?))
        })
        .collect()
}

/// The parallel section: eight 512-rank b_eff jobs, serial per-job
/// timings, batch runs at 1 and 8 workers with a byte-identity check,
/// and the 8-worker load-balance projection (LPT makespan over the
/// measured per-job times).
struct ParallelSection {
    job_secs: Vec<f64>,
    wall_w1: f64,
    wall_w8: f64,
    host_workers: usize,
    identical: bool,
}

impl ParallelSection {
    fn serial_secs(&self) -> f64 {
        self.job_secs.iter().sum()
    }

    fn measured_speedup(&self) -> f64 {
        if self.wall_w8 > 0.0 {
            self.wall_w1 / self.wall_w8
        } else {
            0.0
        }
    }

    /// Longest-processing-time-first makespan on `workers` bins.
    fn projected_speedup(&self, workers: usize) -> f64 {
        let mut jobs = self.job_secs.clone();
        jobs.sort_by(|a, b| b.partial_cmp(a).expect("finite timings"));
        let mut bins = vec![0.0f64; workers.max(1)];
        for j in jobs {
            let min = bins
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).expect("finite bins"))
                .expect("at least one bin");
            *min += j;
        }
        let makespan = bins.iter().cloned().fold(0.0f64, f64::max);
        if makespan > 0.0 {
            self.serial_secs() / makespan
        } else {
            0.0
        }
    }
}

impl ToJson for ParallelSection {
    fn to_json(&self) -> Json {
        Json::object()
            .field("ranks", &512u64)
            .field("jobs", &(self.job_secs.len() as u64))
            .field("job_secs", &self.job_secs)
            .field("serial_secs", &self.serial_secs())
            .field("wall_secs_w1", &self.wall_w1)
            .field("wall_secs_w8", &self.wall_w8)
            .field("host_workers", &(self.host_workers as u64))
            .field("measured_speedup_w1_over_w8", &self.measured_speedup())
            .field("projected_speedup_8_workers", &self.projected_speedup(8))
            .field("identical_serial_w1_w8", &self.identical)
            .field(
                "method",
                "job_secs: serial session runs; wall_secs_wN: beff_batch at N workers \
                 on this host; projection: LPT makespan of job_secs on 8 bins \
                 (equals the measured speedup only on a >=8-core host)",
            )
            .build()
    }
}

fn parallel_section() -> ParallelSection {
    let machine = by_key("t3e").expect("machine in catalog").sized_for(512);
    let runner = PartitionRunner::new(&machine, 512);
    let cfgs: Vec<BeffConfig> = (0..8)
        .map(|j| BeffConfig { seed: 0xBEFF ^ j as u64, ..BeffConfig::quick(machine.mem_per_proc) })
        .collect();

    let mut job_secs = Vec::new();
    let mut serial = Vec::new();
    for cfg in &cfgs {
        let t0 = Instant::now();
        serial.push(runner.beff(cfg));
        job_secs.push(t0.elapsed().as_secs_f64());
        eprintln!("parallel: serial job {} took {:.2} s", serial.len(), job_secs.last().expect("just pushed"));
    }

    let t1 = Instant::now();
    let w1 = runner.beff_batch(Workers::new(1), &cfgs);
    let wall_w1 = t1.elapsed().as_secs_f64();
    let t8 = Instant::now();
    let w8 = runner.beff_batch(Workers::new(8), &cfgs);
    let wall_w8 = t8.elapsed().as_secs_f64();

    let identical = format!("{serial:?}") == format!("{w1:?}")
        && format!("{serial:?}") == format!("{w8:?}");
    ParallelSection {
        job_secs,
        wall_w1,
        wall_w8,
        host_workers: Workers::from_env().get(),
        identical,
    }
}

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_SIM.json".to_string());
    let quick = has_flag("--quick");

    // The ratchet floor is always the *committed* baseline at the repo
    // root (which full mode is about to overwrite — read it first);
    // scratch outputs from earlier CI runs must not move the floor.
    // A missing or unreadable baseline is a clean "no floor yet" state
    // (fresh checkout, renamed sweep), never a gate failure.
    let prev = match std::fs::read_to_string("BENCH_SIM.json") {
        Ok(text) => {
            let floors = previous_sweeps(&text);
            if floors.is_empty() {
                eprintln!(
                    "ratchet: committed BENCH_SIM.json holds no readable sweeps — \
                     running without a ratchet floor"
                );
            }
            floors
        }
        Err(_) => {
            eprintln!("ratchet: no committed BENCH_SIM.json — first run, no ratchet floor");
            Vec::new()
        }
    };
    let prev_secs = |name: &str| prev.iter().find(|(n, _)| n == name).map(|&(_, s)| s);

    let mut records = Vec::new();
    for s in sweeps() {
        if quick && s.heavy {
            eprintln!("skip (quick): {}", s.name);
            continue;
        }
        // best-of-2, with up to two extra attempts if the ratchet gate
        // would fire: a real regression reproduces across four runs,
        // container hiccups do not
        // beff-analyze: dynamic-call: sweep table fn pointer; targets are the sweeps() entries above
        let mut secs = (s.run)().min((s.run)());
        if let Some(prev) = prev_secs(s.name) {
            for _ in 0..2 {
                if secs <= ratchet_limit(prev) {
                    break;
                }
                // beff-analyze: dynamic-call: sweep table fn pointer; targets are the sweeps() entries above
                secs = secs.min((s.run)());
            }
        }
        let rec = Record {
            name: s.name,
            secs,
            seed_secs: seed_secs(s.name),
            prev_secs: prev_secs(s.name),
        };
        eprintln!(
            "{:<18} {:>8.2} s (seed {}, prev {})",
            rec.name,
            rec.secs,
            rec.seed_secs.map_or("-".into(), |s| format!("{s:.2} s")),
            rec.prev_secs
                .map_or("no committed baseline (new sweep)".into(), |s| format!("{s:.2} s")),
        );
        records.push(rec);
    }

    let psec = if quick { None } else { Some(parallel_section()) };
    let parallel = match &psec {
        None => Json::variant("skipped", Json::object().field("reason", "quick mode").build()),
        Some(p) => p.to_json(),
    };

    // Calibration residual gate (skipped in quick mode — verify.sh runs
    // the standalone `calibrate -- --check` gate there instead).
    let calibration = if quick {
        Json::variant("skipped", Json::object().field("reason", "quick mode").build())
    } else {
        check(DEFAULT_TOLERANCE).summary()
    };

    let seeds: Vec<Json> = SEED_BASELINES
        .iter()
        .map(|b| {
            Json::object()
                .field("name", b.name)
                .field("secs", &b.secs)
                .field("provenance", b.provenance)
                .build()
        })
        .collect();

    let doc = Json::object()
        .field("schema", "beff-perf-baseline/3")
        .field("mode", if quick { "quick" } else { "full" })
        .raw("seed_baselines", Json::array(seeds.iter()))
        .raw("sweeps", Json::array(records.iter()))
        .raw("parallel", parallel)
        .raw("calibration", calibration)
        .build();
    let text = beff_json::to_string_pretty(&doc);
    beff_json::validate(&text).expect("perf baseline JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_SIM.json");
    println!("wrote {out_path}");

    let mut failed = false;
    // Seed gate: any seeded sweep slower than the pre-optimization
    // harness fails.
    for r in records.iter().filter(|r| r.seed_regressed()) {
        eprintln!(
            "PERF REGRESSION: {} took {:.2} s vs seed {:.2} s ({:.2}x)",
            r.name,
            r.secs,
            r.seed_secs.unwrap_or(0.0),
            r.speedup()
        );
        failed = true;
    }
    // Ratchet gate: any sweep >10% slower than the previous committed
    // baseline fails.
    for r in records.iter().filter(|r| r.ratchet_regressed()) {
        eprintln!(
            "PERF RATCHET: {} took {:.2} s vs previous {:.2} s (> {:.0}% slack)",
            r.name,
            r.secs,
            r.prev_secs.unwrap_or(0.0),
            (RATCHET_SLACK - 1.0) * 100.0
        );
        failed = true;
    }
    // Parallel gates (full mode): batch results must be byte-identical
    // to the serial sweep, and the 8-worker balance projection must
    // clear 4x.
    if let Some(p) = &psec {
        if !p.identical {
            eprintln!("PARALLEL PARITY: batch results differ from the serial sweep");
            failed = true;
        }
        let projected = p.projected_speedup(8);
        if projected < 4.0 {
            eprintln!("PARALLEL BALANCE: projected 8-worker speedup {projected:.2}x < 4x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn previous_sweeps_reads_this_binarys_own_output() {
        let doc = r#"{
          "schema": "beff-perf-baseline/3",
          "sweeps": [
            {"name": "beff_t3e_64", "secs": 0.36, "seed_secs": 1.4, "speedup": 3.9},
            {"name": "beff_t3e_512", "secs": 4.1, "prev_secs": 4.0},
            {"name": "fresh_sweep", "secs": 1.25, "ratchet": "no committed baseline (new sweep)"}
          ],
          "parallel": {"skipped": {"reason": "quick mode"}}
        }"#;
        assert_eq!(
            previous_sweeps(doc),
            vec![
                ("beff_t3e_64".to_string(), 0.36),
                ("beff_t3e_512".to_string(), 4.1),
                ("fresh_sweep".to_string(), 1.25),
            ]
        );
    }

    #[test]
    fn unreadable_or_shapeless_baselines_yield_no_floors() {
        assert!(previous_sweeps("").is_empty());
        assert!(previous_sweeps("{ not json").is_empty());
        assert!(previous_sweeps(r#"{"schema": "x"}"#).is_empty(), "no sweeps field");
        assert!(previous_sweeps(r#"{"sweeps": 3}"#).is_empty(), "sweeps not an array");
        assert!(previous_sweeps(r#"{"sweeps": []}"#).is_empty());
        // Records missing a name or secs are skipped, not fatal.
        assert_eq!(
            previous_sweeps(r#"{"sweeps": [{"name": "a"}, {"secs": 1.0}, {"name": "b", "secs": 2}]}"#),
            vec![("b".to_string(), 2.0)]
        );
    }

    #[test]
    fn missing_floor_means_no_ratchet_gate() {
        let rec = Record { name: "fresh_sweep", secs: 9999.0, seed_secs: None, prev_secs: None };
        assert!(!rec.ratchet_regressed(), "a new sweep has no floor to regress against");
        assert!(!rec.seed_regressed());
        let json = beff_json::to_string(&rec);
        assert!(json.contains("no committed baseline"), "{json}");
    }

    #[test]
    fn present_floor_still_gates() {
        let rec = Record { name: "s", secs: 2.0, seed_secs: None, prev_secs: Some(1.0) };
        assert!(rec.ratchet_regressed(), "2.0 s > 1.0 * 1.10 + 0.25");
        let ok = Record { name: "s", secs: 1.3, seed_secs: None, prev_secs: Some(1.0) };
        assert!(!ok.ratchet_regressed(), "1.3 s <= 1.35 s limit");
    }
}
