//! Regenerates **Table 2** of the paper: the b_eff_io pattern list,
//! printed from the code (the invariants ΣU = 64 etc. are enforced by
//! the unit tests of `beff-core::beffio::patterns`).
//!
//! Usage: `cargo run -p beff-bench --bin table2_patterns`

use beff_core::beffio::{all_patterns, mpart, sum_u};
use beff_netsim::{GB, MB};
use beff_report::{Align, Table};

fn main() {
    let mp = mpart(2 * GB); // a 2 GB node: M_PART = 16 MB
    let mut table =
        Table::new(&["type", "No.", "l (disk chunk)", "L (per call)", "U"]).align(0, Align::Left);
    for p in all_patterns() {
        table.row(&[
            format!("{}: {}", p.ptype as usize, p.ptype.name()),
            p.id.to_string(),
            if p.fillup { "fill up segment".into() } else { p.chunk_label() },
            if p.fillup || p.chunks_per_call == 1 {
                ":=l".into()
            } else {
                format!("{} B ({} chunks)", p.call_bytes(mp), p.chunks_per_call)
            },
            p.u.to_string(),
        ]);
    }
    println!("Table 2 — the b_eff_io patterns (M_PART = {} MB here)\n", mp / MB);
    println!("{}", table.render());
    println!("sum of U = {} (paper: 64)", sum_u());
}
