//! Ablation: filesystem-cache size sweep — the §5.4 caching
//! discussion. A short benchmark on a machine with a big cache (the
//! NEC SX-5's 2 GB SFS cache) reports bandwidths above the disks'
//! hardware peak; growing T (or shrinking the cache) pushes the value
//! back toward disk speed. Verifies the paper's warning that "one may
//! use any schedule time T" is a real loophole.
//!
//! Usage: `cargo run --release -p beff-bench --bin ablation_cache [--full]`

use beff_bench::{full_mode, PartitionRunner};
use beff_core::beffio::BeffIoConfig;
use beff_machines::by_key;
use beff_netsim::MB;
use beff_report::{Align, Table};

fn main() {
    let base = by_key("sx5").expect("machine");
    let n = 4;
    let disk_peak =
        base.io.as_ref().map(|io| io.servers as f64 * io.server_mbps).unwrap_or(0.0);

    let (t_short, t_long) = if full_mode() { (600.0, 1800.0) } else { (10.0, 60.0) };

    let mut table = Table::new(&[
        "cache",
        "T s",
        "write MB/s",
        "read MB/s",
        "b_eff_io MB/s",
        "best pattern MB/s",
        "best vs disk peak",
    ])
    .align(0, Align::Left);

    for cache_mb in [0u64, 256, 2048] {
        let mut m = base.clone();
        if let Some(io) = &mut m.io {
            io.cache_bytes = cache_mb * MB;
        }
        // one resident world per cache variant, shared by both T runs
        // (the filesystem itself is rebuilt fresh inside each run)
        let runner = PartitionRunner::new(&m, n);
        for t in [t_short, t_long] {
            let cfg = BeffIoConfig::paper(m.mem_per_node).with_t(t);
            let r = runner.beffio(&cfg);
            eprintln!("done: cache={cache_mb}MB T={t}");
            let w = r.method_value(beff_core::beffio::AccessMethod::InitialWrite).unwrap();
            let rd = r.method_value(beff_core::beffio::AccessMethod::Read).unwrap();
            // the §5.4 anecdote concerns the *fastest* cached pattern —
            // "other benchmark programs have reported a bandwidth
            // significantly higher than the hardware peak of the disks"
            let best = r
                .methods
                .iter()
                .flat_map(|m| m.types.iter())
                .flat_map(|ty| ty.patterns.iter())
                .map(|p| p.mbps())
                .fold(0.0f64, f64::max);
            table.row(&[
                format!("{cache_mb} MB"),
                format!("{t:.0}"),
                format!("{w:.1}"),
                format!("{rd:.1}"),
                format!("{:.1}", r.beff_io),
                format!("{best:.0}"),
                format!("{:.2}x", best / disk_peak),
            ]);
        }
    }

    println!("\nAblation — filesystem cache vs schedule time (SX-5, {n} procs)");
    println!("disk hardware peak: {disk_peak:.0} MB/s\n");
    println!("{}", table.render());
    println!("expected shape: with a big cache the fastest pattern exceeds the disk");
    println!("hardware peak (the paper's SX-5 anecdote); without a cache it cannot.");
}
