//! Traffic attribution: where do a pattern's bytes actually go?
//!
//! Runs one ring pattern and one random pattern at L_max on the T3E
//! model and prints the per-link-kind traffic report — the mechanism
//! behind Table 1's "negative effect of random neighbor locations":
//! random placement multiplies the hop traffic while the endpoint
//! traffic stays identical.
//!
//! Usage: `cargo run --release -p beff-bench --bin traffic [--procs N]`

use beff_core::beff::{ring_patterns, random_patterns, Method, Transfers};
use beff_machines::t3e;
use beff_mpi::World;
use beff_netsim::{traffic_report, TrafficReport, MB};
use beff_report::{Align, Table};

fn run_pattern(
    machine: &beff_machines::Machine,
    procs: usize,
    random: bool,
) -> (TrafficReport, f64) {
    let net = machine.network();
    let net2 = std::sync::Arc::clone(&net);
    let times = World::sim_partition(net, procs).run(|c| {
        let n = c.size();
        let patterns =
            if random { random_patterns(n, 0xB0EF) } else { ring_patterns(n) };
        let p = patterns.last().expect("one-big-ring pattern");
        let (left, right) = p.neighbors[c.rank()];
        let mut tr = Transfers::new(c, MB);
        c.barrier();
        let t0 = c.now();
        for _ in 0..8 {
            tr.ring_iteration(c, Method::NonBlocking, left, right, MB);
        }
        c.allreduce_scalar(c.now() - t0, beff_mpi::ReduceOp::Max)
    });
    let report = traffic_report(&net2);
    let bytes = 2.0 * procs as f64 * 8.0 * MB as f64;
    (report, bytes / MB as f64 / times[0])
}

fn main() {
    let procs: usize = std::env::args()
        .skip_while(|a| a != "--procs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let machine = t3e();

    let mut table = Table::new(&[
        "pattern",
        "MB/s",
        "port bytes",
        "mem bytes",
        "hop bytes",
        "hops/message",
        "hottest hop link",
    ])
    .align(0, Align::Left);

    for random in [false, true] {
        let (r, mbps) = run_pattern(&machine, procs, random);
        table.row(&[
            if random { "random (one big ring)" } else { "ring (one big ring)" }.to_string(),
            format!("{mbps:.0}"),
            format!("{} MB", r.port_out.bytes / MB),
            format!("{} MB", r.node_mem.bytes / MB),
            format!("{} MB", r.hop.bytes / MB),
            format!("{:.2}", r.hops_per_message()),
            format!("{} MB", r.hop.max_link_bytes / MB),
        ]);
        eprintln!("done: random={random}");
    }

    println!("\nTraffic attribution on the T3E torus ({procs} procs, 1 MB messages)\n");
    println!("{}", table.render());
    println!("ring neighbors are torus-adjacent (~1 hop/message); random placement");
    println!("forces dimension-order routes of ~6 hops and concentrates load on");
    println!("individual links — that is where the random patterns' bandwidth goes.");
}
