//! Calibrates the machine-model constants against the paper's target
//! set (Table 1 rows, ping-pong, L_max; Fig. 1 balance rides on b_eff)
//! and gates the residuals.
//!
//! Usage:
//!   `calibrate -- --check [--tolerance 0.25] [--out results/calibration.json]
//!                 [--golden results/calibration.json]`
//!       Replay every Table 1 row on the catalog constants, write the
//!       residual report, and exit non-zero if any gated metric strays
//!       beyond the tolerance or a shape claim breaks. This is the CI
//!       gate `scripts/verify.sh` runs (no refit). `--golden FILE`
//!       additionally requires the report to match a committed golden
//!       byte-for-byte (the refactor-inertness gate).
//!   `calibrate -- --fit [group ...]`
//!       Coordinate descent over the named fit groups (default: all);
//!       prints the fitted constants to paste into `crates/machines`.
//!       Fitting never edits source — constants are baked by hand so
//!       the diff stays reviewable.

use beff_bench::calibration::{check, fit_group, fit_groups, DEFAULT_TOLERANCE};
use beff_bench::has_flag;

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn run_fit() {
    let requested: Vec<String> = std::env::args()
        .skip_while(|a| a != "--fit")
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let sweeps: usize =
        arg_after("--sweeps").map(|s| s.parse().expect("--sweeps N")).unwrap_or(3);
    for group in fit_groups() {
        if !requested.is_empty() && !requested.iter().any(|r| r == group.name) {
            continue;
        }
        let (fitted, obj) = fit_group(&group, sweeps);
        println!("\n== fitted {} (objective {obj:.4}) ==", group.name);
        println!("machines: {:?}", group.keys);
        println!("o_send/o_recv: {:.3e}", fitted.o_send);
        println!("port:     Tier::new({:.3e}, {:.1})", fitted.port.latency, fitted.port.mbps);
        println!(
            "node_mem: Tier::new({:.3e}, {:.1})",
            fitted.node_mem.latency, fitted.node_mem.mbps
        );
        println!("hop:      Tier::new({:.3e}, {:.1})", fitted.hop.latency, fitted.hop.mbps);
        println!("nic:      Tier::new({:.3e}, {:.1})", fitted.nic.latency, fitted.nic.mbps);
        match fitted.backplane {
            Some(bp) => {
                println!("backplane: Some(Tier::new({:.3e}, {:.1}))", bp.latency, bp.mbps)
            }
            None => println!("backplane: None"),
        }
        println!("contention: {:.3}", fitted.contention);
    }
}

fn run_check() -> bool {
    let tolerance: f64 = arg_after("--tolerance")
        .map(|s| s.parse().expect("--tolerance X"))
        .unwrap_or(DEFAULT_TOLERANCE);
    let out = arg_after("--out").unwrap_or_else(|| "results/calibration.json".to_string());
    let report = check(tolerance);

    println!(
        "\nCalibration residuals (gate: averaged metrics within ±{:.0}%)\n",
        tolerance * 100.0
    );
    for row in &report.rows {
        let lmax_ok = row.lmax_mb_measured == row.lmax_mb_paper;
        print!("{:<12} x{:<4}", row.machine_key, row.procs);
        print!(
            " Lmax {} MB {}",
            row.lmax_mb_measured,
            if lmax_ok { "=" } else { "BREACH" }
        );
        for m in &row.metrics {
            if !m.gated {
                continue;
            }
            let flag = if m.within(tolerance) { "" } else { " BREACH" };
            print!("  {} {:.2}{}", m.metric, m.ratio(), flag);
        }
        println!();
    }
    for s in &report.shapes {
        println!("shape {:<24} {}  ({})", s.name, if s.pass { "ok" } else { "BREACH" }, s.detail);
    }

    let text = beff_json::to_string_pretty(&report);
    beff_json::validate(&text).expect("calibration JSON must be well-formed");
    let text = format!("{text}\n");
    std::fs::write(&out, &text).expect("write calibration report");
    if let Some(golden) = arg_after("--golden") {
        let want = std::fs::read_to_string(&golden).expect("read golden calibration report");
        if text != want {
            eprintln!("calibrate: report is not byte-identical to golden {golden}");
            return false;
        }
        println!("calibrate: byte-identical to golden {golden}");
    }
    println!(
        "\nwrote {out}: {} ({} breaches)",
        if report.pass() { "PASS" } else { "FAIL" },
        report.breaches()
    );
    report.pass()
}

fn main() {
    if has_flag("--fit") {
        run_fit();
        return;
    }
    // default: --check (the CI gate)
    if !run_check() {
        std::process::exit(1);
    }
}
