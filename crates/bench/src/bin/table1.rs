//! Regenerates **Table 1** of the paper: b_eff results for every system
//! row, side by side with the published numbers.
//!
//! Usage: `cargo run --release -p beff-bench --bin table1 [--full] [--claims]`

use beff_bench::{beff_cfg, has_flag, run_beff_on, vs};
use beff_machines::{by_key, table1_paper};
use beff_netsim::MB;
use beff_report::{Align, Table};

fn main() {
    let mut table = Table::new(&[
        "system",
        "procs",
        "b_eff (paper)",
        "/proc (paper)",
        "Lmax",
        "ping-pong (paper)",
        "at Lmax (paper)",
        "/proc at Lmax (paper)",
        "ring /proc at Lmax (paper)",
    ])
    .align(0, Align::Left);

    for row in table1_paper() {
        let machine =
            by_key(row.machine_key).expect("catalog covers table 1").sized_for(row.procs);
        let cfg = beff_cfg(&machine);
        let r = run_beff_on(&machine, row.procs, &cfg);
        let n = row.procs as f64;
        table.row(&[
            machine.name.to_string(),
            row.procs.to_string(),
            vs(r.beff, row.beff),
            vs(r.beff_per_proc, row.beff_per_proc),
            format!("{} MB", r.lmax / MB),
            match row.pingpong {
                Some(p) => vs(r.pingpong_mbps, p),
                None => format!("{:>8.0} (  n/a )", r.pingpong_mbps),
            },
            vs(r.beff_at_lmax, row.beff_at_lmax),
            vs(r.beff_at_lmax / n, row.per_proc_at_lmax),
            vs(r.ring_per_proc_at_lmax, row.ring_per_proc_at_lmax),
        ]);
        eprintln!("done: {} x{}", machine.key, row.procs);

        if has_flag("--claims") && row.machine_key == "t3e" && row.procs == 512 {
            // §2.2 claim: the T3E-512 communicates its total memory in
            // ~3.2 s
            let total_mem = 512.0 * machine.mem_per_proc as f64 / MB as f64;
            println!(
                "claim check: total memory {} MB / b_eff {:.0} MB/s = {:.1} s (paper: 3.2 s)",
                total_mem,
                r.beff,
                total_mem / r.beff
            );
        }
    }

    println!("\nTable 1 — effective bandwidth results, measured (paper)\n");
    println!("{}", table.render());
}
