//! The paper's §6 plan: "It is planned to use both benchmarks in the
//! *Top Clusters* list." This harness produces such a list from the
//! machine catalog — every system ranked by b_eff, with b_eff_io and
//! the balance factor alongside — and emits a SKaMPI-compatible dump of
//! the b_eff curves (the other §6 item).
//!
//! Usage: `cargo run --release -p beff-bench --bin top_clusters [--full] [--skampi]`

use beff_bench::{beff_cfg, beffio_cfg, has_flag, PartitionRunner};
use beff_core::Balance;
use beff_machines::catalog;
use beff_report::{skampi::SkampiReport, Align, Table};

fn main() {
    struct Row {
        name: String,
        procs: usize,
        beff: f64,
        beff_io: Option<f64>,
        balance: f64,
    }
    let mut rows = Vec::new();

    for machine in catalog() {
        // skip the duplicate SR 8000 placement variant in the ranking
        if machine.key == "sr8000-seq" {
            continue;
        }
        let n = machine.procs.min(32);
        let m = machine.sized_for(if n % 8 == 0 { n } else { machine.procs.min(16) });
        let n = m.procs.min(32);
        let cfg = beff_cfg(&m);
        // one resident world per system serves both benchmarks
        let runner = PartitionRunner::new(&m, n);
        let r = runner.beff(&cfg);
        eprintln!("done: {} b_eff", m.key);
        let beff_io = m.io.as_ref().map(|_| {
            let iocfg = beffio_cfg(&m).with_t(10.0);
            let v = runner.beffio(&iocfg).beff_io;
            eprintln!("done: {} b_eff_io", m.key);
            v
        });
        if has_flag("--skampi") {
            let mut rep = SkampiReport::new(m.name, "b_eff");
            rep.meta("processes", n).meta("Lmax_bytes", r.lmax);
            for p in &r.patterns {
                let pts: Vec<(f64, f64)> = r
                    .sizes
                    .iter()
                    .zip(&p.curve)
                    .map(|(&s, &b)| (s as f64, b))
                    .collect();
                rep.block(&p.name, "bytes", "MB/s", &pts);
            }
            let path = format!("skampi_{}.txt", m.key);
            std::fs::write(&path, rep.render()).expect("write skampi dump");
            eprintln!("wrote {path}");
        }
        rows.push(Row {
            name: m.name.to_string(),
            procs: n,
            beff: r.beff,
            beff_io,
            balance: Balance::new(r.beff, m.rmax_for(n)).factor(),
        });
    }

    rows.sort_by(|a, b| b.beff.partial_cmp(&a.beff).unwrap());

    let mut table = Table::new(&[
        "rank",
        "system",
        "procs",
        "b_eff MB/s",
        "b_eff_io MB/s",
        "balance B/flop",
    ])
    .align(1, Align::Left);
    for (i, r) in rows.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            r.name.clone(),
            r.procs.to_string(),
            format!("{:.0}", r.beff),
            r.beff_io.map_or("-".into(), |v| format!("{v:.1}")),
            format!("{:.4}", r.balance),
        ]);
    }
    println!("\nTop Clusters — ranked by effective bandwidth (paper §6)\n");
    println!("{}", table.render());
}
