//! Micro-benchmarks of the substrates: how fast the *simulator itself*
//! runs (host time per virtual event), which is what bounds how large a
//! machine the harness can model.
//!
//! Plain `Instant`-based timing — no external harness — so the numbers
//! come from `cargo run --release -p beff-bench --bin micro` with zero
//! registry dependencies. Each benchmark is warmed up, the iteration
//! count auto-calibrated to a ~0.2 s budget, and one table row printed.

use beff_core::beff::{run_beff, BeffConfig, MeasureSchedule};
use beff_machines::t3e;
use beff_mpi::World;
use beff_mpiio::FileView;
use beff_netsim::{MachineNet, NetParams, Topology, KB, MB};
use beff_pfs::{stripe_split, DataRef, Pfs, PfsConfig};
use beff_report::{Align, Table};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One measured row: calibrate, run, record.
struct Harness {
    table: Table,
}

impl Harness {
    fn new() -> Self {
        let table = Table::new(&["group", "benchmark", "iters", "total", "per-iter"])
            .align(0, Align::Left)
            .align(1, Align::Left);
        Self { table }
    }

    fn bench<R>(&mut self, group: &str, name: &str, mut f: impl FnMut() -> R) {
        // warm-up + calibration: one timed call sizes the batch
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.2 / once) as u64).clamp(1, 10_000_000);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = t1.elapsed().as_secs_f64();
        self.table.row(&[
            group.to_string(),
            name.to_string(),
            iters.to_string(),
            format!("{total:.3} s"),
            fmt_per_iter(total / iters as f64),
        ]);
    }
}

fn fmt_per_iter(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn bench_netsim(h: &mut Harness) {
    let net = MachineNet::new(Topology::Torus3D { dims: [8, 8, 8] }, NetParams::default());
    let path: Vec<usize> = net.split_route(0, 137).full();
    let mut t = 0.0;
    h.bench("netsim", "price_1mb_transfer", || {
        t += 1.0;
        net.price(&path, MB, t)
    });
    let topo = net.topology().clone();
    let mut buf = Vec::new();
    let mut i = 0usize;
    h.bench("netsim", "route_torus3d_uncached", || {
        i = (i + 97) % 512;
        topo.route_into(i, (i * 31) % 512, &mut buf);
        buf.len()
    });
    let mut j = 0usize;
    h.bench("netsim", "route_shared_table", || {
        j = (j + 1) % 64;
        net.split_route(j, (j + 1) % 64).full().len()
    });
}

fn bench_mpi(h: &mut Harness) {
    let net =
        Arc::new(MachineNet::new(Topology::Crossbar { procs: 4 }, NetParams::default()));
    h.bench("mpi", "sim_world_1000_sendrecv_x4procs", || {
        let net = Arc::clone(&net);
        World::sim(net).run(|comm| {
            let peer = comm.rank() ^ 1;
            let buf = [0u8; 64];
            let mut scratch = [0u8; 64];
            for _ in 0..1000 {
                comm.payload_sendrecv(peer, 1, &buf, Some(peer), Some(1), &mut scratch);
            }
            comm.now()
        })
    });
    h.bench("mpi", "allreduce_x8procs", || {
        World::real(8).run(|comm| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc += comm.allreduce_scalar(i as f64, beff_mpi::ReduceOp::Max);
            }
            acc
        })
    });
}

fn bench_sync(h: &mut Harness) {
    h.bench("sync", "channel_bounded_1k_msgs_x2threads", || {
        let (tx, rx) = beff_sync::bounded::<u64>(64);
        // beff-analyze: allow(threading): cross-thread channel micro-bench needs a real second thread
        let producer = std::thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).expect("receiver alive");
            }
        });
        let mut sum = 0u64;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        producer.join().expect("producer clean");
        sum
    });
}

fn bench_pfs(h: &mut Harness) {
    h.bench("pfs", "stripe_split_1mb_64k", || stripe_split(12345, MB, 64 * KB, 8));
    h.bench("pfs", "write_pricing", || {
        let pfs = Pfs::new(PfsConfig::default());
        let (f, mut t) = pfs.open("bench", 0.0);
        for i in 0..100u64 {
            t = pfs.write(0, &f, i * 32 * KB, DataRef::Len(32 * KB), t);
        }
        t
    });
}

fn bench_mpiio(h: &mut Harness) {
    let view = FileView::Strided { disp: 4096, block: 1024, stride: 16 * 1024 };
    h.bench("mpiio", "view_map_range_1mb_1k_chunks", || view.map_range(0, MB));
}

fn bench_beff(h: &mut Harness) {
    let machine = t3e();
    let cfg = BeffConfig {
        schedule: MeasureSchedule { loop_start: 2, reps: 1, ..MeasureSchedule::quick() },
        ..BeffConfig::quick(machine.mem_per_proc).without_extras()
    };
    h.bench("beff", "beff_t3e_8procs_micro_schedule", || {
        let out = World::sim_partition(machine.network(), 8).run(|comm| run_beff(comm, &cfg));
        out[0].beff
    });
}

fn main() {
    let mut h = Harness::new();
    bench_netsim(&mut h);
    bench_mpi(&mut h);
    bench_sync(&mut h);
    bench_pfs(&mut h);
    bench_mpiio(&mut h);
    bench_beff(&mut h);
    println!("{}", h.table.render());
}
