//! Golden determinism tests: the same schedule on the same machine
//! model must produce *byte-identical* results — across fresh worlds,
//! across runs of one resident [`PartitionRunner`], and between the
//! two. The token scheduler promises bit-determinism; these tests pin
//! it at the level the result files are generated from, so `results/`
//! regeneration is reproducible by construction.
//!
//! Serialized JSON is the comparison medium: it covers every f64 in
//! the result tree (formatting is deterministic), so two equal strings
//! mean bitwise-equal numbers.

use beff_bench::{run_beff_on, run_beffio_on, PartitionRunner};
use beff_core::beff::{run_beff, BeffConfig};
use beff_core::beffio::BeffIoConfig;
use beff_faults::{FaultPlan, FaultSession};
use beff_machines::by_key;
use beff_mpi::World;
use std::sync::Arc;

/// The table1 kernel at reduced scale: full pattern schedule, small
/// partition.
#[test]
fn table1_rows_are_byte_identical_across_runs_and_world_reuse() {
    let machine = by_key("t3e").expect("machine").sized_for(8);
    let cfg = BeffConfig::quick(machine.mem_per_proc);

    let fresh_a = beff_json::to_string(&run_beff_on(&machine, 8, &cfg));
    let fresh_b = beff_json::to_string(&run_beff_on(&machine, 8, &cfg));
    assert_eq!(fresh_a, fresh_b, "fresh worlds must agree bitwise");

    let runner = PartitionRunner::new(&machine, 8);
    let reused_a = beff_json::to_string(&runner.beff(&cfg));
    let reused_b = beff_json::to_string(&runner.beff(&cfg));
    assert_eq!(reused_a, reused_b, "world reuse must agree bitwise");
    assert_eq!(fresh_a, reused_a, "reuse must match a fresh world bitwise");
}

/// The fault layer's no-fault guarantee, pinned bitwise: a world with
/// an *empty* fault session attached must produce byte-identical
/// results to one with no session at all. Every fault hook guards
/// behind the session option before touching timing arithmetic, and
/// the empty plan's multipliers are exactly 1.0 (IEEE: `x * 1.0 == x`),
/// so the instrumented paths cannot perturb a single bit.
#[test]
fn empty_fault_session_is_bitwise_inert() {
    let machine = by_key("t3e").expect("machine").sized_for(8);
    let cfg = BeffConfig::quick(machine.mem_per_proc);

    let plain = {
        let cfg = cfg.clone();
        let mut rs =
            World::sim_partition(machine.network(), 8).run(move |c| run_beff(c, &cfg));
        beff_json::to_string(&rs.swap_remove(0))
    };
    let with_empty_session = {
        let session = FaultSession::new(FaultPlan::empty(), 8);
        let net = machine.network();
        let world = World::sim_partition(Arc::clone(&net), 8).with_faults(session);
        let mut rs = world.run(move |c| run_beff(c, &cfg));
        beff_json::to_string(&rs.swap_remove(0))
    };
    assert_eq!(plain, with_empty_session, "fault layer must be inert without a plan");
}

/// The table2/fig5 kernel (b_eff_io patterns) under world reuse: the
/// filesystem is rebuilt per run, the world is not.
#[test]
fn beffio_patterns_are_byte_identical_across_runs_and_world_reuse() {
    let machine = by_key("t3e").expect("machine").sized_for(4);
    let cfg = BeffIoConfig::quick(machine.mem_per_node).with_t(2.0);

    let fresh = beff_json::to_string(&run_beffio_on(&machine, 4, &cfg));
    let runner = PartitionRunner::new(&machine, 4);
    let reused_a = beff_json::to_string(&runner.beffio(&cfg));
    let reused_b = beff_json::to_string(&runner.beffio(&cfg));
    assert_eq!(reused_a, reused_b, "world reuse must agree bitwise");
    assert_eq!(fresh, reused_a, "reuse must match a fresh world bitwise");
}
