//! Chaos-suite invariants at test scale: termination, byte-identical
//! replay, monotone degradation, crash containment, and the fault-free
//! inertness of the resilient driver.
//!
//! The full matrix runs in `scripts/verify.sh` via the `chaos` binary
//! (release build); these tests pin the same invariants on a smaller
//! scenario set so `cargo test` catches regressions without the
//! binary.

use beff_bench::chaos::{io_check, run_scenario, scenarios, Scenario};
use beff_bench::resilient::ResilientRunner;
use beff_bench::chaos::{chaos_cfg, chaos_net, CHAOS_PROCS};
use beff_faults::{FaultPlan, FaultSpec};
use beff_machines::by_key;
use std::sync::Arc;

const SEED: u64 = 0x7E57;

fn scenario(name: &str) -> Scenario {
    scenarios(SEED)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"))
}

#[test]
fn baseline_is_stable_usable_and_replayable() {
    let o = run_scenario(&scenario("baseline"));
    assert!(o.replay_identical, "fault-free replay must be byte-identical");
    assert!(o.report.usable(), "fault-free run must produce b_eff");
    assert!(o.report.stability.stable(), "fault-free run must be stable");
    assert_eq!(o.report.stability.valid, 12);
}

#[test]
fn drop_injection_replays_bitwise_and_degrades_monotonically() {
    let low = run_scenario(&scenario("drops-0.25"));
    let high = run_scenario(&scenario("drops-1"));
    assert!(low.replay_identical && high.replay_identical);
    assert!(low.report.stability.drops > 0, "severity 0.25 must drop something");
    assert!(
        high.report.stability.drops > low.report.stability.drops,
        "higher severity must drop more"
    );
    let (bl, bh) = (low.beff().expect("usable"), high.beff().expect("usable"));
    let baseline = run_scenario(&scenario("baseline")).beff().expect("usable");
    assert!(
        baseline >= bl && bl >= bh,
        "b_eff must fall with drop severity: {baseline} >= {bl} >= {bh}"
    );
}

#[test]
fn rank_crash_is_contained_and_flagged() {
    let o = run_scenario(&scenario("crash-1"));
    assert!(o.replay_identical, "crash runs must replay byte-identically");
    let st = &o.report.stability;
    assert!(!st.crashed_ranks.is_empty(), "the dead rank must be reported");
    assert!(st.failed > 0, "patterns after the crash must be marked failed");
    // Containment: the driver kept going and emitted a full report.
    assert_eq!(st.patterns.len(), 12);
}

#[test]
fn degraded_filesystem_prices_writes_slower() {
    let io = io_check();
    assert!(io.ok, "degraded {} must exceed healthy {}", io.t_degraded, io.t_healthy);
}

#[test]
fn resilient_runner_without_plan_attaches_no_fault_session() {
    let machine = by_key("t3e").expect("machine").sized_for(8);
    let runner = ResilientRunner::new(&machine, 8, FaultPlan::empty());
    assert!(runner.fault_session().is_none(), "empty plan must mean no session");
    let r = runner.run(&chaos_cfg());
    assert!(r.usable() && r.stability.stable());
    assert!(r.stability.fault_seed.is_none());
}

#[test]
fn dead_link_fails_routed_patterns_but_run_completes() {
    let net = chaos_net();
    let plan = FaultSpec::none(SEED).with_severity(1.0).dead_links(1).materialize(&net);
    assert_eq!(plan.dead_links.len(), 1);
    let runner = ResilientRunner::on_net(Arc::clone(&net), CHAOS_PROCS, plan);
    let r = runner.run(&chaos_cfg());
    let st = &r.stability;
    assert_eq!(st.dead_links.len(), 1, "report must name the dead link");
    assert!(st.failed > 0, "patterns crossing the dead link must fail");
    assert_eq!(st.patterns.len(), 12, "driver must visit every pattern");
}
