//! Integration tests: the MPI-IO layer over both engines and both
//! storage backends, with data-integrity verification.

use beff_mpi::World;
use beff_mpiio::{AMode, FileView, Hints, IoWorld, MpiFile};
use beff_netsim::{MachineNet, NetParams, Topology, MB};
use beff_pfs::{LocalDisk, Pfs, PfsConfig};
use std::sync::Arc;

fn sim_world(n: usize) -> (World, Arc<IoWorld>) {
    let net = Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
    let pfs = Arc::new(Pfs::new(PfsConfig {
        clients: n,
        store_data: true,
        open_cost: 1e-4,
        close_cost: 1e-4,
        ..PfsConfig::default()
    }));
    (World::sim(net).copy_data(true), IoWorld::sim(pfs))
}

#[test]
fn individual_write_read_roundtrip_sim() {
    let (w, io) = sim_world(4);
    let ok = w.run(|c| {
        let mut f =
            MpiFile::open(c, &io, "t1", AMode::read_write_create(), Hints::default()).unwrap();
        let r = c.rank() as u8;
        let chunk = vec![r; 1000];
        f.seek(c.rank() as u64 * 1000);
        f.write(c, &chunk);
        f.sync(c);
        c.barrier();
        // read a neighbor's chunk
        let peer = (c.rank() + 1) % c.size();
        let mut buf = vec![0u8; 1000];
        f.read_at(c, peer as u64 * 1000, &mut buf);
        let good = buf.iter().all(|&b| b == peer as u8);
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn strided_view_maps_interleaved_chunks() {
    let (w, io) = sim_world(4);
    let ok = w.run(|c| {
        let n = c.size() as u64;
        let l = 256u64;
        let mut f =
            MpiFile::open(c, &io, "t2", AMode::read_write_create(), Hints::default()).unwrap();
        f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
        let data = vec![c.rank() as u8 + 1; 4 * l as usize];
        f.write(c, &data);
        f.sync(c);
        c.barrier();
        // rank 0 checks the physical interleaving with a contiguous view
        let mut good = true;
        if c.rank() == 0 {
            f.set_view(FileView::Contiguous { disp: 0 });
            let mut buf = vec![0u8; (4 * n * l) as usize];
            let nread = f.read_at(c, 0, &mut buf);
            good &= nread == 4 * n * l;
            for (i, chunk) in buf.chunks(l as usize).enumerate() {
                let owner = (i as u64 % n) as u8 + 1;
                good &= chunk.iter().all(|&b| b == owner);
            }
        }
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn write_all_two_phase_preserves_data() {
    let (w, io) = sim_world(4);
    let ok = w.run(|c| {
        let n = c.size() as u64;
        let l = 64u64; // small chunks -> many pieces -> exchange path
        let chunks = 32u64;
        let mut f =
            MpiFile::open(c, &io, "t3", AMode::read_write_create(), Hints::default()).unwrap();
        f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
        let data: Vec<u8> = (0..l * chunks).map(|i| (c.rank() as u64 * 31 + i) as u8).collect();
        let written = f.write_all(c, &data);
        assert_eq!(written, data.len() as u64);
        f.sync(c);
        c.barrier();
        // verify with collective read through the same view
        f.seek(0);
        let mut back = vec![0u8; data.len()];
        f.read_all(c, &mut back);
        let good = back == data;
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn write_all_direct_path_for_contiguous_requests() {
    let (w, io) = sim_world(4);
    let ok = w.run(|c| {
        let mut f =
            MpiFile::open(c, &io, "t4", AMode::read_write_create(), Hints::default()).unwrap();
        let seg = 4096u64;
        f.set_view(FileView::Contiguous { disp: c.rank() as u64 * seg });
        let data = vec![c.rank() as u8 + 10; seg as usize];
        f.write_all(c, &data);
        f.sync(c);
        c.barrier();
        let mut back = vec![0u8; seg as usize];
        f.seek(0);
        f.read_all(c, &mut back);
        let good = back == data;
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn shared_pointer_claims_disjoint_regions() {
    let (w, io) = sim_world(4);
    let sizes = w.run(|c| {
        let mut f =
            MpiFile::open(c, &io, "t5", AMode::read_write_create(), Hints::default()).unwrap();
        let data = vec![c.rank() as u8 + 1; 500];
        f.write_shared(c, &data);
        c.barrier();
        let size = f.size();
        let ptr = f.shared_pos();
        f.close(c);
        (size, ptr)
    });
    for (size, ptr) in sizes {
        assert_eq!(size, 2000);
        assert_eq!(ptr, 2000);
    }
}

#[test]
fn write_ordered_is_rank_ordered() {
    let (w, io) = sim_world(4);
    let ok = w.run(|c| {
        let mut f =
            MpiFile::open(c, &io, "t6", AMode::read_write_create(), Hints::default()).unwrap();
        let data = vec![c.rank() as u8 + 1; 100];
        f.write_ordered(c, &data);
        f.write_ordered(c, &data); // second round appends after everyone
        f.sync(c);
        c.barrier();
        let mut good = true;
        if c.rank() == 0 {
            let mut buf = vec![0u8; 800];
            f.read_at(c, 0, &mut buf);
            for round in 0..2 {
                for r in 0..4 {
                    let s = round * 400 + r * 100;
                    good &= buf[s..s + 100].iter().all(|&b| b == r as u8 + 1);
                }
            }
        }
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn delete_on_close_removes_file() {
    let (w, io) = sim_world(2);
    let io2 = Arc::clone(&io);
    w.run(|c| {
        let f = MpiFile::open(
            c,
            &io2,
            "t7",
            AMode::read_write_create().with_delete_on_close(),
            Hints::default(),
        )
        .unwrap();
        f.close(c);
    });
    if let beff_mpiio::Storage::Sim(pfs) = io.storage() {
        assert!(!pfs.exists("t7"));
    } else {
        panic!("expected sim storage");
    }
}

#[test]
fn local_backend_roundtrip_real_mode() {
    let disk = Arc::new(LocalDisk::temp("mpiio-int").unwrap());
    let io = IoWorld::local(Arc::clone(&disk));
    let ok = World::real(3).run(|c| {
        let mut f =
            MpiFile::open(c, &io, "file.dat", AMode::read_write_create(), Hints::default())
                .unwrap();
        let data = vec![c.rank() as u8 + 1; 2048];
        f.seek(c.rank() as u64 * 2048);
        f.write(c, &data);
        f.sync(c);
        c.barrier();
        let peer = (c.rank() + 2) % c.size();
        let mut buf = vec![0u8; 2048];
        f.read_at(c, peer as u64 * 2048, &mut buf);
        let good = buf.iter().all(|&b| b == peer as u8 + 1);
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
    drop(io);
    match Arc::try_unwrap(disk) {
        Ok(d) => d.destroy(),
        Err(_) => panic!("disk still referenced"),
    }
}

#[test]
fn local_backend_collective_write_all() {
    let disk = Arc::new(LocalDisk::temp("mpiio-cb").unwrap());
    let io = IoWorld::local(Arc::clone(&disk));
    let ok = World::real(4).run(|c| {
        let n = c.size() as u64;
        let l = 128u64;
        let mut f = MpiFile::open(c, &io, "cb.dat", AMode::read_write_create(), Hints::default())
            .unwrap();
        f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
        let data: Vec<u8> = (0..8 * l).map(|i| (i as u8) ^ (c.rank() as u8)).collect();
        f.write_all(c, &data);
        c.barrier();
        f.seek(0);
        let mut back = vec![0u8; data.len()];
        f.read_all(c, &mut back);
        let good = back == data;
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn two_phase_beats_per_chunk_writes_in_virtual_time() {
    // The core claim behind pattern type 0: collective buffering turns
    // many small strided chunks into few large writes.
    let n = 8usize;
    let net = Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
    let mk_pfs = || {
        Arc::new(Pfs::new(PfsConfig {
            clients: n,
            store_data: false,
            cache_bytes: 0,
            ..PfsConfig::default()
        }))
    };

    let run = |hints: Hints, pfs: Arc<Pfs>| -> f64 {
        let io = IoWorld::sim(pfs);
        let net = Arc::clone(&net);
        let times = World::sim(net).run(move |c| {
            let nn = c.size() as u64;
            let l = 4096u64;
            let chunks = 64u64;
            let mut f =
                MpiFile::open(c, &io, "perf", AMode::create_write(), hints).unwrap();
            f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: nn * l });
            let data = vec![0u8; (l * chunks) as usize];
            let t0 = c.now();
            f.write_all(c, &data);
            f.sync(c);
            c.barrier();
            let dt = c.now() - t0;
            f.close(c);
            dt
        });
        times.into_iter().fold(0.0, f64::max)
    };

    let with_cb = run(Hints::default(), mk_pfs());
    let without_cb = run(Hints::no_collective_buffering(), mk_pfs());
    assert!(
        with_cb < without_cb / 2.0,
        "two-phase must win by 2x+: with={with_cb} without={without_cb}"
    );
}

#[test]
fn sync_costs_virtual_time_when_cache_is_dirty() {
    let n = 2usize;
    let net = Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
    let pfs = Arc::new(Pfs::new(PfsConfig {
        clients: n,
        store_data: false,
        cache_bytes: 512 * MB,
        server_mbps: 10.0,
        servers: 2,
        ..PfsConfig::default()
    }));
    let io = IoWorld::sim(pfs);
    let times = World::sim(net).run(move |c| {
        let mut f = MpiFile::open(c, &io, "s", AMode::create_write(), Hints::default()).unwrap();
        f.seek(c.rank() as u64 * 32 * MB);
        f.write(c, &vec![0u8; (32 * MB) as usize]);
        let before_sync = c.now();
        f.sync(c);
        let after_sync = c.now();
        f.close(c);
        after_sync - before_sync
    });
    // 64 MB dirty over 20 MB/s aggregate: somebody pays multiple seconds
    assert!(times.iter().cloned().fold(0.0, f64::max) > 1.0, "times={times:?}");
}

#[test]
fn sieved_read_roundtrips_strided_data() {
    let (w, io) = sim_world(2);
    let ok = w.run(|c| {
        let n = c.size() as u64;
        let l = 64u64;
        let mut f = MpiFile::open(c, &io, "sieve", AMode::read_write_create(), Hints::default())
            .unwrap();
        f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
        let data: Vec<u8> = (0..l * 40).map(|i| (i as u8) ^ (c.rank() as u8 + 3)).collect();
        f.write_all(c, &data);
        f.sync(c);
        c.barrier();
        // noncollective strided read: takes the data-sieving path
        // (ds_read defaults on; the whole span fits the sieve buffer)
        let mut back = vec![0u8; data.len()];
        let nread = f.read_at(c, 0, &mut back);
        let good = nread == data.len() as u64 && back == data;
        f.close(c);
        good
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn sieved_write_matches_per_segment_write() {
    // with ds_write on, a strided noncollective write must produce the
    // same file contents as the plain per-segment path
    let run = |ds_write: bool| -> Vec<u8> {
        let (w, io) = sim_world(2);
        let io2 = Arc::clone(&io);
        let out = w.run(move |c| {
            let n = c.size() as u64;
            let l = 128u64;
            let hints = Hints { ds_write, ..Hints::default() };
            let mut f =
                MpiFile::open(c, &io2, "dsw", AMode::read_write_create(), hints).unwrap();
            // lay down a background pattern so RMW has bytes to preserve
            if c.rank() == 0 {
                f.set_view(FileView::Contiguous { disp: 0 });
                f.write_at(c, 0, &vec![0xEE; (8 * n * l) as usize]);
                f.sync(c);
            }
            c.barrier();
            f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: n * l });
            let data: Vec<u8> = (0..4 * l).map(|i| (i as u8) ^ (c.rank() as u8)).collect();
            f.write_at(c, 0, &data);
            f.sync(c);
            c.barrier();
            let mut whole = vec![0u8; (8 * n * l) as usize];
            f.set_view(FileView::Contiguous { disp: 0 });
            f.read_at(c, 0, &mut whole);
            f.close(c);
            whole
        });
        out.into_iter().next().unwrap()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn sieving_reduces_virtual_read_time_for_fragmented_access() {
    let n = 2usize;
    let net = Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
    let mk = || {
        Arc::new(Pfs::new(PfsConfig {
            clients: n,
            store_data: false,
            cache_bytes: 0,
            ..PfsConfig::default()
        }))
    };
    let run = |ds_read: bool, pfs: Arc<Pfs>| -> f64 {
        let io = IoWorld::sim(pfs);
        let net = Arc::clone(&net);
        let out = World::sim(net).run(move |c| {
            let nn = c.size() as u64;
            let l = 512u64; // tiny fragmented chunks
            let hints = Hints { ds_read, ..Hints::default() };
            let mut f = MpiFile::open(c, &io, "dsr", AMode::create_write(), hints).unwrap();
            f.set_view(FileView::Strided { disp: c.rank() as u64 * l, block: l, stride: nn * l });
            let data = vec![0u8; (l * 256) as usize];
            f.write_all(c, &data);
            f.sync(c);
            c.barrier();
            let t0 = c.now();
            let mut back = vec![0u8; data.len()];
            f.seek(0);
            f.read_at(c, 0, &mut back);
            let dt = c.now() - t0;
            f.close(c);
            dt
        });
        out.into_iter().fold(0.0, f64::max)
    };
    let with_ds = run(true, mk());
    let without_ds = run(false, mk());
    assert!(
        with_ds < without_ds / 3.0,
        "sieving must collapse per-chunk overheads: {with_ds} vs {without_ds}"
    );
}
