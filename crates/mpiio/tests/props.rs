//! Property tests for the MPI-IO layer: shared-pointer disjointness
//! and ordered-write layout under arbitrary message sizes.

use beff_check::{check_n, ensure, ensure_eq};
use beff_mpi::World;
use beff_mpiio::{AMode, Hints, IoWorld, MpiFile};
use beff_netsim::{MachineNet, NetParams, Topology};
use beff_pfs::{Pfs, PfsConfig};
use std::sync::Arc;

fn world(n: usize) -> (World, Arc<IoWorld>) {
    let net = Arc::new(MachineNet::new(Topology::Crossbar { procs: n }, NetParams::default()));
    let pfs = Arc::new(Pfs::new(PfsConfig {
        clients: n,
        store_data: true,
        ..PfsConfig::default()
    }));
    (World::sim(net).copy_data(true), IoWorld::sim(pfs))
}

#[test]
fn write_shared_claims_are_disjoint_and_complete() {
    check_n("write shared claims are disjoint and complete", 12, |g| {
        let sizes = Arc::new((0..4).map(|_| g.usize(1..=4_999)).collect::<Vec<_>>());
        let rounds = g.usize(1..=3);
        let (w, io) = world(4);
        let total_expected: u64 =
            (sizes.iter().map(|&s| s as u64).sum::<u64>()) * rounds as u64;
        let finals = w.run(|c| {
            let mut f = MpiFile::open(c, &io, "ws", AMode::read_write_create(), Hints::default())
                .unwrap();
            let my = vec![c.rank() as u8 + 1; sizes[c.rank()]];
            for _ in 0..rounds {
                f.write_shared(c, &my);
            }
            c.barrier();
            let (size, ptr) = (f.size(), f.shared_pos());
            f.close(c);
            (size, ptr)
        });
        for (size, ptr) in finals {
            ensure_eq!(size, total_expected);
            ensure_eq!(ptr, total_expected);
        }
    });
}

#[test]
fn write_ordered_layout_is_rank_major() {
    check_n("write ordered layout is rank major", 12, |g| {
        let sizes = Arc::new((0..3).map(|_| g.usize(1..=1_999)).collect::<Vec<_>>());
        let (w, io) = world(3);
        let ok = w.run(|c| {
            let mut f = MpiFile::open(c, &io, "wo", AMode::read_write_create(), Hints::default())
                .unwrap();
            let my = vec![c.rank() as u8 + 1; sizes[c.rank()]];
            f.write_ordered(c, &my);
            f.sync(c);
            c.barrier();
            let mut good = true;
            if c.rank() == 0 {
                let total: usize = sizes.iter().sum();
                let mut buf = vec![0u8; total];
                f.read_at(c, 0, &mut buf);
                let mut pos = 0;
                for (r, &len) in sizes.iter().enumerate() {
                    good &= buf[pos..pos + len].iter().all(|&b| b == r as u8 + 1);
                    pos += len;
                }
            }
            f.close(c);
            good
        });
        ensure!(ok.iter().all(|&b| b));
    });
}

#[test]
fn explicit_offsets_and_pointers_agree() {
    check_n("explicit offsets and pointers agree", 12, |g| {
        let chunks = Arc::new(g.vec(1..=7, |g| g.usize(1..=2_999)));
        let (w, io) = world(2);
        let ok = w.run(|c| {
            let mut f = MpiFile::open(c, &io, "eq", AMode::read_write_create(), Hints::default())
                .unwrap();
            let base = c.rank() as u64 * 1_000_000;
            // write through the individual pointer
            f.seek(base);
            let mut all = Vec::new();
            for (i, &len) in chunks.iter().enumerate() {
                let data = vec![(i + 1 + c.rank() * 100) as u8; len];
                f.write(c, &data);
                all.extend_from_slice(&data);
            }
            f.sync(c);
            // read back with explicit offsets
            let mut back = vec![0u8; all.len()];
            f.read_at(c, base, &mut back);
            let good = back == all && f.tell() == base + all.len() as u64;
            f.close(c);
            good
        });
        ensure!(ok.iter().all(|&b| b));
    });
}
