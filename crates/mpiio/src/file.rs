//! `MpiFile`: one rank's handle on a (collectively opened) file.
//!
//! Covers the MPI-IO surface b_eff_io exercises: collective open/close,
//! file views, explicit-offset and individual-pointer reads/writes,
//! shared-pointer access (noncollective `write_shared` and collective,
//! rank-ordered `write_ordered`), `sync`, and the collective
//! `write_all`/`read_all` implemented in [`crate::collective`].
//!
//! All offsets/pointers are in *view-linear* bytes: positions within
//! the byte stream the rank's [`FileView`] exposes.

use crate::amode::AMode;
use crate::hints::Hints;
use crate::view::FileView;
use crate::world::{IoWorld, Storage};
use beff_mpi::{Comm, EngineCfg};
use beff_pfs::{DataRef, FsFile, LocalFile};
use beff_sync::Mutex;
use std::io;
use std::sync::Arc;

/// Backend handle of one open file.
#[derive(Clone)]
pub enum Backing {
    Sim(Arc<FsFile>),
    Local(Arc<LocalFile>),
}

/// One rank's open file.
pub struct MpiFile {
    world: Arc<IoWorld>,
    backing: Backing,
    path: String,
    amode: AMode,
    hints: Hints,
    view: FileView,
    /// Individual file pointer (view-linear bytes).
    indiv: u64,
    /// Shared file pointer (view-linear bytes), common to all ranks.
    shared: Arc<Mutex<u64>>,
}

impl MpiFile {
    /// Collective open. Every rank of `comm` must call this with the
    /// same arguments.
    pub fn open(
        comm: &mut Comm,
        world: &Arc<IoWorld>,
        path: &str,
        amode: AMode,
        hints: Hints,
    ) -> io::Result<MpiFile> {
        // rank 0 creates/truncates, then everyone opens
        if comm.rank() == 0 {
            match world.storage() {
                Storage::Sim(pfs) => {
                    if !amode.create {
                        assert!(pfs.exists(path), "open without MPI_MODE_CREATE: {path}");
                    }
                    let (f, t) = pfs.open(path, comm.now());
                    comm.advance_to(t);
                    if amode.truncate {
                        f.truncate();
                    }
                }
                Storage::Local(disk) => {
                    let f = disk.open(path)?;
                    if amode.truncate {
                        f.truncate()?;
                    }
                }
            }
            *world.shared_ptr(path).lock() = 0;
        }
        comm.barrier();
        let backing = match world.storage() {
            Storage::Sim(pfs) => {
                let (f, t) = pfs.open(path, comm.now());
                comm.advance_to(t);
                Backing::Sim(f)
            }
            Storage::Local(disk) => Backing::Local(disk.open(path)?),
        };
        Ok(MpiFile {
            world: Arc::clone(world),
            backing,
            path: path.to_string(),
            amode,
            hints,
            view: FileView::default(),
            indiv: 0,
            shared: world.shared_ptr(path),
        })
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    pub fn view(&self) -> &FileView {
        &self.view
    }

    pub fn amode(&self) -> AMode {
        self.amode
    }

    /// `MPI_File_set_view`: resets both file pointers.
    pub fn set_view(&mut self, view: FileView) {
        self.view = view;
        self.indiv = 0;
        // the shared pointer is reset collectively by the caller side;
        // MPI requires all ranks to pass compatible views
    }

    /// `MPI_File_seek` (individual pointer, view-linear bytes).
    pub fn seek(&mut self, pos: u64) {
        self.indiv = pos;
    }

    pub fn tell(&self) -> u64 {
        self.indiv
    }

    /// Reset the shared pointer (collective by convention).
    pub fn seek_shared(&mut self, pos: u64) {
        *self.shared.lock() = pos;
    }

    /// The shared file pointer's current value (diagnostics / tests).
    pub fn shared_pos(&self) -> u64 {
        *self.shared.lock()
    }

    /// Current physical file size in bytes.
    pub fn size(&self) -> u64 {
        match &self.backing {
            Backing::Sim(f) => f.size(),
            Backing::Local(f) => f.size().unwrap_or(0),
        }
    }

    // ----- raw (physical-offset) operations --------------------------------

    /// Whether real bytes should be pushed into the backend.
    fn materialize(&self, comm: &Comm) -> bool {
        match (&self.backing, comm.engine()) {
            (Backing::Local(_), _) => true,
            (Backing::Sim(_), EngineCfg::Real) => true,
            (Backing::Sim(_), EngineCfg::Sim { copy_data, .. }) => *copy_data,
        }
    }

    /// Write `data` (or, in no-copy mode, just its length) at physical
    /// offset `phys`.
    pub(crate) fn raw_write(&self, comm: &mut Comm, phys: u64, data: &[u8]) {
        match &self.backing {
            Backing::Sim(f) => {
                let pfs = match self.world.storage() {
                    Storage::Sim(p) => p,
                    Storage::Local(_) => unreachable!("sim backing implies sim storage"),
                };
                let payload = if self.materialize(comm) {
                    DataRef::Bytes(data)
                } else {
                    DataRef::Len(data.len() as u64)
                };
                let done = pfs.write(comm.world_rank(), f, phys, payload, comm.now());
                comm.advance_to(done);
            }
            Backing::Local(f) => {
                f.write_at(phys, data).expect("local write failed");
            }
        }
    }

    /// Write a modeled `len` bytes without a source buffer (aggregator
    /// fast path in no-copy mode).
    pub(crate) fn raw_write_len(&self, comm: &mut Comm, phys: u64, len: u64) {
        match &self.backing {
            Backing::Sim(f) => {
                let pfs = match self.world.storage() {
                    Storage::Sim(p) => p,
                    Storage::Local(_) => unreachable!(),
                };
                let done = pfs.write(comm.world_rank(), f, phys, DataRef::Len(len), comm.now());
                comm.advance_to(done);
            }
            Backing::Local(_) => {
                panic!("length-only writes require the simulated backend")
            }
        }
    }

    /// Read up to `buf.len()` bytes at physical `phys`; returns bytes
    /// actually read (clamped at EOF).
    pub(crate) fn raw_read(&self, comm: &mut Comm, phys: u64, buf: &mut [u8]) -> u64 {
        match &self.backing {
            Backing::Sim(f) => {
                let pfs = match self.world.storage() {
                    Storage::Sim(p) => p,
                    Storage::Local(_) => unreachable!(),
                };
                let len = buf.len() as u64;
                let out = if self.materialize(comm) { Some(buf) } else { None };
                let (n, done) = pfs.read(comm.world_rank(), f, phys, len, out, comm.now());
                comm.advance_to(done);
                n
            }
            Backing::Local(f) => f.read_at(phys, buf).expect("local read failed") as u64,
        }
    }

    /// Length-only read (aggregator fast path).
    pub(crate) fn raw_read_len(&self, comm: &mut Comm, phys: u64, len: u64) -> u64 {
        match &self.backing {
            Backing::Sim(f) => {
                let pfs = match self.world.storage() {
                    Storage::Sim(p) => p,
                    Storage::Local(_) => unreachable!(),
                };
                let (n, done) = pfs.read(comm.world_rank(), f, phys, len, None, comm.now());
                comm.advance_to(done);
                n
            }
            Backing::Local(_) => panic!("length-only reads require the simulated backend"),
        }
    }

    // ----- explicit offset / individual pointer ----------------------------

    /// `MPI_File_write_at` (view-linear offset). Returns bytes written.
    /// Noncontiguous requests use data sieving when the `ds_write` hint
    /// is set; otherwise one backend call per segment.
    pub fn write_at(&mut self, comm: &mut Comm, voffset: u64, data: &[u8]) -> u64 {
        let segs = self.view.map_range(voffset, data.len() as u64);
        if segs.len() > 1 && self.hints.ds_write {
            let buffer = self.hints.ds_buffer_size.max(1);
            return self.sieved_write(comm, &segs, data, buffer);
        }
        let mut done = 0usize;
        for (phys, len) in segs {
            self.raw_write(comm, phys, &data[done..done + len as usize]);
            done += len as usize;
        }
        done as u64
    }

    /// `MPI_File_write` (individual pointer).
    pub fn write(&mut self, comm: &mut Comm, data: &[u8]) -> u64 {
        let n = self.write_at(comm, self.indiv, data);
        self.indiv += n;
        n
    }

    /// `MPI_File_read_at`. Returns bytes read (short at EOF).
    /// Noncontiguous requests use data sieving when the `ds_read` hint
    /// is set (the ROMIO default).
    pub fn read_at(&mut self, comm: &mut Comm, voffset: u64, buf: &mut [u8]) -> u64 {
        let segs = self.view.map_range(voffset, buf.len() as u64);
        if segs.len() > 1
            && self.hints.ds_read
            && segs.last().is_some_and(|s| s.0 + s.1 <= self.size())
        {
            let buffer = self.hints.ds_buffer_size.max(1);
            return self.sieved_read(comm, &segs, buf, buffer);
        }
        let mut done = 0u64;
        for (phys, len) in segs {
            let n = self.raw_read(comm, phys, &mut buf[done as usize..(done + len) as usize]);
            done += n;
            if n < len {
                break; // EOF inside this segment
            }
        }
        done
    }

    /// `MPI_File_read` (individual pointer).
    pub fn read(&mut self, comm: &mut Comm, buf: &mut [u8]) -> u64 {
        let n = self.read_at(comm, self.indiv, buf);
        self.indiv += n;
        n
    }

    // ----- shared file pointer ---------------------------------------------

    /// `MPI_File_write_shared` (noncollective): atomically claims the
    /// next `data.len()` view-linear bytes at the shared pointer.
    pub fn write_shared(&mut self, comm: &mut Comm, data: &[u8]) -> u64 {
        let v = {
            let mut p = self.shared.lock();
            let v = *p;
            *p += data.len() as u64;
            v
        };
        self.write_at(comm, v, data)
    }

    /// `MPI_File_read_shared` (noncollective).
    pub fn read_shared(&mut self, comm: &mut Comm, buf: &mut [u8]) -> u64 {
        let v = {
            let mut p = self.shared.lock();
            let v = *p;
            *p += buf.len() as u64;
            v
        };
        self.read_at(comm, v, buf)
    }

    /// `MPI_File_write_ordered` (collective): ranks write at the shared
    /// pointer in rank order. Implemented as an exclusive prefix sum of
    /// the lengths plus a collective pointer bump.
    pub fn write_ordered(&mut self, comm: &mut Comm, data: &[u8]) -> u64 {
        let (my_off, total) = ordered_offsets(comm, data.len() as u64);
        let base = {
            // rank 0 claims the region for everyone, then broadcasts
            let mut claimed = if comm.rank() == 0 {
                let mut p = self.shared.lock();
                let v = *p;
                *p += total;
                v
            } else {
                0
            };
            claimed = comm.bcast_u64(0, claimed);
            claimed
        };
        let n = self.write_at(comm, base + my_off, data);
        comm.barrier();
        n
    }

    /// `MPI_File_read_ordered` (collective).
    pub fn read_ordered(&mut self, comm: &mut Comm, buf: &mut [u8]) -> u64 {
        let (my_off, total) = ordered_offsets(comm, buf.len() as u64);
        let base = {
            let mut claimed = if comm.rank() == 0 {
                let mut p = self.shared.lock();
                let v = *p;
                *p += total;
                v
            } else {
                0
            };
            claimed = comm.bcast_u64(0, claimed);
            claimed
        };
        let n = self.read_at(comm, base + my_off, buf);
        comm.barrier();
        n
    }

    // ----- sync / close ----------------------------------------------------

    /// `MPI_File_sync`: flush this rank's view of dirty data to disk.
    /// Collective in MPI; callers pair it with a barrier as b_eff_io
    /// does.
    pub fn sync(&self, comm: &mut Comm) {
        match &self.backing {
            Backing::Sim(_) => {
                let pfs = match self.world.storage() {
                    Storage::Sim(p) => p,
                    Storage::Local(_) => unreachable!(),
                };
                let done = pfs.sync(comm.now());
                comm.advance_to(done);
            }
            Backing::Local(f) => f.sync().expect("fsync failed"),
        }
    }

    /// Collective close.
    pub fn close(self, comm: &mut Comm) {
        comm.barrier();
        if let (Backing::Sim(_), Storage::Sim(pfs)) = (&self.backing, self.world.storage()) {
            let done = pfs.close(comm.now());
            comm.advance_to(done);
        }
        if self.amode.delete_on_close && comm.rank() == 0 {
            self.world.unlink(&self.path);
        }
    }
}

/// Exclusive prefix of `len` over ranks plus the total (for ordered
/// shared-pointer access). Uses a gather+bcast on rank 0.
fn ordered_offsets(comm: &mut Comm, len: u64) -> (u64, u64) {
    let lens = comm.allreduce_f64(
        &{
            let mut v = vec![0.0f64; comm.size()];
            v[comm.rank()] = len as f64;
            v
        },
        beff_mpi::ReduceOp::Sum,
    );
    let my_off: f64 = lens[..comm.rank()].iter().sum();
    let total: f64 = lens.iter().sum();
    (my_off as u64, total as u64)
}
