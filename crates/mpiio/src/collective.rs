//! Collective data access with **two-phase I/O** (collective
//! buffering), the ROMIO-style optimization the paper's pattern type 0
//! depends on: many small interleaved per-rank chunks are exchanged
//! over the (fast) message network so that the (slow) filesystem sees
//! few large contiguous requests.
//!
//! Protocol per collective call:
//!
//! 1. agree on the path (direct vs exchange) with an allreduce, so no
//!    rank can deadlock waiting for headers that never come;
//! 2. compute the global byte span of the call and divide it into one
//!    contiguous *file domain* per aggregator rank;
//! 3. every rank packs, per aggregator, the pieces of its request that
//!    fall into that aggregator's domain and ships them as one header
//!    message plus one payload message;
//! 4. each aggregator coalesces everything it received into maximal
//!    contiguous runs and issues large reads/writes in
//!    `cb_buffer_size` chunks.
//!
//! In no-copy simulation mode the payload messages and filesystem
//! writes carry only lengths; the exchange *timing* is still fully
//! modeled.

use crate::file::MpiFile;
use beff_mpi::{Comm, ReduceOp};
use beff_mpi::wire;

/// A piece of one rank's request: physical file range + where it lives
/// in the rank's user buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Piece {
    phys: u64,
    len: u64,
    data_off: u64,
}

/// Domain decomposition of one collective call.
struct Plan {
    /// Global [lo, hi) span of the call (empty if hi <= lo).
    lo: u64,
    /// Domain width per aggregator.
    width: u64,
    /// Aggregator comm ranks.
    aggregators: Vec<usize>,
}

fn make_plan(comm: &mut Comm, file: &MpiFile, my_lo: u64, my_hi: u64) -> Plan {
    let n = comm.size();
    let lo_hi = comm.allreduce_f64(&[my_lo as f64, -(my_hi as f64)], ReduceOp::Min);
    let lo = lo_hi[0] as u64;
    let hi = (-lo_hi[1]) as u64;
    let naggr = file.hints().aggregators(n);
    let span = hi.saturating_sub(lo);
    let cb = file.hints().cb_buffer_size.max(1);
    let width = (span.div_ceil(naggr as u64)).div_ceil(cb) * cb;
    let aggregators = (0..naggr).map(|i| i * n / naggr).collect();
    Plan { lo, width: width.max(cb), aggregators }
}

impl Plan {
    /// Split `pieces` (sorted by phys) by aggregator domain.
    fn assign(&self, pieces: &[Piece]) -> Vec<Vec<Piece>> {
        let mut out = vec![Vec::new(); self.aggregators.len()];
        for p in pieces {
            let mut phys = p.phys;
            let mut len = p.len;
            let mut data_off = p.data_off;
            while len > 0 {
                let d = ((phys - self.lo) / self.width) as usize;
                let d = d.min(self.aggregators.len() - 1);
                let dom_end = self.lo + (d as u64 + 1) * self.width;
                let take = len.min(dom_end.saturating_sub(phys).max(1));
                out[d].push(Piece { phys, len: take, data_off });
                phys += take;
                data_off += take;
                len -= take;
            }
        }
        out
    }
}

fn encode_pieces(pieces: &[Piece]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + pieces.len() * 16);
    wire::put_u64(&mut buf, pieces.len() as u64);
    for p in pieces {
        wire::put_u64(&mut buf, p.phys);
        wire::put_u64(&mut buf, p.len);
    }
    buf
}

fn decode_pieces(buf: &[u8]) -> Vec<Piece> {
    let mut r = wire::Reader::new(buf);
    let n = r.u64() as usize;
    (0..n)
        .map(|_| Piece { phys: r.u64(), len: r.u64(), data_off: 0 })
        .collect()
}

/// Coalesce sorted pieces into maximal contiguous (phys, len) runs.
fn coalesce(mut pieces: Vec<Piece>) -> Vec<(u64, u64)> {
    pieces.sort_by_key(|p| p.phys);
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for p in pieces {
        match runs.last_mut() {
            Some(r) if r.0 + r.1 >= p.phys => {
                let end = (p.phys + p.len).max(r.0 + r.1);
                r.1 = end - r.0;
            }
            _ => runs.push((p.phys, p.len)),
        }
    }
    runs
}

impl MpiFile {
    /// Does every rank's request need the exchange? (collective
    /// agreement so no rank takes the wrong path)
    fn needs_exchange(&self, comm: &mut Comm, my_segments: usize) -> bool {
        if !self.hints().cb_enable {
            return false;
        }
        if self.hints().force_two_phase {
            return true;
        }
        let worst = comm.allreduce_scalar(my_segments as f64, ReduceOp::Max);
        worst > 1.0
    }

    /// `MPI_File_write_all`: collective write at the individual pointer.
    pub fn write_all(&mut self, comm: &mut Comm, data: &[u8]) -> u64 {
        let segs = self.view().map_range(self.tell(), data.len() as u64);
        if !self.needs_exchange(comm, segs.len()) {
            let n = self.write(comm, data);
            comm.barrier();
            return n;
        }
        let pieces = to_pieces(&segs);
        let (my_lo, my_hi) = span_of(&pieces);
        let plan = make_plan(comm, self, my_lo, my_hi);
        let tag_h = comm_tag(comm);
        let tag_p = comm_tag(comm);

        // ---- phase 1: ship my pieces to their aggregators ----
        let per_aggr = plan.assign(&pieces);
        let mut scratch: Vec<u8> = Vec::new();
        for (i, mine) in per_aggr.iter().enumerate() {
            let a = plan.aggregators[i];
            let header = encode_pieces(mine);
            comm.send(a, tag_h, &header);
            let total: u64 = mine.iter().map(|p| p.len).sum();
            if total > 0 {
                scratch.clear();
                scratch.resize(total as usize, 0);
                if self.copy_mode(comm) {
                    let mut off = 0usize;
                    for p in mine {
                        let s = p.data_off as usize;
                        let e = s + p.len as usize;
                        scratch[off..off + p.len as usize].copy_from_slice(&data[s..e]);
                        off += p.len as usize;
                    }
                }
                comm.payload_send(a, tag_p, &scratch);
            }
        }

        // ---- phase 2: aggregate and write ----
        if let Some(_my_index) = plan.aggregators.iter().position(|&a| a == comm.rank()) {
            let mut all: Vec<Piece> = Vec::new();
            let mut buffers: Vec<(Vec<Piece>, Vec<u8>)> = Vec::new();
            for _ in 0..comm.size() {
                let (hdr, info) = comm.recv_vec(None, Some(tag_h));
                let ps = decode_pieces(&hdr);
                let total: u64 = ps.iter().map(|p| p.len).sum();
                all.extend(ps.iter().copied());
                if total > 0 {
                    let (payload, _) = {
                        let req = comm.irecv(Some(info.src), Some(tag_p));
                        comm.wait_recv(req)
                    };
                    buffers.push((ps, payload));
                }
            }
            let runs = coalesce(all);
            let copy = self.copy_mode(comm);
            let cb = self.hints().cb_buffer_size.max(1);
            for (start, len) in runs {
                if copy {
                    // assemble the run from the received payloads
                    let mut buf = vec![0u8; len as usize];
                    for (ps, payload) in &buffers {
                        let mut poff = 0usize;
                        for p in ps {
                            if p.phys >= start && p.phys + p.len <= start + len {
                                let dst = (p.phys - start) as usize;
                                if payload.len() >= poff + p.len as usize {
                                    buf[dst..dst + p.len as usize]
                                        .copy_from_slice(&payload[poff..poff + p.len as usize]);
                                }
                            }
                            poff += p.len as usize;
                        }
                    }
                    let mut off = 0u64;
                    while off < len {
                        let chunk = cb.min(len - off);
                        self.raw_write(
                            comm,
                            start + off,
                            &buf[off as usize..(off + chunk) as usize],
                        );
                        off += chunk;
                    }
                } else {
                    let mut off = 0u64;
                    while off < len {
                        let chunk = cb.min(len - off);
                        self.raw_write_len(comm, start + off, chunk);
                        off += chunk;
                    }
                }
            }
        }
        comm.barrier();
        self.seek(self.tell() + data.len() as u64);
        data.len() as u64
    }

    /// `MPI_File_read_all`: collective read at the individual pointer.
    pub fn read_all(&mut self, comm: &mut Comm, buf: &mut [u8]) -> u64 {
        let segs = self.view().map_range(self.tell(), buf.len() as u64);
        if !self.needs_exchange(comm, segs.len()) {
            let n = self.read(comm, buf);
            comm.barrier();
            return n;
        }
        let pieces = to_pieces(&segs);
        let (my_lo, my_hi) = span_of(&pieces);
        let plan = make_plan(comm, self, my_lo, my_hi);
        let tag_h = comm_tag(comm);
        let tag_p = comm_tag(comm);

        // ---- phase 1: send requests ----
        let per_aggr = plan.assign(&pieces);
        for (i, mine) in per_aggr.iter().enumerate() {
            comm.send(plan.aggregators[i], tag_h, &encode_pieces(mine));
        }

        // ---- phase 2: aggregators read and distribute ----
        if plan.aggregators.contains(&comm.rank()) {
            let mut requests: Vec<(usize, Vec<Piece>)> = Vec::new();
            for _ in 0..comm.size() {
                let (hdr, info) = comm.recv_vec(None, Some(tag_h));
                requests.push((info.src, decode_pieces(&hdr)));
            }
            let all: Vec<Piece> = requests.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
            let runs = coalesce(all);
            let copy = self.copy_mode(comm);
            // read each run once
            let mut run_data: Vec<(u64, Vec<u8>)> = Vec::new();
            let cb = self.hints().cb_buffer_size.max(1);
            for (start, len) in &runs {
                if copy {
                    let mut b = vec![0u8; *len as usize];
                    let mut off = 0u64;
                    while off < *len {
                        let chunk = cb.min(len - off);
                        self.raw_read(
                            comm,
                            start + off,
                            &mut b[off as usize..(off + chunk) as usize],
                        );
                        off += chunk;
                    }
                    run_data.push((*start, b));
                } else {
                    let mut off = 0u64;
                    while off < *len {
                        let chunk = cb.min(len - off);
                        self.raw_read_len(comm, start + off, chunk);
                        off += chunk;
                    }
                    run_data.push((*start, Vec::new()));
                }
            }
            // distribute
            let mut scratch: Vec<u8> = Vec::new();
            for (src, ps) in requests {
                let total: u64 = ps.iter().map(|p| p.len).sum();
                if total == 0 {
                    continue;
                }
                scratch.clear();
                scratch.resize(total as usize, 0);
                if copy {
                    let mut off = 0usize;
                    for p in &ps {
                        for (rs, rb) in &run_data {
                            if p.phys >= *rs && p.phys + p.len <= *rs + rb.len() as u64 {
                                let s = (p.phys - rs) as usize;
                                scratch[off..off + p.len as usize]
                                    .copy_from_slice(&rb[s..s + p.len as usize]);
                                break;
                            }
                        }
                        off += p.len as usize;
                    }
                }
                comm.payload_send(src, tag_p, &scratch);
            }
        }

        // ---- phase 3: receive my pieces ----
        let copy = self.copy_mode(comm);
        for (i, mine) in per_aggr.iter().enumerate() {
            let total: u64 = mine.iter().map(|p| p.len).sum();
            if total == 0 {
                continue;
            }
            let a = plan.aggregators[i];
            let req = comm.irecv(Some(a), Some(tag_p));
            let (payload, _) = comm.wait_recv(req);
            if copy && payload.len() as u64 >= total {
                let mut poff = 0usize;
                for p in mine {
                    let d = p.data_off as usize;
                    buf[d..d + p.len as usize]
                        .copy_from_slice(&payload[poff..poff + p.len as usize]);
                    poff += p.len as usize;
                }
            }
        }
        comm.barrier();
        self.seek(self.tell() + buf.len() as u64);
        buf.len() as u64
    }

    fn copy_mode(&self, comm: &Comm) -> bool {
        match comm.engine() {
            beff_mpi::EngineCfg::Real => true,
            beff_mpi::EngineCfg::Sim { copy_data, .. } => *copy_data,
        }
    }
}

fn to_pieces(segs: &[(u64, u64)]) -> Vec<Piece> {
    let mut out = Vec::with_capacity(segs.len());
    let mut data_off = 0u64;
    for &(phys, len) in segs {
        out.push(Piece { phys, len, data_off });
        data_off += len;
    }
    out
}

fn span_of(pieces: &[Piece]) -> (u64, u64) {
    if pieces.is_empty() {
        return (u64::MAX, 0);
    }
    let lo = pieces.iter().map(|p| p.phys).min().expect("nonempty");
    let hi = pieces.iter().map(|p| p.phys + p.len).max().expect("nonempty");
    (lo, hi)
}

fn comm_tag(comm: &mut Comm) -> beff_mpi::Tag {
    // piggyback on the collective tag allocator via a zero-cost barrier-free call
    comm.alloc_tag()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_adjacent_and_overlapping() {
        let ps = vec![
            Piece { phys: 10, len: 10, data_off: 0 },
            Piece { phys: 0, len: 10, data_off: 0 },
            Piece { phys: 25, len: 5, data_off: 0 },
            Piece { phys: 22, len: 4, data_off: 0 },
        ];
        assert_eq!(coalesce(ps), vec![(0, 20), (22, 8)]);
    }

    #[test]
    fn pieces_encode_roundtrip() {
        let ps = vec![
            Piece { phys: 7, len: 100, data_off: 0 },
            Piece { phys: 1 << 40, len: 1, data_off: 0 },
        ];
        let back = decode_pieces(&encode_pieces(&ps));
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].phys, 7);
        assert_eq!(back[1].phys, 1 << 40);
    }

    #[test]
    fn span_of_empty_is_inverted() {
        let (lo, hi) = span_of(&[]);
        assert!(lo > hi);
    }

    #[test]
    fn to_pieces_tracks_data_offsets() {
        let ps = to_pieces(&[(100, 10), (300, 20)]);
        assert_eq!(ps[0].data_off, 0);
        assert_eq!(ps[1].data_off, 10);
    }
}
