//! Data sieving (ROMIO's optimization for *noncollective* noncontiguous
//! access): instead of one filesystem request per tiny hole-separated
//! segment, read a whole contiguous window and scatter from it — and
//! for writes, read-modify-write the window.
//!
//! Defaults follow ROMIO: sieving is on for reads and off for writes
//! (write sieving turns clean writes into read-modify-writes, which is
//! only a win for very fragmented access).

use crate::file::MpiFile;
use crate::view::Segment;
use beff_mpi::Comm;

/// Plan the sieving windows for a segment list: consecutive segments
/// are grouped while the window (first offset → last end) fits
/// `buffer`. Returns ranges of segment indices with their windows.
pub(crate) fn plan_windows(segs: &[Segment], buffer: u64) -> Vec<(std::ops::Range<usize>, u64, u64)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < segs.len() {
        let start = segs[i].0;
        let mut j = i + 1;
        let mut end = segs[i].0 + segs[i].1;
        while j < segs.len() {
            let cand = segs[j].0 + segs[j].1;
            if cand - start > buffer {
                break;
            }
            end = cand;
            j += 1;
        }
        out.push((i..j, start, end - start));
        i = j;
    }
    out
}

impl MpiFile {
    /// Sieved noncollective read: read whole windows, scatter the
    /// segments out of them. `data_off` positions follow the segment
    /// order. Returns bytes read (caller guarantees the view range is
    /// within EOF or tolerates zero-fill).
    pub(crate) fn sieved_read(
        &mut self,
        comm: &mut Comm,
        segs: &[Segment],
        buf: &mut [u8],
        buffer: u64,
    ) -> u64 {
        let copy = self.copy_backend(comm);
        let mut done = 0u64;
        let mut seg_data_off = vec![0u64; segs.len()];
        {
            let mut acc = 0;
            for (i, s) in segs.iter().enumerate() {
                seg_data_off[i] = acc;
                acc += s.1;
            }
        }
        for (range, start, len) in plan_windows(segs, buffer) {
            if copy {
                let mut window = vec![0u8; len as usize];
                self.raw_read(comm, start, &mut window);
                for i in range {
                    let (phys, slen) = segs[i];
                    let w = (phys - start) as usize;
                    let d = seg_data_off[i] as usize;
                    buf[d..d + slen as usize].copy_from_slice(&window[w..w + slen as usize]);
                    done += slen;
                }
            } else {
                self.raw_read_len(comm, start, len);
                done += range.map(|i| segs[i].1).sum::<u64>();
            }
        }
        done
    }

    /// Sieved noncollective write: read-modify-write whole windows.
    pub(crate) fn sieved_write(
        &mut self,
        comm: &mut Comm,
        segs: &[Segment],
        data: &[u8],
        buffer: u64,
    ) -> u64 {
        let copy = self.copy_backend(comm);
        let mut done = 0u64;
        let mut data_off = 0u64;
        let mut offsets = Vec::with_capacity(segs.len());
        for s in segs {
            offsets.push(data_off);
            data_off += s.1;
        }
        for (range, start, len) in plan_windows(segs, buffer) {
            if copy {
                let mut window = vec![0u8; len as usize];
                self.raw_read(comm, start, &mut window); // fetch existing bytes
                for i in range {
                    let (phys, slen) = segs[i];
                    let w = (phys - start) as usize;
                    let d = offsets[i] as usize;
                    window[w..w + slen as usize].copy_from_slice(&data[d..d + slen as usize]);
                    done += slen;
                }
                self.raw_write(comm, start, &window);
            } else {
                self.raw_read_len(comm, start, len);
                self.raw_write_len(comm, start, len);
                done += range.map(|i| segs[i].1).sum::<u64>();
            }
        }
        done
    }

    fn copy_backend(&self, comm: &Comm) -> bool {
        match comm.engine() {
            beff_mpi::EngineCfg::Real => true,
            beff_mpi::EngineCfg::Sim { copy_data, .. } => *copy_data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_group_until_buffer_full() {
        // segments at 0, 100, 1000, each 50 bytes; buffer 200
        let segs = vec![(0u64, 50u64), (100, 50), (1000, 50)];
        let w = plan_windows(&segs, 200);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], (0..2, 0, 150));
        assert_eq!(w[1], (2..3, 1000, 50));
    }

    #[test]
    fn single_segment_is_single_window() {
        let segs = vec![(42u64, 10u64)];
        let w = plan_windows(&segs, 1);
        assert_eq!(w, vec![(0..1, 42, 10)]);
    }

    #[test]
    fn giant_buffer_makes_one_window() {
        let segs: Vec<(u64, u64)> = (0..10).map(|i| (i * 1000, 10)).collect();
        let w = plan_windows(&segs, u64::MAX);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].1, 0);
        assert_eq!(w[0].2, 9 * 1000 + 10);
    }

    #[test]
    fn windows_cover_all_segments_once() {
        let segs: Vec<(u64, u64)> = (0..25).map(|i| (i * 777, 33)).collect();
        let w = plan_windows(&segs, 2000);
        let mut seen = vec![false; segs.len()];
        for (range, start, len) in w {
            for i in range {
                assert!(!seen[i]);
                seen[i] = true;
                assert!(segs[i].0 >= start);
                assert!(segs[i].0 + segs[i].1 <= start + len);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
