//! # beff-mpiio
//!
//! An MPI-IO layer over the `beff-mpi` runtime and the `beff-pfs`
//! storage backends — the portable parallel-I/O interface b_eff_io is
//! defined against (paper §3.2 category 3: "we use only MPI-I/O").
//!
//! Implemented surface (everything the five b_eff_io pattern types
//! exercise):
//!
//! * collective [`MpiFile::open`] / `close` / `sync` with access modes,
//! * [`FileView`]s: contiguous and strided filetypes
//!   (`MPI_File_set_view`),
//! * explicit-offset and individual-pointer reads/writes,
//! * shared-file-pointer access: noncollective `write_shared` and
//!   collective rank-ordered `write_ordered`,
//! * collective `write_all` / `read_all` with **two-phase I/O**
//!   (collective buffering) and hint control ([`Hints`]).

pub mod amode;
pub mod collective;
pub mod file;
pub mod hints;
pub mod sieving;
pub mod view;
pub mod world;

pub use amode::AMode;
pub use file::{Backing, MpiFile};
pub use hints::Hints;
pub use view::FileView;
pub use world::{IoWorld, Storage};
