//! File views: the mapping from a rank's *view-linear* byte stream to
//! physical file offsets (`MPI_File_set_view` with contiguous or
//! strided filetypes).
//!
//! The b_eff_io pattern types use exactly two shapes:
//!
//! * [`FileView::Contiguous`] — identity plus displacement (types 1-4;
//!   the segmented types use a per-rank displacement),
//! * [`FileView::Strided`] — blocks of `block` bytes every `stride`
//!   bytes (type 0: rank p sees chunks of size l at stride n·l,
//!   displaced p·l).

/// A segment of a physical file: (physical offset, length).
pub type Segment = (u64, u64);

/// How a rank's linear stream maps onto the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileView {
    /// view offset v ↦ disp + v
    Contiguous { disp: u64 },
    /// view offset v ↦ disp + (v / block)·stride + (v mod block)
    Strided { disp: u64, block: u64, stride: u64 },
}

impl Default for FileView {
    fn default() -> Self {
        FileView::Contiguous { disp: 0 }
    }
}

impl FileView {
    /// The physical offset of view-linear position `v`.
    pub fn map_offset(&self, v: u64) -> u64 {
        match *self {
            FileView::Contiguous { disp } => disp + v,
            FileView::Strided { disp, block, stride } => {
                assert!(block > 0 && stride >= block, "degenerate strided view");
                disp + (v / block) * stride + (v % block)
            }
        }
    }

    /// Map the view-linear range `[v, v+len)` to physical segments, in
    /// file order, merging adjacent pieces.
    pub fn map_range(&self, v: u64, len: u64) -> Vec<Segment> {
        if len == 0 {
            return Vec::new();
        }
        match *self {
            FileView::Contiguous { disp } => vec![(disp + v, len)],
            FileView::Strided { disp, block, stride } => {
                assert!(block > 0 && stride >= block, "degenerate strided view");
                let mut out: Vec<Segment> = Vec::new();
                let mut pos = v;
                let end = v + len;
                while pos < end {
                    let in_block = pos % block;
                    let piece = (block - in_block).min(end - pos);
                    let phys = disp + (pos / block) * stride + in_block;
                    match out.last_mut() {
                        Some(last) if last.0 + last.1 == phys => last.1 += piece,
                        _ => out.push((phys, piece)),
                    }
                    pos += piece;
                }
                out
            }
        }
    }

    /// Is a range a single physical extent under this view?
    pub fn is_contiguous(&self, v: u64, len: u64) -> bool {
        self.map_range(v, len).len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_maps_identity_plus_disp() {
        let view = FileView::Contiguous { disp: 100 };
        assert_eq!(view.map_offset(5), 105);
        assert_eq!(view.map_range(10, 20), vec![(110, 20)]);
        assert!(view.is_contiguous(0, 1 << 40));
    }

    #[test]
    fn strided_type0_shape() {
        // pattern type 0: n = 4 ranks, chunk l = 100, rank p = 1
        let (l, n, p) = (100u64, 4u64, 1u64);
        let view = FileView::Strided { disp: p * l, block: l, stride: n * l };
        // first chunk of rank 1 lives at [100, 200)
        assert_eq!(view.map_offset(0), 100);
        assert_eq!(view.map_offset(99), 199);
        // second chunk starts at 100 + 400
        assert_eq!(view.map_offset(100), 500);
        let segs = view.map_range(0, 250);
        assert_eq!(segs, vec![(100, 100), (500, 100), (900, 50)]);
        assert!(!view.is_contiguous(0, 101));
        assert!(view.is_contiguous(0, 100));
    }

    #[test]
    fn strided_partial_start() {
        let view = FileView::Strided { disp: 0, block: 10, stride: 40 };
        let segs = view.map_range(5, 10);
        assert_eq!(segs, vec![(5, 5), (40, 5)]);
    }

    #[test]
    fn stride_equal_block_merges_to_contiguous() {
        let view = FileView::Strided { disp: 7, block: 10, stride: 10 };
        assert_eq!(view.map_range(0, 100), vec![(7, 100)]);
    }

    #[test]
    fn map_range_total_length_is_preserved() {
        let view = FileView::Strided { disp: 3, block: 17, stride: 64 };
        for (v, len) in [(0u64, 1u64), (5, 100), (16, 18), (1000, 12345)] {
            let segs = view.map_range(v, len);
            assert_eq!(segs.iter().map(|s| s.1).sum::<u64>(), len);
            // in file order, non-overlapping
            for w in segs.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0);
            }
        }
    }

    #[test]
    fn empty_range() {
        let view = FileView::Strided { disp: 0, block: 8, stride: 32 };
        assert!(view.map_range(5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn stride_smaller_than_block_rejected() {
        FileView::Strided { disp: 0, block: 10, stride: 5 }.map_offset(0);
    }
}
