//! File access modes (the subset of `MPI_MODE_*` b_eff_io needs).
//!
//! Note the paper's §5.4 point on `MPI_MODE_UNIQUE_OPEN`: the benchmark
//! must *not* set it even though files are opened uniquely, because it
//! would allow an implementation to defer `sync` to close. We model the
//! flag but never set it in the benchmark.

/// Access mode flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AMode {
    pub read: bool,
    pub write: bool,
    pub create: bool,
    /// Truncate existing contents at open.
    pub truncate: bool,
    pub delete_on_close: bool,
    /// Promise that no other open accesses the file concurrently.
    pub unique_open: bool,
}

impl AMode {
    /// `MPI_MODE_CREATE | MPI_MODE_WRONLY` with truncation — the
    /// "initial write" access method.
    pub const fn create_write() -> Self {
        Self {
            read: false,
            write: true,
            create: true,
            truncate: true,
            delete_on_close: false,
            unique_open: false,
        }
    }

    /// `MPI_MODE_WRONLY` on an existing file — the "rewrite" method.
    pub const fn write_only() -> Self {
        Self {
            read: false,
            write: true,
            create: false,
            truncate: false,
            delete_on_close: false,
            unique_open: false,
        }
    }

    /// `MPI_MODE_RDONLY` — the "read" method.
    pub const fn read_only() -> Self {
        Self {
            read: true,
            write: false,
            create: false,
            truncate: false,
            delete_on_close: false,
            unique_open: false,
        }
    }

    /// Read+write, creating if necessary.
    pub const fn read_write_create() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            truncate: false,
            delete_on_close: false,
            unique_open: false,
        }
    }

    pub fn with_delete_on_close(mut self) -> Self {
        self.delete_on_close = true;
        self
    }

    pub fn with_unique_open(mut self) -> Self {
        self.unique_open = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_modes_are_consistent() {
        let w = AMode::create_write();
        assert!(w.write && w.create && w.truncate && !w.read);
        let r = AMode::read_only();
        assert!(r.read && !r.write && !r.create);
        let rw = AMode::read_write_create();
        assert!(rw.read && rw.write && rw.create && !rw.truncate);
    }

    #[test]
    fn builders_set_flags() {
        let m = AMode::read_only().with_delete_on_close().with_unique_open();
        assert!(m.delete_on_close && m.unique_open);
    }
}
