//! MPI-IO hints (the `info` argument): collective-buffering controls.
//!
//! The paper's §5.3 notes that pattern-specific hints can drastically
//! change performance; these knobs are also what the two-phase ablation
//! benches flip.

use beff_json::{Json, ToJson};

/// Collective-buffering / two-phase I/O hints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hints {
    /// Enable two-phase collective optimization (ROMIO `romio_cb_write`).
    pub cb_enable: bool,
    /// Aggregate buffer size per exchange round (`cb_buffer_size`).
    pub cb_buffer_size: u64,
    /// Number of aggregator ranks (`cb_nodes`); 0 = all ranks.
    pub cb_nodes: usize,
    /// Run the exchange even when every rank's request is already a
    /// single contiguous extent (emulates naive collective
    /// implementations like the SP prototype in the paper's Fig. 4,
    /// where segmented-collective was 10x slower than non-collective).
    pub force_two_phase: bool,
    /// Data sieving for noncollective noncontiguous *reads*
    /// (ROMIO `romio_ds_read`; on by default).
    pub ds_read: bool,
    /// Data sieving for noncollective noncontiguous *writes* — turns
    /// them into read-modify-writes (ROMIO `romio_ds_write`; off by
    /// default, like ROMIO on most filesystems).
    pub ds_write: bool,
    /// Sieving window size (`ind_rd_buffer_size`).
    pub ds_buffer_size: u64,
}

impl Default for Hints {
    fn default() -> Self {
        Self {
            cb_enable: true,
            cb_buffer_size: 4 * 1024 * 1024,
            cb_nodes: 0,
            force_two_phase: false,
            ds_read: true,
            ds_write: false,
            ds_buffer_size: 4 * 1024 * 1024,
        }
    }
}

impl ToJson for Hints {
    fn to_json(&self) -> Json {
        Json::object()
            .field("cb_enable", &self.cb_enable)
            .field("cb_buffer_size", &self.cb_buffer_size)
            .field("cb_nodes", &self.cb_nodes)
            .field("force_two_phase", &self.force_two_phase)
            .field("ds_read", &self.ds_read)
            .field("ds_write", &self.ds_write)
            .field("ds_buffer_size", &self.ds_buffer_size)
            .build()
    }
}

impl Hints {
    /// Effective number of aggregators for a communicator of `n` ranks.
    pub fn aggregators(&self, n: usize) -> usize {
        if self.cb_nodes == 0 || self.cb_nodes > n {
            n
        } else {
            self.cb_nodes
        }
    }

    /// Hints with collective buffering disabled entirely.
    pub fn no_collective_buffering() -> Self {
        Self { cb_enable: false, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregators_clamped_to_comm_size() {
        let h = Hints { cb_nodes: 8, ..Hints::default() };
        assert_eq!(h.aggregators(4), 4);
        assert_eq!(h.aggregators(16), 8);
        let all = Hints::default();
        assert_eq!(all.aggregators(5), 5);
    }

    #[test]
    fn default_enables_cb() {
        assert!(Hints::default().cb_enable);
        assert!(!Hints::no_collective_buffering().cb_enable);
    }

    #[test]
    fn sieving_defaults_follow_romio() {
        let h = Hints::default();
        assert!(h.ds_read && !h.ds_write);
        assert!(h.ds_buffer_size > 0);
    }
}
