//! The I/O world: which storage backend file operations run against,
//! plus cross-rank shared state (shared file pointers).

use beff_pfs::{LocalDisk, Pfs};
use beff_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage backend: the simulated parallel filesystem or real disk.
#[derive(Clone)]
pub enum Storage {
    Sim(Arc<Pfs>),
    Local(Arc<LocalDisk>),
}

/// Shared I/O state for all ranks (create once, capture in the rank
/// closure).
pub struct IoWorld {
    storage: Storage,
    shared_ptrs: Mutex<BTreeMap<String, Arc<Mutex<u64>>>>,
}

impl IoWorld {
    pub fn sim(pfs: Arc<Pfs>) -> Arc<Self> {
        Arc::new(Self { storage: Storage::Sim(pfs), shared_ptrs: Mutex::new(BTreeMap::new()) })
    }

    pub fn local(disk: Arc<LocalDisk>) -> Arc<Self> {
        Arc::new(Self { storage: Storage::Local(disk), shared_ptrs: Mutex::new(BTreeMap::new()) })
    }

    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// The shared file pointer cell for `path` (created on demand).
    pub(crate) fn shared_ptr(&self, path: &str) -> Arc<Mutex<u64>> {
        Arc::clone(
            self.shared_ptrs
                .lock()
                .entry(path.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(0))),
        )
    }

    /// Remove a file from the backend (used by delete-on-close and
    /// benchmark cleanup between patterns).
    pub fn unlink(&self, path: &str) {
        self.shared_ptrs.lock().remove(path);
        match &self.storage {
            Storage::Sim(pfs) => pfs.unlink(path),
            Storage::Local(disk) => disk.unlink(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beff_pfs::PfsConfig;

    #[test]
    fn shared_ptr_is_per_path_and_stable() {
        let w = IoWorld::sim(Arc::new(Pfs::new(PfsConfig::default())));
        let a = w.shared_ptr("f1");
        let b = w.shared_ptr("f1");
        let c = w.shared_ptr("f2");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        *a.lock() = 42;
        assert_eq!(*b.lock(), 42);
    }

    #[test]
    fn unlink_resets_shared_ptr() {
        let w = IoWorld::sim(Arc::new(Pfs::new(PfsConfig::default())));
        *w.shared_ptr("f").lock() = 7;
        w.unlink("f");
        assert_eq!(*w.shared_ptr("f").lock(), 0);
    }
}
