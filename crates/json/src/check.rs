//! Well-formedness checking for JSON text — the read side of the
//! crate. The writers in [`crate::fmt`] only ever *emit* JSON; the
//! verification gate needs to confirm that generated report files
//! (e.g. `BENCH_SIM.json`) are actually parseable before they are
//! trusted, without pulling in a parser dependency.
//!
//! This is a validator, not a parser: it walks the grammar (RFC 8259)
//! and reports the first violation with its byte offset, but builds no
//! value tree.

/// First well-formedness violation in a JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the violation.
    pub at: usize,
    /// What went wrong, human-readable.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Check that `input` is exactly one well-formed JSON document
/// (surrounded by optional whitespace).
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut v = Validator { b: input.as_bytes(), pos: 0 };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.b.len() {
        return Err(v.err("trailing data after the document"));
    }
    Ok(())
}

struct Validator<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Validator<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), JsonError> {
        if self.b[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("misspelled literal"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => self.digits(),
            _ => return Err(self.err("expected digits")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documents_this_crate_writes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5",
            "1e-9",
            "1.25E+10",
            r#""a \"quoted\" string with \u00e9""#,
            r#"{"x":1.5,"y":[2,3,{"z":null}],"s":"t\n"}"#,
            "  {\n  \"a\": [1, 2]\n}  ",
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for (bad, why) in [
            ("", "empty"),
            ("{", "unclosed object"),
            ("[1,]", "trailing comma"),
            ("{\"a\":}", "missing value"),
            ("{\"a\" 1}", "missing colon"),
            ("{'a':1}", "single quotes"),
            ("01", "leading zero then trailing digit"),
            ("1.", "bare decimal point"),
            ("1e", "empty exponent"),
            ("\"abc", "unterminated string"),
            ("\"\\x\"", "bad escape"),
            ("nul", "misspelled literal"),
            ("{} {}", "two documents"),
            ("\"a\nb\"", "raw newline in string"),
        ] {
            assert!(validate(bad).is_err(), "should reject ({why}): {bad}");
        }
    }

    #[test]
    fn round_trips_the_crate_writers() {
        use crate::{Json, ToJson};
        struct T;
        impl ToJson for T {
            fn to_json(&self) -> Json {
                Json::object()
                    .field("name", "b_eff \"quoted\" \\ path")
                    .field("vals", &[1.5f64, -2.25, 1e-300][..])
                    .field("n", &42u64)
                    .build()
            }
        }
        assert_eq!(validate(&crate::to_string(&T)), Ok(()));
        assert_eq!(validate(&crate::to_string_pretty(&T)), Ok(()));
    }

    #[test]
    fn error_reports_byte_offset() {
        let e = validate("[1, 2, x]").unwrap_err();
        assert_eq!(e.at, 7);
        assert!(e.to_string().contains("byte 7"));
    }
}
