//! Writers that reproduce `serde_json`'s output byte-for-byte:
//! compact (`to_string`) and 2-space pretty (`to_string_pretty`)
//! layouts, `\uXXXX` control-character escapes, and ryu-style
//! shortest-round-trip float formatting.

use crate::value::Json;

pub(crate) fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Float(f) => write_f64(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (name, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(name, out);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            newline_indent(depth, out);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (name, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(depth + 1, out);
                write_escaped(name, out);
                out.push_str(": ");
                write_pretty(value, depth + 1, out);
            }
            newline_indent(depth, out);
            out.push('}');
        }
        // Empty containers and scalars print exactly as in compact mode
        // ("[]", "{}", numbers, strings).
        other => write_compact(other, out),
    }
}

/// Compact layout with every object's fields sorted by key bytes,
/// recursively — the **canonical form**. Two structurally equal
/// documents produce byte-identical canonical text regardless of the
/// order their fields were inserted in, which is what makes it usable
/// as a content-addressed cache key (`beff-serve`). Arrays keep their
/// order: element order is data, field order is not.
pub(crate) fn write_canonical(v: &Json, out: &mut String) {
    match v {
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            let mut order: Vec<usize> = (0..fields.len()).collect();
            // Stable sort: duplicate keys (never produced by ToJson
            // impls, possible in hand-built trees) keep insertion order.
            order.sort_by(|&a, &b| fields[a].0.as_bytes().cmp(fields[b].0.as_bytes()));
            out.push('{');
            for (i, &idx) in order.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let (name, value) = &fields[idx];
                write_escaped(name, out);
                out.push(':');
                write_canonical(value, out);
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn newline_indent(depth: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{0c}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` exactly as `serde_json` (via `ryu`) does.
///
/// Rust's `{:e}` formatter already produces the shortest
/// round-trip digit string, so this only needs ryu's *layout* rules on
/// top: plain decimal notation while the decimal point lands within
/// `(-5, 16]` digits of the front (`0.00001` … `1000000000000000.0`),
/// scientific notation outside that window (`1e-6`, `1e16`), a forced
/// `.0` on integral values, and `null` for non-finite values.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let sci = format!("{f:e}");
    let (mantissa, exp) = sci
        .split_once('e')
        .expect("{:e} always contains an exponent");
    let exp: i32 = exp.parse().expect("{:e} exponent is an integer");
    let (sign, mantissa) = match mantissa.strip_prefix('-') {
        Some(rest) => ("-", rest),
        None => ("", mantissa),
    };
    // digits = mantissa without the decimal point; value is
    // 0.digits × 10^kk with kk the decimal-point position.
    let digits: String = mantissa.chars().filter(|c| *c != '.').collect();
    let kk = exp + 1;

    out.push_str(sign);
    if !(-5 < kk && kk <= 16) {
        // ryu's scientific layout matches `{:e}`: "1e16", "2.5e-7".
        out.push_str(mantissa);
        out.push('e');
        out.push_str(&exp.to_string());
    } else if kk <= 0 {
        // 0.0001234
        out.push_str("0.");
        for _ in 0..-kk {
            out.push('0');
        }
        out.push_str(&digits);
    } else if (kk as usize) >= digits.len() {
        // 1234000.0 — integral, pad zeros and force ".0"
        out.push_str(&digits);
        for _ in 0..(kk as usize - digits.len()) {
            out.push('0');
        }
        out.push_str(".0");
    } else {
        // 12.34 — decimal point inside the digit string
        out.push_str(&digits[..kk as usize]);
        out.push('.');
        out.push_str(&digits[kk as usize..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Json;

    fn f(x: f64) -> String {
        let mut s = String::new();
        write_f64(x, &mut s);
        s
    }

    #[test]
    fn floats_match_ryu_layout() {
        assert_eq!(f(0.0), "0.0");
        assert_eq!(f(-0.0), "-0.0");
        assert_eq!(f(7.0), "7.0");
        assert_eq!(f(-7.0), "-7.0");
        assert_eq!(f(1.5), "1.5");
        assert_eq!(f(12.34), "12.34");
        assert_eq!(f(0.1), "0.1");
        assert_eq!(f(0.00001), "0.00001");
        assert_eq!(f(0.000001), "1e-6");
        assert_eq!(f(1e15), "1000000000000000.0");
        assert_eq!(f(1e16), "1e16");
        assert_eq!(f(-2.5e-7), "-2.5e-7");
        assert_eq!(f(1234000.0), "1234000.0");
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn floats_round_trip() {
        for &x in &[
            0.1, 1.0 / 3.0, 2.0_f64.sqrt(), 123.456e12, 5e-324, f64::MAX, 171.0, 0.5,
        ] {
            let s = f(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "round-trip of {x}");
        }
    }

    #[test]
    fn compact_layout() {
        let j = Json::object()
            .raw("a", Json::Arr(vec![Json::Int(1), Json::Null]))
            .raw("b", Json::Obj(vec![]))
            .field("c", "x\"y")
            .build();
        let mut s = String::new();
        write_compact(&j, &mut s);
        assert_eq!(s, r#"{"a":[1,null],"b":{},"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_layout() {
        let j = Json::object()
            .field("name", "t3e")
            .raw("sizes", Json::Arr(vec![Json::UInt(1), Json::UInt(8)]))
            .raw("empty", Json::Arr(vec![]))
            .raw(
                "nested",
                Json::object().field("ok", &true).build(),
            )
            .build();
        let mut s = String::new();
        write_pretty(&j, 0, &mut s);
        let want = "{\n  \"name\": \"t3e\",\n  \"sizes\": [\n    1,\n    8\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}";
        assert_eq!(s, want);
    }

    #[test]
    fn canonical_sorts_keys_recursively_but_not_arrays() {
        let a = Json::object()
            .field("z", &1u32)
            .raw("a", Json::object().field("y", &2u32).field("b", &3u32).build())
            .raw("arr", Json::Arr(vec![Json::UInt(2), Json::UInt(1)]))
            .build();
        let b = Json::object()
            .raw("arr", Json::Arr(vec![Json::UInt(2), Json::UInt(1)]))
            .raw("a", Json::object().field("b", &3u32).field("y", &2u32).build())
            .field("z", &1u32)
            .build();
        let (mut ca, mut cb) = (String::new(), String::new());
        write_canonical(&a, &mut ca);
        write_canonical(&b, &mut cb);
        assert_eq!(ca, cb);
        assert_eq!(ca, r#"{"a":{"b":3,"y":2},"arr":[2,1],"z":1}"#);
    }

    #[test]
    fn control_chars_escape_as_u00xx() {
        let mut s = String::new();
        write_escaped("a\u{01}b\nc", &mut s);
        assert_eq!(s, "\"a\\u0001b\\nc\"");
    }
}
