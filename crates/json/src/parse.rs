//! A parser building the [`Json`] tree — the decode side of the wire
//! protocol. The [`crate::check`] validator answers "is this text
//! well-formed?" without allocating; this module answers "what does it
//! say?" for the paths that must read JSON back (the `beff-serve`
//! request decoder). Grammar and error reporting match the validator:
//! RFC 8259, first violation with its byte offset.

use crate::check::JsonError;
use crate::value::Json;

/// Parse exactly one JSON document (surrounded by optional whitespace)
/// into a [`Json`] tree.
///
/// Number mapping mirrors the writers: tokens without `.`/`e` become
/// [`Json::Int`] (negative) or [`Json::UInt`] (non-negative), falling
/// back to [`Json::Float`] when they exceed the integer ranges;
/// everything else is [`Json::Float`].
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { b: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal(b"true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal(b"false").map(|_| Json::Bool(false)),
            Some(b'n') => self.literal(b"null").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), JsonError> {
        if self.b[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("misspelled literal"))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    /// One `\uXXXX` unit (the `\u` already consumed), as a raw code
    /// unit — surrogate pairing happens in [`string`](Self::string).
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut unit: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(h) if h.is_ascii_hexdigit() => (h as char)
                    .to_digit(16)
                    .expect("hexdigit converts") as u16,
                _ => return Err(self.err("bad \\u escape")),
            };
            unit = (unit << 4) | d;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = match unit {
                                // High surrogate: must pair with a \uXXXX
                                // low surrogate to form one scalar value.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let scalar = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired surrogate")),
                                unit => char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so slicing
                    // from here to the next ASCII boundary is valid; walk
                    // one char via the str API.
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
            debug_assert!(self.pos > start);
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => self.digits(),
            _ => return Err(self.err("expected digits")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits in exponent"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .expect("number tokens are ASCII");
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Json::Float(f)),
            Err(_) => Err(JsonError { at: start, msg: "number out of range".to_string() }),
        }
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse("true"), Ok(Json::Bool(true)));
        assert_eq!(parse("false"), Ok(Json::Bool(false)));
        assert_eq!(parse("42"), Ok(Json::UInt(42)));
        assert_eq!(parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(parse("1.5"), Ok(Json::Float(1.5)));
        assert_eq!(parse("-2.5e-7"), Ok(Json::Float(-2.5e-7)));
        assert_eq!(parse("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn integer_edges_keep_their_variant() {
        assert_eq!(parse(&u64::MAX.to_string()), Ok(Json::UInt(u64::MAX)));
        assert_eq!(parse(&i64::MIN.to_string()), Ok(Json::Int(i64::MIN)));
        // One past u64::MAX falls back to float rather than failing.
        assert_eq!(parse("18446744073709551616"), Ok(Json::Float(1.8446744073709552e19)));
    }

    #[test]
    fn containers_preserve_order() {
        let j = parse(r#"{"z":1,"a":[true,null],"m":{"k":"v"}}"#).expect("parses");
        assert_eq!(
            j,
            Json::Obj(vec![
                ("z".into(), Json::UInt(1)),
                ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
                ("m".into(), Json::Obj(vec![("k".into(), Json::Str("v".into()))])),
            ])
        );
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let j = parse(r#""a \"q\" \\ \n \t \u00e9 \ud83d\ude00 é""#).expect("parses");
        assert_eq!(j, Json::Str("a \"q\" \\ \n \t \u{e9} \u{1F600} é".into()));
    }

    #[test]
    fn writer_output_round_trips() {
        let doc = Json::object()
            .field("name", "b_eff \"quoted\" \\ path")
            .raw("vals", Json::Arr(vec![Json::Float(1.5), Json::Float(-2.25), Json::Float(1e-300)]))
            .field("n", &42u64)
            .raw("neg", Json::Int(-9))
            .raw("empty", Json::Obj(vec![]))
            .build();
        for text in [crate::to_string(&doc), crate::to_string_pretty(&doc)] {
            assert_eq!(parse(&text), Ok(doc.clone()), "round-trip of {text}");
        }
    }

    #[test]
    fn rejects_what_the_validator_rejects() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{'a':1}", "01", "1.", "1e",
            "\"abc", "\"\\x\"", "nul", "{} {}", "\"a\nb\"", "\"\\ud800\"", "\"\\udc00 alone\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let e = parse("[1, 2, x]").expect_err("must fail");
        assert_eq!(e.at, 7);
    }
}
