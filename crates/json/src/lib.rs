//! # beff-json
//!
//! The in-tree JSON layer of the benchmark stack: a small [`Json`]
//! value type, a hand-implemented [`ToJson`] trait that replaces
//! `#[derive(Serialize)]` on every result/config struct, and writers
//! whose output is byte-for-byte the shape `serde_json` produced
//! (field order preserved, same pretty indentation, same shortest
//! round-trip float formatting). Report files generated before and
//! after the registry-dependency removal therefore diff clean.
//!
//! ```
//! use beff_json::{Json, ToJson};
//!
//! struct Point { x: f64, y: u32 }
//! impl ToJson for Point {
//!     fn to_json(&self) -> Json {
//!         Json::object().field("x", &self.x).field("y", &self.y).build()
//!     }
//! }
//!
//! let p = Point { x: 1.5, y: 2 };
//! assert_eq!(beff_json::to_string(&p), r#"{"x":1.5,"y":2}"#);
//! assert_eq!(
//!     beff_json::to_string_pretty(&p),
//!     "{\n  \"x\": 1.5,\n  \"y\": 2\n}"
//! );
//! ```

mod check;
mod fmt;
mod parse;
mod value;

pub use check::{validate, JsonError};
pub use parse::parse;
pub use value::{Json, ObjectBuilder, ToJson};

/// Serialize compactly (no whitespace) — `serde_json::to_string` shape.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    fmt::write_compact(&value.to_json(), &mut out);
    out
}

/// Serialize with 2-space indentation — `serde_json::to_string_pretty`
/// shape.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    fmt::write_pretty(&value.to_json(), 0, &mut out);
    out
}

/// Serialize in **canonical form**: compact, with every object's fields
/// sorted by key bytes, recursively. Structurally equal values produce
/// byte-identical text regardless of field insertion order — the
/// property `beff-serve` relies on to use the serialized job spec as a
/// content-addressed cache key.
pub fn to_canonical<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    fmt::write_canonical(&value.to_json(), &mut out);
    out
}
