//! The [`Json`] tree and the [`ToJson`] conversion trait.

/// A JSON document. Objects keep insertion order (a `Vec`, not a map)
/// so hand-written [`ToJson`] impls control field order exactly as
/// `#[derive(Serialize)]` did via declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers; serialized without decimal point or exponent.
    Int(i64),
    /// Unsigned integers, kept apart from [`Json::Int`] so `u64` values
    /// above `i64::MAX` survive.
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an ordered object: `Json::object().field("a", &1).build()`.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder { fields: Vec::new() }
    }

    /// An array from anything iterable of convertible items.
    pub fn array<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Serde's externally-tagged shape for an enum struct/newtype
    /// variant: `{"Name": payload}`.
    pub fn variant(name: &str, payload: Json) -> Json {
        Json::Obj(vec![(name.to_owned(), payload)])
    }
}

/// Ordered-field object builder; see [`Json::object`].
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjectBuilder {
    pub fn field<T: ToJson + ?Sized>(mut self, name: &str, value: &T) -> Self {
        self.fields.push((name.to_owned(), value.to_json()));
        self
    }

    /// Append an already-built [`Json`] value.
    pub fn raw(mut self, name: &str, value: Json) -> Self {
        self.fields.push((name.to_owned(), value));
        self
    }

    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

/// Conversion into a [`Json`] tree — the replacement for
/// `serde::Serialize` throughout the workspace. Implementations list
/// fields in struct declaration order so output bytes match the
/// derive-generated form.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_field_order() {
        let j = Json::object()
            .field("z", &1u32)
            .field("a", &2u32)
            .field("m", &3u32)
            .build();
        match j {
            Json::Obj(fields) => {
                let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, ["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn option_maps_to_null_or_value() {
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(Some(4u32).to_json(), Json::UInt(4));
    }

    #[test]
    fn tuples_become_arrays() {
        assert_eq!(
            (1u32, 2u32).to_json(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2)])
        );
    }

    #[test]
    fn u64_above_i64_max_survives() {
        let v = u64::MAX;
        assert_eq!(v.to_json(), Json::UInt(u64::MAX));
    }

    #[test]
    fn variant_shape_is_externally_tagged() {
        assert_eq!(
            Json::variant("Fixed", Json::UInt(7)),
            Json::Obj(vec![("Fixed".into(), Json::UInt(7))])
        );
    }
}
