//! ASCII series plots with the paper's *pseudo-logarithmic* axes:
//! Fig. 4 plots bandwidth (log scale) over chunk size (pseudo-log:
//! equidistant ticks at 1 kB, 32 kB, 1 MB, M_PART and their "+8"
//! neighbors), Fig. 3/5 plot b_eff_io over partition size.

/// One named series of (x-label, value) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub values: Vec<f64>,
}

/// A pseudo-log multi-series chart: x positions are equidistant with
/// arbitrary labels, y is logarithmic.
#[derive(Debug)]
pub struct Chart {
    pub title: String,
    pub x_labels: Vec<String>,
    pub series: Vec<Series>,
    pub height: usize,
}

impl Chart {
    pub fn new(title: &str, x_labels: &[String]) -> Self {
        Self {
            title: title.to_string(),
            x_labels: x_labels.to_vec(),
            series: Vec::new(),
            height: 12,
        }
    }

    pub fn series(&mut self, name: &str, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.x_labels.len(), "series arity mismatch");
        self.series.push(Series { name: name.to_string(), values: values.to_vec() });
        self
    }

    /// Render as ASCII: log-y grid, one marker character per series.
    pub fn render(&self) -> String {
        const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let mut out = format!("{}\n", self.title);
        let positive: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .filter(|v| *v > 0.0)
            .collect();
        if positive.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let lo = positive.iter().cloned().fold(f64::INFINITY, f64::min).ln();
        let hi = positive.iter().cloned().fold(0.0f64, f64::max).ln();
        let span = (hi - lo).max(1e-9);
        let h = self.height;
        let w = self.x_labels.len();
        let col_w = 6usize;
        let mut grid = vec![vec![' '; w * col_w]; h];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for (xi, &v) in s.values.iter().enumerate() {
                if v <= 0.0 {
                    continue;
                }
                let frac = (v.ln() - lo) / span;
                let row = h - 1 - ((frac * (h - 1) as f64).round() as usize).min(h - 1);
                grid[row][xi * col_w + col_w / 2] = mark;
            }
        }
        for (i, line) in grid.iter().enumerate() {
            let frac = (h - 1 - i) as f64 / (h - 1) as f64;
            let yval = (lo + frac * span).exp();
            out.push_str(&format!("{yval:>9.1} |"));
            out.push_str(&line.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(w * col_w)));
        out.push_str(&format!("{:>10} ", ""));
        for l in &self.x_labels {
            out.push_str(&format!("{:^col_w$}", truncate(l, col_w)));
        }
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("   {} {}\n", MARKS[si % MARKS.len()], s.name));
        }
        out
    }
}

fn truncate(s: &str, w: usize) -> String {
    if s.chars().count() <= w {
        s.to_string()
    } else {
        s.chars().take(w).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let labels: Vec<String> = ["1k", "32k", "1M"].iter().map(|s| s.to_string()).collect();
        let mut c = Chart::new("write", &labels);
        c.series("type 0", &[5.0, 50.0, 200.0]);
        c.series("type 2", &[0.5, 10.0, 150.0]);
        let s = c.render();
        assert!(s.contains("write"));
        assert!(s.contains("type 0"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
    }

    #[test]
    fn zero_values_are_skipped() {
        let labels: Vec<String> = vec!["a".into()];
        let mut c = Chart::new("t", &labels);
        c.series("s", &[0.0]);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn log_scale_orders_rows() {
        let labels: Vec<String> = vec!["x".into(), "y".into()];
        let mut c = Chart::new("t", &labels);
        c.series("s", &[1.0, 1000.0]);
        let s = c.render();
        // the big value must appear on an earlier (higher) line
        let lines: Vec<&str> = s.lines().collect();
        let hi_row = lines.iter().position(|l| l.contains('*')).unwrap();
        let lo_row = lines.iter().rposition(|l| l.contains('*')).unwrap();
        assert!(hi_row < lo_row);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let labels: Vec<String> = vec!["a".into(), "b".into()];
        Chart::new("t", &labels).series("s", &[1.0]);
    }
}
